//! Determinism and zero-overhead guarantees of the telemetry subsystem.
//!
//! Two claims are pinned here:
//!
//! 1. **Deterministic capture** — every `repro trace` artifact (summary,
//!    Prometheus dump, Chrome JSON, flamegraph) is byte-identical at any
//!    `--jobs` count and across repeated runs, because all records live in
//!    the simulated-cycle domain and merge in task order through the exec
//!    engine.
//! 2. **Architectural invisibility** — enabling the sink (and the
//!    per-function profiler) never changes what the simulated CPU retires:
//!    cycle counts, instruction counts and exit codes are identical with
//!    telemetry on, off, and with profiling attached.
//!
//! The telemetry store is process-global, so every test that enables the
//! sink or changes the job count serialises on one lock.

use pacstack::compiler::{lower, FuncDef, Module, Scheme, Stmt};
use pacstack::telemetry;
use pacstack::{aarch64::Cpu, workloads::measure};
use pacstack_bench::{exec, tracecmd};
use proptest::prelude::*;
use std::sync::Mutex;

/// Serialises tests touching the global telemetry store / job count.
static TELEMETRY_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` with the sink disabled, the store clean, and `jobs` workers,
/// restoring both afterwards.
fn with_clean_telemetry<T>(jobs: usize, f: impl FnOnce() -> T) -> T {
    let _guard = TELEMETRY_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    telemetry::disable();
    telemetry::reset();
    exec::set_jobs(jobs);
    let out = f();
    exec::set_jobs(0);
    telemetry::disable();
    telemetry::reset();
    out
}

#[test]
fn repro_trace_artifacts_are_identical_across_job_counts() {
    let sequential =
        with_clean_telemetry(1, || tracecmd::capture(true)).expect("capture at jobs=1");
    for jobs in [4, 4, 2] {
        let parallel =
            with_clean_telemetry(jobs, || tracecmd::capture(true)).expect("parallel capture");
        assert_eq!(
            sequential.stdout(),
            parallel.stdout(),
            "trace stdout diverged at jobs={jobs}"
        );
        assert_eq!(
            sequential.chrome_json, parallel.chrome_json,
            "trace.json diverged at jobs={jobs}"
        );
        assert_eq!(
            sequential.flame, parallel.flame,
            "flamegraph diverged at jobs={jobs}"
        );
    }
}

#[test]
fn repro_trace_quick_stdout_matches_the_golden_file() {
    let artifacts = with_clean_telemetry(1, || tracecmd::capture(true)).expect("quick capture");
    let golden = include_str!("golden/repro_trace_quick.txt");
    assert_eq!(
        artifacts.stdout(),
        golden,
        "`repro trace --quick` stdout drifted from tests/golden/repro_trace_quick.txt — \
         regenerate it with `repro trace --quick > tests/golden/repro_trace_quick.txt` \
         if the change is intentional"
    );
}

#[test]
fn enabled_sink_changes_no_architectural_state() {
    // The same workload, profiled and instrumented vs dark, must retire
    // identically — the zero-overhead claim is about *results* first.
    let mut m = Module::new();
    m.push(FuncDef::new(
        "main",
        vec![
            Stmt::Loop(6, vec![Stmt::Call("f".into()), Stmt::MemAccess(2)]),
            Stmt::Return,
        ],
    ));
    m.push(FuncDef::new(
        "f",
        vec![Stmt::Compute(3), Stmt::Call("g".into()), Stmt::Return],
    ));
    m.push(FuncDef::new("g", vec![Stmt::Compute(1), Stmt::Return]));
    for scheme in [Scheme::Baseline, Scheme::PacStack, Scheme::ShadowCallStack] {
        let dark = with_clean_telemetry(1, || measure::run_module(&m, scheme, 1_000_000));
        let lit = with_clean_telemetry(1, || {
            telemetry::enable();
            measure::run_module_profiled(&m, scheme, 1_000_000, "t")
        });
        assert_eq!(dark, lit, "telemetry changed a {scheme} run");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Disabled-sink runs and instrumented runs retire identical
    /// instruction and cycle counts over arbitrary generated programs.
    #[test]
    fn instrumented_runs_retire_identical_counts(seed in 0u64..1_000_000) {
        let module = pacstack::workloads::synth::generate(&Default::default(), seed);
        let program = lower(&module, Scheme::PacStack);
        let run_dark = with_clean_telemetry(1, || {
            let mut cpu = Cpu::with_seed(program.clone(), 7);
            cpu.run(2_000_000)
        });
        let run_lit = with_clean_telemetry(1, || {
            telemetry::enable();
            let mut cpu = Cpu::with_seed(program.clone(), 7);
            cpu.enable_profile(1 << 12);
            cpu.run(2_000_000)
        });
        match (run_dark, run_lit) {
            (Ok(dark), Ok(lit)) => {
                prop_assert_eq!(dark.cycles, lit.cycles);
                prop_assert_eq!(dark.instructions, lit.instructions);
                prop_assert_eq!(dark.status, lit.status);
            }
            (dark, lit) => prop_assert_eq!(dark, lit),
        }
    }
}
