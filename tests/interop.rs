//! Interoperability with unprotected code (paper §9.2): mixed
//! instrumentation — a PACStack application calling unprotected library
//! functions, and the reverse — must run correctly because CR (X28) is
//! callee-saved; partial protection still guards the instrumented returns.

use pacstack::aarch64::{Cpu, Fault, Reg, RunStatus};
use pacstack::compiler::{frame, lower, lower_mixed, FuncDef, Module, Scheme, Stmt};
use std::collections::HashMap;

fn app_and_lib_module() -> Module {
    let mut m = Module::new();
    // "Application" side.
    m.push(FuncDef::new(
        "main",
        vec![
            Stmt::Compute(2),
            Stmt::Call("app_logic".into()),
            Stmt::Emit,
            Stmt::Return,
        ],
    ));
    m.push(FuncDef::new(
        "app_logic",
        vec![
            Stmt::Call("lib_parse".into()),
            Stmt::Call("lib_format".into()),
            Stmt::Return,
        ],
    ));
    // "Library" side.
    m.push(FuncDef::new(
        "lib_parse",
        vec![
            Stmt::MemAccess(2),
            Stmt::Call("lib_util".into()),
            Stmt::Return,
        ],
    ));
    m.push(FuncDef::new(
        "lib_format",
        vec![
            Stmt::Compute(5),
            Stmt::Call("lib_util".into()),
            Stmt::Return,
        ],
    ));
    m.push(FuncDef::new(
        "lib_util",
        vec![Stmt::Compute(3), Stmt::Return],
    ));
    m
}

fn lib_overrides(scheme: Scheme) -> HashMap<String, Scheme> {
    ["lib_parse", "lib_format", "lib_util"]
        .into_iter()
        .map(|f| (f.to_owned(), scheme))
        .collect()
}

fn run_to_exit(cpu: &mut Cpu) -> (u64, Vec<u64>) {
    let out = cpu.run(100_000_000).expect("clean run");
    match out.status {
        RunStatus::Exited(code) => (code, cpu.output().to_vec()),
        RunStatus::Syscall(n) => panic!("unexpected syscall {n}"),
    }
}

#[test]
fn protected_app_with_unprotected_library_runs() {
    let module = app_and_lib_module();
    let reference = {
        let mut cpu = Cpu::with_seed(lower(&module, Scheme::Baseline), 7);
        run_to_exit(&mut cpu)
    };
    let program = lower_mixed(&module, Scheme::PacStack, &lib_overrides(Scheme::Baseline));
    let mut cpu = Cpu::with_seed(program, 7);
    assert_eq!(run_to_exit(&mut cpu), reference);
}

#[test]
fn unprotected_app_with_protected_library_runs() {
    // The Android deployment scenario: OEM ships PACStack system libraries,
    // apps are uninstrumented.
    let module = app_and_lib_module();
    let reference = {
        let mut cpu = Cpu::with_seed(lower(&module, Scheme::Baseline), 7);
        run_to_exit(&mut cpu)
    };
    let program = lower_mixed(&module, Scheme::Baseline, &lib_overrides(Scheme::PacStack));
    let mut cpu = Cpu::with_seed(program, 7);
    assert_eq!(run_to_exit(&mut cpu), reference);
}

#[test]
fn every_scheme_pair_interoperates() {
    let module = app_and_lib_module();
    let reference = {
        let mut cpu = Cpu::with_seed(lower(&module, Scheme::Baseline), 7);
        run_to_exit(&mut cpu)
    };
    for app in Scheme::ALL {
        for lib in Scheme::ALL {
            let program = lower_mixed(&module, app, &lib_overrides(lib));
            let mut cpu = Cpu::with_seed(program, 7);
            assert_eq!(run_to_exit(&mut cpu), reference, "app={app} lib={lib}");
        }
    }
}

#[test]
fn protected_library_returns_stay_protected_in_unprotected_app() {
    // §9.2: "calls into protected functions can still benefit from return
    // address authentication" — attack a protected library frame inside an
    // otherwise unprotected app.
    let mut m = app_and_lib_module();
    m.push(FuncDef::new(
        "gadget",
        vec![Stmt::Checkpoint(97), Stmt::Return],
    ));
    // Give lib_parse a checkpoint so the adversary can act inside it.
    let m = {
        let mut rebuilt = Module::new();
        for f in m.functions() {
            if f.name() == "lib_parse" {
                rebuilt.push(FuncDef::new(
                    "lib_parse",
                    vec![
                        Stmt::Checkpoint(42),
                        Stmt::MemAccess(2),
                        Stmt::Call("lib_util".into()),
                        Stmt::Return,
                    ],
                ));
            } else {
                rebuilt.push(f.clone());
            }
        }
        rebuilt
    };

    let program = lower_mixed(&m, Scheme::Baseline, &lib_overrides(Scheme::PacStack));
    let mut cpu = Cpu::with_seed(program, 31);
    let out = cpu.run(1_000_000).unwrap();
    assert_eq!(out.status, RunStatus::Syscall(42));

    // Corrupt the protected frame's chain slot: detected, even though the
    // surrounding application is unprotected.
    let sp = cpu.reg(Reg::Sp);
    let gadget = cpu.symbol("gadget").unwrap();
    cpu.mem_mut()
        .write_u64(sp + frame::CHAIN_SLOT as u64, gadget)
        .unwrap();
    match cpu.run(1_000_000) {
        Err(fault) => assert!(!matches!(fault, Fault::Timeout), "diverged"),
        Ok(out) => panic!("attack not detected: {out:?}"),
    }
}

#[test]
fn unprotected_app_frame_remains_attackable() {
    // The flip side of partial protection: the *app's* returns are fair
    // game when only the library is instrumented.
    let mut m = Module::new();
    m.push(FuncDef::new(
        "main",
        vec![Stmt::Call("app_fn".into()), Stmt::Return],
    ));
    m.push(FuncDef::new(
        "app_fn",
        vec![
            Stmt::Checkpoint(42),
            Stmt::Call("lib_util".into()),
            Stmt::Return,
        ],
    ));
    m.push(FuncDef::new(
        "lib_util",
        vec![Stmt::Compute(3), Stmt::Return],
    ));
    m.push(FuncDef::new(
        "gadget",
        vec![Stmt::Checkpoint(97), Stmt::Return],
    ));

    let overrides = HashMap::from([("lib_util".to_owned(), Scheme::PacStack)]);
    let program = lower_mixed(&m, Scheme::Baseline, &overrides);
    let mut cpu = Cpu::with_seed(program, 31);
    let out = cpu.run(1_000_000).unwrap();
    assert_eq!(out.status, RunStatus::Syscall(42));

    let sp = cpu.reg(Reg::Sp);
    let gadget = cpu.symbol("gadget").unwrap();
    cpu.mem_mut()
        .write_u64(sp + frame::LR_SLOT as u64, gadget)
        .unwrap();
    let out = cpu.run(1_000_000).unwrap();
    assert_eq!(
        out.status,
        RunStatus::Syscall(97),
        "unprotected frame should be hijackable"
    );
}
