//! Multi-threading (paper §5.4): PACStack-instrumented threads preempted by
//! a kernel scheduler, with per-thread chain seeds (§4.3 re-seeding).

use pacstack::aarch64::kernel::Scheduler;
use pacstack::aarch64::{Cpu, Reg};
use pacstack::compiler::{lower, FuncDef, Module, Scheme, Stmt};

/// Two worker functions with different call patterns, plus a trivial main
/// that just exits (the threads do the work).
fn threaded_module() -> Module {
    let mut m = Module::new();
    m.push(FuncDef::new("main", vec![Stmt::Compute(1), Stmt::Return]));
    m.push(FuncDef::new(
        "worker_a",
        vec![
            Stmt::Loop(24, vec![Stmt::Call("unit_a".into()), Stmt::MemAccess(2)]),
            Stmt::Return,
        ],
    ));
    m.push(FuncDef::new(
        "worker_b",
        vec![
            Stmt::Loop(
                16,
                vec![Stmt::Call("unit_b".into()), Stmt::Call("unit_b".into())],
            ),
            Stmt::Return,
        ],
    ));
    m.push(FuncDef::new(
        "unit_a",
        vec![Stmt::Compute(7), Stmt::Call("nested".into()), Stmt::Return],
    ));
    m.push(FuncDef::new(
        "unit_b",
        vec![Stmt::Compute(3), Stmt::Call("nested".into()), Stmt::Return],
    ));
    m.push(FuncDef::new("nested", vec![Stmt::Compute(2), Stmt::Return]));
    m
}

#[test]
fn preempted_pacstack_threads_complete_correctly() {
    for scheme in Scheme::ALL {
        // Reference run: each worker alone, uninterrupted.
        let solo = |entry: &str| {
            let mut cpu = Cpu::with_seed(lower(&threaded_module(), scheme), 12);
            let mut sched = Scheduler::adopt_main(&cpu);
            sched.spawn(&mut cpu, entry, 0x1111).unwrap();
            sched
                .run_all(&mut cpu, 1_000_000, 100)
                .expect("solo run clean")[1]
        };
        let a_expected = solo("worker_a");
        let b_expected = solo("worker_b");

        // Interleaved run with a tiny quantum: dozens of context switches.
        let mut cpu = Cpu::with_seed(lower(&threaded_module(), scheme), 12);
        let mut sched = Scheduler::adopt_main(&cpu);
        sched.spawn(&mut cpu, "worker_a", 0x1111).unwrap();
        sched.spawn(&mut cpu, "worker_b", 0x2222).unwrap();
        let exits = sched
            .run_all(&mut cpu, 40, 10_000)
            .unwrap_or_else(|f| panic!("{scheme}: {f}"));
        assert_eq!(
            exits[1], a_expected,
            "{scheme}: worker_a corrupted by preemption"
        );
        assert_eq!(
            exits[2], b_expected,
            "{scheme}: worker_b corrupted by preemption"
        );
    }
}

#[test]
fn thread_chains_are_disjoint_when_reseeded() {
    // §4.3: per-thread seeds make sibling chains disjoint — the same
    // function at the same depth yields different chain values.
    let module = threaded_module();
    let capture_cr = |seed: u64| {
        let mut m = module.clone();
        // Replace worker with a variant that pauses inside a call.
        m.push(FuncDef::new(
            "probe",
            vec![Stmt::Call("probe_inner".into()), Stmt::Return],
        ));
        m.push(FuncDef::new(
            "probe_inner",
            vec![
                Stmt::Checkpoint(80),
                Stmt::Call("nested".into()),
                Stmt::Return,
            ],
        ));
        let mut cpu = Cpu::with_seed(lower(&m, Scheme::PacStack), 9);
        let mut sched = Scheduler::adopt_main(&cpu);
        sched.spawn(&mut cpu, "probe", seed).unwrap();
        // Run: main exits, then probe runs to its checkpoint (treated as a
        // yield); CR is live in the cpu at that moment.
        let _ = sched.run_all(&mut cpu, 100_000, 4);
        cpu.reg(Reg::CR)
    };
    let cr_a = capture_cr(0xAAAA);
    let cr_b = capture_cr(0xBBBB);
    assert_ne!(cr_a, cr_b, "re-seeded thread chains must be disjoint");
}

#[test]
fn suspended_thread_registers_survive_memory_scribbling() {
    // §5.4: while preempted, CR/LR live in kernel-private storage; an
    // adversary with full memory write access cannot influence them.
    let mut cpu = Cpu::with_seed(lower(&threaded_module(), Scheme::PacStack), 12);
    let mut sched = Scheduler::adopt_main(&cpu);
    sched.spawn(&mut cpu, "worker_a", 0x1111).unwrap();

    // Run a few slices, then scribble over every writable region the
    // adversary could reach *except the live stacks* (which they may
    // legally corrupt — that is what the chain detects, a different test).
    let _ = sched.run_all(&mut cpu, 25, 6); // leaves tasks mid-flight
    let data = pacstack::aarch64::LAYOUT.data_base;
    for i in 0..64 {
        cpu.mem_mut().write_u64(data + i * 8, 0xDEAD_BEEF).unwrap();
    }
    // Resume to completion: unaffected.
    let exits = sched
        .run_all(&mut cpu, 40, 10_000)
        .expect("scribbling data cannot break threads");
    assert!(exits.len() >= 2);
}
