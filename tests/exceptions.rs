//! C++-exception-style unwinding with per-frame chain validation
//! (paper §9.1): the modelled language runtime unwinds the *live* CPU with
//! `unwind_to_frame`, which authenticates every intermediate link before
//! transferring control — unlike `longjmp`, which trusts the buffer.

use pacstack::aarch64::{Cpu, Reg, RunStatus};
use pacstack::acs::Masking;
use pacstack::compiler::unwind::unwind_to_frame;
use pacstack::compiler::{frame, lower, FuncDef, Module, Scheme, Stmt};

const HANDLER_SETUP: u16 = 60; // "try" entry: runtime records the frame
const THROW: u16 = 61; // deep function "throws": runtime unwinds

/// main (try frame) → middle → deep (throws).
fn exception_module() -> Module {
    let mut m = Module::new();
    m.push(FuncDef::new(
        "main",
        vec![
            Stmt::Checkpoint(HANDLER_SETUP),
            Stmt::Call("middle".into()),
            Stmt::Emit, // resumption point after the unwind
            Stmt::Return,
        ],
    ));
    m.push(FuncDef::new(
        "middle",
        vec![Stmt::MemAccess(1), Stmt::Call("deep".into()), Stmt::Return],
    ));
    m.push(FuncDef::new(
        "deep",
        vec![
            Stmt::Checkpoint(THROW),
            Stmt::Call("noop".into()),
            Stmt::Return,
        ],
    ));
    m.push(FuncDef::new("noop", vec![Stmt::Compute(1), Stmt::Return]));
    m
}

fn run_until(cpu: &mut Cpu, syscall: u16) {
    loop {
        let out = cpu.run(1_000_000).expect("clean run");
        match out.status {
            RunStatus::Syscall(n) if n == syscall => return,
            RunStatus::Syscall(_) => continue,
            RunStatus::Exited(code) => panic!("exited ({code}) before syscall {syscall}"),
        }
    }
}

#[test]
fn validated_unwind_propagates_an_exception() {
    let mut cpu = Cpu::with_seed(lower(&exception_module(), Scheme::PacStack), 31);
    run_until(&mut cpu, HANDLER_SETUP);
    let try_fp = cpu.reg(Reg::FP); // main's frame record

    run_until(&mut cpu, THROW);
    assert_ne!(cpu.reg(Reg::FP), try_fp, "the throw happens deeper");

    // The runtime unwinds deep → middle → main, validating each link.
    unwind_to_frame(&mut cpu, Masking::Masked, try_fp).expect("intact chain unwinds");
    assert_eq!(cpu.reg(Reg::FP), try_fp);

    // Execution resumes inside main (at middle's return point) and the
    // program completes normally — main's own epilogue still verifies.
    loop {
        let out = cpu.run(1_000_000).expect("clean completion after unwind");
        match out.status {
            RunStatus::Exited(_) => break,
            RunStatus::Syscall(_) => continue,
        }
    }
    assert_eq!(cpu.output().len(), 1, "resumption point executed once");
}

#[test]
fn corrupted_intermediate_frame_stops_the_unwind() {
    let mut cpu = Cpu::with_seed(lower(&exception_module(), Scheme::PacStack), 31);
    run_until(&mut cpu, HANDLER_SETUP);
    let try_fp = cpu.reg(Reg::FP);
    run_until(&mut cpu, THROW);

    // Corrupt middle's chain slot — the frame the exception must pass
    // through.
    let deep_fp = cpu.reg(Reg::FP);
    let middle_fp = cpu.mem().read_u64(deep_fp).unwrap();
    let middle_chain = middle_fp - frame::FP_SLOT as u64 + frame::CHAIN_SLOT as u64;
    let old = cpu.mem().read_u64(middle_chain).unwrap();
    cpu.mem_mut().write_u64(middle_chain, old ^ 0x10).unwrap();

    let pc_before = cpu.pc();
    let violation = unwind_to_frame(&mut cpu, Masking::Masked, try_fp).unwrap_err();
    assert_eq!(
        violation.frame_index, 1,
        "middle is the second frame from deep"
    );
    // The failed unwind must not have moved the CPU.
    assert_eq!(cpu.pc(), pc_before);
    assert_eq!(cpu.reg(Reg::FP), deep_fp);
}

#[test]
fn unwind_to_unknown_frame_is_rejected() {
    let mut cpu = Cpu::with_seed(lower(&exception_module(), Scheme::PacStack), 31);
    run_until(&mut cpu, THROW);
    // A frame pointer that is not on the chain (e.g. a forged target).
    let err = unwind_to_frame(&mut cpu, Masking::Masked, 0x7ffe_0000).unwrap_err();
    assert!(err.frame_index <= 4);
}

#[test]
fn nomask_variant_unwinds_too() {
    let mut cpu = Cpu::with_seed(lower(&exception_module(), Scheme::PacStackNomask), 13);
    run_until(&mut cpu, HANDLER_SETUP);
    let try_fp = cpu.reg(Reg::FP);
    run_until(&mut cpu, THROW);
    unwind_to_frame(&mut cpu, Masking::Unmasked, try_fp).expect("nomask chain unwinds");
    loop {
        let out = cpu.run(1_000_000).expect("clean completion");
        match out.status {
            RunStatus::Exited(_) => break,
            RunStatus::Syscall(_) => continue,
        }
    }
}
