//! Cross-crate integration tests: the full pipeline from cipher to
//! instrumented execution and attack detection.

use pacstack::aarch64::{Cpu, Fault, Reg, RunStatus};
use pacstack::acs::{AcsConfig, AuthenticatedCallStack, Masking};
use pacstack::compiler::{frame, lower, FuncDef, Module, Scheme, Stmt};
use pacstack::pauth::{PaKey, PaKeys, PointerAuth, VaLayout};
use pacstack::qarma::Qarma64;

#[test]
fn cipher_feeds_pac_feeds_acs() {
    // The same QARMA instance the PA unit uses must underlie the chain:
    // manually recompute one chain link and compare against the ACS.
    let layout = VaLayout::default();
    let pa = PointerAuth::new(layout);
    let keys = PaKeys::from_seed(5);
    let mut acs = AuthenticatedCallStack::new(
        pa,
        keys.clone(),
        AcsConfig::default().masking(Masking::Unmasked),
    );
    acs.call(0x40_1000);

    let cipher = Qarma64::recommended(keys.key(PaKey::Ia));
    let expected_token = cipher.encrypt(0x40_1000, 0) & ((1 << layout.pac_bits()) - 1);
    assert_eq!(layout.extract_pac(acs.chain_register()), expected_token);
}

#[test]
fn simulator_chain_matches_state_machine() {
    // Run an instrumented program to a checkpoint and check that the CR
    // register holds exactly what the pure ACS model predicts.
    let mut module = Module::new();
    module.push(FuncDef::new(
        "main",
        vec![Stmt::Call("inner".into()), Stmt::Return],
    ));
    module.push(FuncDef::new(
        "inner",
        vec![
            Stmt::Checkpoint(50),
            Stmt::Call("leafish".into()),
            Stmt::Return,
        ],
    ));
    module.push(FuncDef::new(
        "leafish",
        vec![Stmt::Compute(1), Stmt::Return],
    ));

    let program = lower(&module, Scheme::PacStack);
    let mut cpu = Cpu::with_seed(program, 7);
    let out = cpu.run(100_000).unwrap();
    assert_eq!(out.status, RunStatus::Syscall(50));

    // Model: the stub calls main (ret_0 = stub+4... = entry+4), then main
    // calls inner. Reconstruct with the actual return addresses.
    let entry = 0x40_0000u64;
    let ret_in_stub = entry + 4;
    let main_addr = cpu.symbol("main").unwrap();
    // main's prologue is 9 ops (PacStack: StrPre, Stp, mov, pacia, pacia,
    // eor, mov, mov + pressure str) and the call is the next op.
    let mut model = AuthenticatedCallStack::new(
        PointerAuth::new(VaLayout::default()),
        cpu.keys().clone(),
        AcsConfig::default(),
    );
    model.call(ret_in_stub);
    // Find the actual return address for the bl inside main: scan forward
    // from main until the chain register matches. (The model proves the
    // construction; the scan keeps the test robust to prologue length.)
    let mut matched = false;
    for insn_index in 0..64u64 {
        let candidate_ret = main_addr + insn_index * 4;
        let mut probe = model.clone();
        probe.call(candidate_ret);
        if probe.chain_register() == cpu.reg(Reg::CR) {
            matched = true;
            break;
        }
    }
    assert!(
        matched,
        "simulator CR does not correspond to any model chain value"
    );
}

#[test]
fn fpac_mode_turns_corruption_into_immediate_fault() {
    let mut module = Module::new();
    module.push(FuncDef::new(
        "main",
        vec![Stmt::Call("victim".into()), Stmt::Return],
    ));
    module.push(FuncDef::new(
        "victim",
        vec![
            Stmt::Checkpoint(51),
            Stmt::Call("noop".into()),
            Stmt::Return,
        ],
    ));
    module.push(FuncDef::new("noop", vec![Stmt::Compute(1), Stmt::Return]));

    let program = lower(&module, Scheme::PacStack);
    let mut cpu = Cpu::with_seed(program, 3);
    cpu.enable_fpac();
    let out = cpu.run(100_000).unwrap();
    assert_eq!(out.status, RunStatus::Syscall(51));
    let sp = cpu.reg(Reg::Sp);
    cpu.mem_mut()
        .write_u64(sp + frame::CHAIN_SLOT as u64, 0xBAD)
        .unwrap();
    assert!(matches!(cpu.run(100_000), Err(Fault::PacFault { .. })));
}

#[test]
fn rekeyed_process_invalidates_harvested_chain() {
    // exec() regenerates keys: a chain value captured before re-keying is
    // useless afterwards.
    let pa = PointerAuth::new(VaLayout::default());
    let mut acs = AuthenticatedCallStack::new(pa, PaKeys::from_seed(1), AcsConfig::default());
    acs.call(0x40_1000);
    acs.call(0x40_2000);
    let harvested = acs.frames()[1].stored_chain;

    let mut fresh = AuthenticatedCallStack::new(pa, PaKeys::from_seed(2), AcsConfig::default());
    fresh.call(0x40_1000);
    fresh.call(0x40_2000);
    fresh.frames_mut()[1].stored_chain = harvested;
    // Same call sequence, same addresses — but new keys. With a 16-bit PAC
    // the stale value verifies only with probability 2^-16.
    assert!(fresh.ret().is_err());
}

#[test]
fn every_scheme_survives_the_nginx_workload() {
    use pacstack::workloads::measure::run_module;
    use pacstack::workloads::nginx::server_module;
    let module = server_module(10);
    let baseline = run_module(&module, Scheme::Baseline, 2_000_000_000);
    for scheme in Scheme::ALL {
        let m = run_module(&module, scheme, 2_000_000_000);
        assert_eq!(m.exit_code, baseline.exit_code, "{scheme}");
        assert!(
            m.cycles >= baseline.cycles,
            "{scheme} faster than baseline?"
        );
    }
}

#[test]
fn chain_register_value_is_key_dependent_and_path_dependent() {
    let pa = PointerAuth::new(VaLayout::default());
    let build = |seed: u64, path: &[u64]| {
        let mut acs =
            AuthenticatedCallStack::new(pa, PaKeys::from_seed(seed), AcsConfig::default());
        for &r in path {
            acs.call(r);
        }
        acs.chain_register()
    };
    let a = build(1, &[0x40_1000, 0x40_2000]);
    let b = build(2, &[0x40_1000, 0x40_2000]);
    let c = build(1, &[0x40_3000, 0x40_2000]);
    assert_ne!(a, b, "key must matter");
    assert_ne!(a, c, "path must matter (this is what defeats reuse)");
}
