//! The paper's environmental assumptions (A1, A2) and failure-injection
//! cases, exercised on the simulator.

use pacstack::aarch64::{Cpu, Fault, Reg, RunStatus, LAYOUT};
use pacstack::compiler::{lower, FuncDef, Module, Scheme, Stmt};

#[test]
fn a1_wx_policy_blocks_code_injection() {
    // Assumption A1: the adversary cannot modify code pages.
    let mut m = Module::new();
    m.push(FuncDef::new(
        "main",
        vec![
            Stmt::Checkpoint(42),
            Stmt::Call("noop".into()),
            Stmt::Return,
        ],
    ));
    m.push(FuncDef::new("noop", vec![Stmt::Compute(1), Stmt::Return]));
    let mut cpu = Cpu::with_seed(lower(&m, Scheme::PacStack), 1);
    cpu.run(100_000).unwrap();
    // The adversary's write primitive bounces off the code segment.
    assert_eq!(
        cpu.mem_mut().write_u64(LAYOUT.code_base + 16, 0xdead),
        Err(Fault::PermissionFault {
            addr: LAYOUT.code_base + 16
        })
    );
}

#[test]
fn a2_bti_constrains_indirect_branches_to_function_entries() {
    // Assumption A2: indirect calls target function beginnings. With BTI
    // enforcement on, a corrupted function pointer aimed *inside* a
    // function faults at the branch.
    let mut m = Module::new();
    m.push(FuncDef::new(
        "main",
        vec![
            Stmt::Checkpoint(42),
            Stmt::CallIndirect("target".into()),
            Stmt::Return,
        ],
    ));
    m.push(FuncDef::new("target", vec![Stmt::Compute(4), Stmt::Return]));

    // Benign run with BTI: indirect call to a function entry passes.
    let mut cpu = Cpu::with_seed(lower(&m, Scheme::PacStack), 1);
    cpu.enable_bti();
    cpu.run(100_000).unwrap(); // checkpoint
    let out = cpu.run(100_000).unwrap();
    assert!(matches!(out.status, RunStatus::Exited(_)));

    // Attack run: redirect X9 (the function-pointer register materialised
    // right after the checkpoint) cannot be done via registers, but a
    // mid-function target via a crafted program demonstrates the check.
    let mut m2 = Module::new();
    m2.push(FuncDef::new(
        "main",
        vec![Stmt::CallIndirect("target".into()), Stmt::Return],
    ));
    m2.push(FuncDef::new("target", vec![Stmt::Compute(4), Stmt::Return]));
    let program = lower(&m2, Scheme::PacStack);
    let mut cpu = Cpu::with_seed(program, 1);
    cpu.enable_bti();
    // Patch the CPU's view by running until just before the blr, then
    // bumping the pointer register to a mid-function address.
    let target = cpu.symbol("target").unwrap();
    loop {
        // Single-step by running 1 instruction at a time until X9 holds the
        // target address (the FnAddr mov executed).
        cpu.run(1).map_err(|f| assert_eq!(f, Fault::Timeout)).ok();
        if cpu.reg(Reg::X9) == target {
            break;
        }
        assert!(cpu.instructions() < 1000, "never saw the function pointer");
    }
    cpu.set_reg(Reg::X9, target + 4); // point into the body
    match cpu.run(100_000) {
        Err(Fault::FetchFault { pc }) => assert_eq!(pc, target + 4),
        other => panic!("BTI should have faulted the bent branch: {other:?}"),
    }
}

#[test]
fn without_bti_the_bent_forward_edge_lands() {
    // The same attack with A2 *not* enforced lands mid-function — the
    // reason the paper needs the assumption.
    let mut m = Module::new();
    m.push(FuncDef::new(
        "main",
        vec![Stmt::CallIndirect("target".into()), Stmt::Return],
    ));
    m.push(FuncDef::new("target", vec![Stmt::Compute(4), Stmt::Return]));
    let mut cpu = Cpu::with_seed(lower(&m, Scheme::Baseline), 1);
    let target = cpu.symbol("target").unwrap();
    loop {
        cpu.run(1).map_err(|f| assert_eq!(f, Fault::Timeout)).ok();
        if cpu.reg(Reg::X9) == target {
            break;
        }
        assert!(cpu.instructions() < 1000);
    }
    cpu.set_reg(Reg::X9, target + 4);
    // Lands mid-function and keeps executing (eventually exits or loops).
    assert!(cpu.run(100_000).is_ok());
}

#[test]
fn stack_exhaustion_faults_cleanly() {
    // Failure injection: a call chain deeper than the stack mapping must
    // produce a clean access fault, not silent corruption.
    let mut m = Module::new();
    // A self-recursive loop via mutual calls: f -> g -> f -> ... with no
    // base case; each instrumented activation consumes 48 bytes.
    m.push(FuncDef::new(
        "main",
        vec![Stmt::Call("f".into()), Stmt::Return],
    ));
    m.push(FuncDef::new(
        "f",
        vec![Stmt::Call("g".into()), Stmt::Return],
    ));
    m.push(FuncDef::new(
        "g",
        vec![Stmt::Call("f".into()), Stmt::Return],
    ));
    for scheme in [Scheme::Baseline, Scheme::PacStack] {
        let mut cpu = Cpu::with_seed(lower(&m, scheme), 1);
        match cpu.run(100_000_000) {
            Err(Fault::AccessFault { .. }) => {}
            other => panic!("{scheme}: expected stack exhaustion fault, got {other:?}"),
        }
    }
}

#[test]
fn b_key_return_protection_works_like_a_key() {
    // arm64e-style: sign returns with instruction key B.
    use pacstack::aarch64::{Instruction::*, Program};
    let mut p = Program::new();
    p.function(
        "main",
        vec![
            Pacibsp,
            StrPre(Reg::X30, Reg::Sp, -16),
            MovImm(Reg::X0, 5),
            LdrPost(Reg::X30, Reg::Sp, 16),
            Retab,
        ],
    );
    let mut cpu = Cpu::with_seed(p, 2);
    assert_eq!(cpu.run(100).unwrap().exit_code, 5);

    // Cross-key confusion fails: sign with B, verify with A.
    let mut p = Program::new();
    p.function("main", vec![Pacibsp, Retaa]);
    let mut cpu = Cpu::with_seed(p, 2);
    assert!(cpu.run(100).is_err());
}
