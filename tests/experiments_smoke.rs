//! Small-parameter smoke runs of every experiment behind `repro`, asserting
//! the paper's qualitative shape for each table and figure.

use pacstack::acs::security::ViolationKind;
use pacstack::acs::Masking;
use pacstack::compiler::Scheme;
use pacstack_bench::experiments;

#[test]
fn table1_shape() {
    let cells = experiments::table1(4, 500, 3);
    assert_eq!(cells.len(), 6);
    let get = |kind: ViolationKind, masking: Masking| {
        cells
            .iter()
            .find(|c| c.kind == kind && c.masking == masking)
            .copied()
            .expect("cell present")
    };
    // On-graph without masking succeeds (essentially) always; with masking
    // it collapses to ~2^-b.
    let unmasked = get(ViolationKind::OnGraph, Masking::Unmasked);
    let masked = get(ViolationKind::OnGraph, Masking::Masked);
    assert!(unmasked.measured > 0.9);
    assert!(masked.measured < 0.3);
    // Arbitrary-address is rarer than call-site in both variants.
    for masking in [Masking::Masked, Masking::Unmasked] {
        let call_site = get(ViolationKind::OffGraphToCallSite, masking);
        let arbitrary = get(ViolationKind::OffGraphToArbitrary, masking);
        assert!(arbitrary.measured <= call_site.measured + 0.01);
    }
}

#[test]
fn figure5_and_table2_shape() {
    let rows = experiments::figure5();
    assert_eq!(rows.len(), 16); // 8 benchmarks × 2 suites
                                // lbm is the least-affected benchmark under full PACStack in both suites.
    for suite_rows in rows.chunks(8) {
        let lbm = suite_rows.iter().find(|r| r.name == "lbm").unwrap();
        let lbm_full = lbm.overheads[0].1;
        for row in suite_rows {
            assert!(row.overheads[0].1 >= lbm_full - 0.01, "{} < lbm", row.name);
        }
    }
    let t2 = experiments::table2(&rows);
    let full = t2.iter().find(|r| r.scheme == Scheme::PacStack).unwrap();
    assert!(
        full.rate > 1.8 && full.rate < 4.5,
        "headline ≈3% violated: {}",
        full.rate
    );
}

#[test]
fn table3_shape() {
    let rows = experiments::table3(2, 9);
    assert_eq!(rows.len(), 2);
    assert!(rows[1].baseline.mean_tps > rows[0].baseline.mean_tps); // more workers, more TPS
    for row in &rows {
        assert!(row.pacstack_loss() > row.nomask_loss());
    }
}

#[test]
fn birthday_shape() {
    let rows = experiments::birthday(&[6, 8], 15, 1);
    // Expected token counts grow ~2x per +2 bits (sqrt scaling).
    assert!(rows[1].measured_mean > rows[0].measured_mean);
}

#[test]
fn guessing_shape() {
    let rows = experiments::guessing_costs(&[6], 100);
    let row = rows[0];
    assert!(
        row.reseeded_mean > row.shared_key_mean * 1.4,
        "re-seeding must raise the cost: {} vs {}",
        row.reseeded_mean,
        row.shared_key_mean
    );
}

#[test]
fn attack_matrix_has_no_pacstack_hijacks() {
    use pacstack::attacks::rop::AttackOutcome;
    for row in experiments::attack_matrix() {
        for (scheme, outcome) in &row.outcomes {
            if *scheme == Scheme::PacStack {
                assert_ne!(
                    *outcome,
                    AttackOutcome::Hijacked,
                    "PACStack hijacked by {}",
                    row.attack
                );
            }
        }
    }
}
