//! The qualitative security matrix (paper §2, §6.1, §6.3.1) as assertions:
//! which scheme stops which attack, and how.

use pacstack::attacks::rop::{run_attack, AttackOutcome, WriteTarget};
use pacstack::attacks::{gadget, reuse};
use pacstack::compiler::Scheme;

#[test]
fn return_address_overwrite_matrix() {
    use AttackOutcome::*;
    let expected = [
        (Scheme::Baseline, Hijacked),
        (Scheme::StackProtector, Hijacked), // canary misses targeted writes
        (Scheme::PacRet, Crashed),
        (Scheme::ShadowCallStack, Ineffective),
        (Scheme::PacStackNomask, Ineffective), // frame record never loaded
        (Scheme::PacStack, Ineffective),
    ];
    for (scheme, outcome) in expected {
        assert_eq!(
            run_attack(scheme, WriteTarget::SavedReturnAddress),
            outcome,
            "{scheme} / targeted overwrite"
        );
    }
}

#[test]
fn linear_overflow_matrix() {
    use AttackOutcome::*;
    let expected = [
        (Scheme::Baseline, Hijacked),
        (Scheme::StackProtector, Crashed), // canary catches linear overflow
        (Scheme::PacRet, Crashed),
        (Scheme::ShadowCallStack, Ineffective),
        (Scheme::PacStackNomask, Crashed), // chain slot clobbered en route
        (Scheme::PacStack, Crashed),
    ];
    for (scheme, outcome) in expected {
        assert_eq!(
            run_attack(scheme, WriteTarget::LinearOverflow),
            outcome,
            "{scheme} / linear overflow"
        );
    }
}

#[test]
fn shadow_stack_location_leak_is_fatal_for_scs_only() {
    assert_eq!(
        run_attack(Scheme::ShadowCallStack, WriteTarget::ShadowStackTop),
        AttackOutcome::Hijacked
    );
    // PACStack has no hidden-location dependence at all.
    assert_eq!(
        run_attack(Scheme::PacStack, WriteTarget::ShadowStackTop),
        AttackOutcome::Ineffective
    );
}

#[test]
fn reuse_separates_pac_ret_from_pacstack() {
    // §2.2.1/Listing 6: the headline motivation for ACS.
    assert_eq!(
        reuse::run_reuse(Scheme::PacRet, true).outcome,
        AttackOutcome::Hijacked
    );
    assert_eq!(
        reuse::run_reuse(Scheme::PacStack, true).outcome,
        AttackOutcome::Ineffective
    );
    assert_eq!(
        reuse::run_reuse(Scheme::PacStackNomask, true).outcome,
        AttackOutcome::Ineffective
    );
}

#[test]
fn tail_call_gadget_never_hijacks_pacstack() {
    for scheme in [Scheme::PacStack, Scheme::PacStackNomask] {
        assert_eq!(
            gadget::tail_call_gadget_attack(scheme),
            AttackOutcome::Crashed,
            "{scheme}"
        );
    }
}
