//! Irregular stack unwinding at the ISA level (paper §4.4, §5.3,
//! Listings 4–5): `setjmp`/`longjmp` lowered per scheme, run on the
//! simulator, and attacked through the (writable) `jmp_buf`.

use pacstack::aarch64::{Cpu, Fault, RunStatus};
use pacstack::compiler::{jmp_buf_addr, lower, FuncDef, Module, Scheme, Stmt};

/// `main` sets up a handler, calls into a chain that throws from depth 2;
/// the handler emits a marker. Output: [7 (pre), 99 (handler)].
fn exception_module() -> Module {
    let mut m = Module::new();
    m.push(FuncDef::new(
        "main",
        vec![
            Stmt::TryCatch {
                buf: 0,
                body: vec![
                    Stmt::Compute(3),
                    Stmt::Call("risky_outer".into()),
                    // Unreachable: risky_outer always throws.
                    Stmt::Emit,
                ],
                handler: vec![Stmt::Emit], // emits the longjmp value
            },
            Stmt::Return,
        ],
    ));
    m.push(FuncDef::new(
        "risky_outer",
        vec![
            Stmt::MemAccess(1),
            Stmt::Call("risky_inner".into()),
            Stmt::Return,
        ],
    ));
    m.push(FuncDef::new(
        "risky_inner",
        vec![
            Stmt::Compute(1),
            Stmt::Throw { buf: 0, value: 99 },
            Stmt::Return,
        ],
    ));
    m
}

fn run_to_exit(cpu: &mut Cpu) -> (u64, Vec<u64>) {
    let out = cpu.run(10_000_000).expect("clean run");
    match out.status {
        RunStatus::Exited(code) => (code, cpu.output().to_vec()),
        RunStatus::Syscall(n) => panic!("unexpected syscall {n}"),
    }
}

#[test]
fn longjmp_reaches_the_handler_under_every_scheme() {
    for scheme in Scheme::ALL {
        let mut cpu = Cpu::with_seed(lower(&exception_module(), scheme), 3);
        let (_, output) = run_to_exit(&mut cpu);
        assert_eq!(
            output,
            vec![99],
            "{scheme}: handler did not run exactly once"
        );
    }
}

#[test]
fn chain_remains_usable_after_longjmp() {
    // After the non-local jump, main must still return cleanly through its
    // own (chain-protected) epilogue — the §5.3 compatibility requirement.
    for scheme in [Scheme::PacStack, Scheme::PacStackNomask] {
        let mut cpu = Cpu::with_seed(lower(&exception_module(), scheme), 5);
        let (exit, _) = run_to_exit(&mut cpu);
        // Exit code equals whatever main's accumulator held; the point is
        // that we exited rather than faulted.
        let _ = exit;
    }
}

#[test]
fn direct_path_runs_body_not_handler() {
    let mut m = Module::new();
    m.push(FuncDef::new(
        "main",
        vec![
            Stmt::TryCatch {
                buf: 1,
                body: vec![Stmt::Compute(2), Stmt::Emit],
                handler: vec![Stmt::Emit, Stmt::Emit],
            },
            Stmt::Return,
        ],
    ));
    for scheme in Scheme::ALL {
        let mut cpu = Cpu::with_seed(lower(&m, scheme), 1);
        let (_, output) = run_to_exit(&mut cpu);
        assert_eq!(output.len(), 1, "{scheme}: handler ran without a throw");
    }
}

#[test]
fn forged_jmp_buf_is_caught_by_pacstack_but_not_baseline() {
    // §4.4: jmp_buf lives in attacker-writable memory. Redirect the stored
    // resume address at a checkpoint before the throw.
    fn module_with_checkpoint() -> Module {
        let mut m = Module::new();
        m.push(FuncDef::new(
            "main",
            vec![
                Stmt::TryCatch {
                    buf: 0,
                    body: vec![Stmt::Call("thrower".into()), Stmt::Emit],
                    handler: vec![Stmt::Emit],
                },
                Stmt::Return,
            ],
        ));
        m.push(FuncDef::new(
            "thrower",
            vec![
                Stmt::Checkpoint(70), // adversary acts here
                Stmt::Throw { buf: 0, value: 5 },
                Stmt::Return,
            ],
        ));
        m.push(FuncDef::new(
            "gadget",
            vec![Stmt::Checkpoint(98), Stmt::Return],
        ));
        m
    }

    for (scheme, expect_hijack) in [
        (Scheme::Baseline, true),
        (Scheme::PacRet, true), // plain setjmp stores a raw pointer
        (Scheme::PacStackNomask, false),
        (Scheme::PacStack, false),
    ] {
        let mut cpu = Cpu::with_seed(lower(&module_with_checkpoint(), scheme), 11);
        let out = cpu.run(10_000_000).unwrap();
        assert_eq!(out.status, RunStatus::Syscall(70), "{scheme}");
        let gadget = cpu.symbol("gadget").unwrap();
        cpu.mem_mut().write_u64(jmp_buf_addr(0), gadget).unwrap();

        let mut hijacked = false;
        let crashed = loop {
            match cpu.run(10_000_000) {
                Ok(out) => match out.status {
                    RunStatus::Syscall(98) => {
                        hijacked = true;
                        continue;
                    }
                    RunStatus::Syscall(_) => continue,
                    RunStatus::Exited(_) => break false,
                },
                Err(Fault::Timeout) => panic!("{scheme}: diverged"),
                Err(_) => break true,
            }
        };
        if expect_hijack {
            assert!(hijacked, "{scheme}: forged jmp_buf should hijack");
        } else {
            assert!(crashed, "{scheme}: forged jmp_buf must fault");
            assert!(!hijacked, "{scheme}: gadget must not run");
        }
    }
}

#[test]
fn nested_try_catch_unwinds_to_the_right_handler() {
    let mut m = Module::new();
    m.push(FuncDef::new(
        "main",
        vec![
            Stmt::TryCatch {
                buf: 0,
                body: vec![Stmt::TryCatch {
                    buf: 1,
                    body: vec![Stmt::Call("inner_thrower".into())],
                    handler: vec![Stmt::Emit], // inner handler — expected
                }],
                handler: vec![Stmt::Emit, Stmt::Emit], // outer — wrong
            },
            Stmt::Return,
        ],
    ));
    m.push(FuncDef::new(
        "inner_thrower",
        vec![Stmt::Throw { buf: 1, value: 3 }, Stmt::Return],
    ));
    for scheme in [Scheme::Baseline, Scheme::PacStack] {
        let mut cpu = Cpu::with_seed(lower(&m, scheme), 2);
        let (_, output) = run_to_exit(&mut cpu);
        assert_eq!(output.len(), 1, "{scheme}: wrong handler ran");
    }
}
