//! Signals delivered into PACStack-instrumented code (paper §6.3.2 and
//! Appendix B): the chain must survive signal round trips, SROP must hand
//! the adversary CR only in the unprotected kernel configuration, and the
//! Appendix-B validation must close that hole.

use pacstack::aarch64::kernel::{SignalDelivery, SIGRETURN_SYSCALL};
use pacstack::aarch64::{Cpu, Fault, Reg, RunStatus};
use pacstack::compiler::{lower, FuncDef, Module, Scheme, Stmt};

const WORK_CHECKPOINT: u16 = 42;

/// Instrumented workload with a checkpoint mid-chain, plus an
/// uninstrumented leaf handler ending in `sigreturn`.
fn signal_module() -> Module {
    let mut m = Module::new();
    m.push(FuncDef::new(
        "main",
        vec![Stmt::Call("work".into()), Stmt::Emit, Stmt::Return],
    ));
    m.push(FuncDef::new(
        "work",
        vec![
            Stmt::Call("inner".into()),
            Stmt::Checkpoint(WORK_CHECKPOINT),
            Stmt::Call("inner".into()),
            Stmt::Return,
        ],
    ));
    m.push(FuncDef::new("inner", vec![Stmt::Compute(4), Stmt::Return]));
    // The handler is a leaf that issues sigreturn; it must not disturb the
    // interrupted chain (the kernel restores all registers).
    m.push(FuncDef::new(
        "handler",
        vec![Stmt::Compute(2), Stmt::Sigreturn, Stmt::Return],
    ));
    m
}

fn run_with_signal(scheme: Scheme, protected: bool, forge_cr: bool) -> Result<Vec<u64>, Fault> {
    let mut cpu = Cpu::with_seed(lower(&signal_module(), scheme), 21);
    let mut signals = if protected {
        SignalDelivery::protected()
    } else {
        SignalDelivery::new()
    };

    loop {
        let out = cpu.run(10_000_000)?;
        {
            match out.status {
                RunStatus::Exited(_) => return Ok(cpu.output().to_vec()),
                RunStatus::Syscall(WORK_CHECKPOINT) => {
                    // An asynchronous signal arrives mid-chain.
                    let handler = cpu.symbol("handler").expect("handler exists");
                    signals.deliver(&mut cpu, handler)?;
                }
                RunStatus::Syscall(SIGRETURN_SYSCALL) => {
                    if forge_cr {
                        // SROP: rewrite CR in the signal frame (slot 2+28).
                        let frame = cpu.reg(Reg::Sp);
                        cpu.mem_mut().write_u64(frame + (2 + 28) * 8, 0x4141_4141)?;
                    }
                    signals.sigreturn(&mut cpu)?;
                }
                RunStatus::Syscall(n) => panic!("unexpected syscall {n}"),
            }
        }
    }
}

#[test]
fn chain_survives_signal_round_trip_under_every_scheme() {
    for scheme in Scheme::ALL {
        let output =
            run_with_signal(scheme, false, false).unwrap_or_else(|f| panic!("{scheme}: {f}"));
        assert_eq!(
            output.len(),
            1,
            "{scheme}: program did not complete normally"
        );
    }
}

#[test]
fn srop_forges_cr_and_breaks_the_chain_when_unprotected() {
    // With vanilla sigreturn the adversary replaces CR; the chain breaks
    // at the next verification — the process crashes, but only *after* the
    // adversary controlled CR (§6.3.2's concern: with more care they could
    // have substituted a self-consistent state).
    let result = run_with_signal(Scheme::PacStack, false, true);
    assert!(result.is_err(), "forged CR must not unwind cleanly");
}

#[test]
fn appendix_b_protection_kills_forged_frames_before_they_load() {
    let result = run_with_signal(Scheme::PacStack, true, true);
    assert_eq!(result.unwrap_err(), Fault::SigreturnViolation);
}

#[test]
fn appendix_b_protection_is_transparent_to_benign_signals() {
    for scheme in [Scheme::PacStack, Scheme::PacStackNomask, Scheme::Baseline] {
        let output =
            run_with_signal(scheme, true, false).unwrap_or_else(|f| panic!("{scheme}: {f}"));
        assert_eq!(output.len(), 1, "{scheme}");
    }
}

#[test]
fn nested_signals_inside_instrumented_code() {
    // Two signals delivered back to back at successive checkpoints.
    let mut m = signal_module();
    let _ = &mut m; // same module; deliver on both checkpoints
    let mut cpu = Cpu::with_seed(lower(&m, Scheme::PacStack), 23);
    let mut signals = SignalDelivery::protected();
    let handler = cpu.symbol("handler").unwrap();
    let mut delivered = 0;
    loop {
        let out = cpu.run(10_000_000).expect("clean run");
        {
            match out.status {
                RunStatus::Exited(_) => break,
                RunStatus::Syscall(WORK_CHECKPOINT) => {
                    signals.deliver(&mut cpu, handler).unwrap();
                    // Nest a second signal immediately.
                    signals.deliver(&mut cpu, handler).unwrap();
                    delivered += 2;
                }
                RunStatus::Syscall(SIGRETURN_SYSCALL) => {
                    signals.sigreturn(&mut cpu).unwrap();
                }
                RunStatus::Syscall(n) => panic!("unexpected syscall {n}"),
            }
        }
    }
    assert_eq!(delivered, 2);
    assert_eq!(signals.depth(), 0, "all signal frames unwound");
}
