//! ConFIRM-style compatibility suite (paper §7.3).
//!
//! The paper runs the applicable ConFIRM micro-benchmarks — corner cases
//! that historically break CFI schemes — on the FVP and confirms they pass
//! with and without PACStack. This file reproduces that test matrix: each
//! case builds a corner-case program, runs it under *every* protection
//! scheme, and requires behaviour identical to the unprotected baseline.

use pacstack::aarch64::{Cpu, RunStatus};
use pacstack::compiler::{lower, FuncDef, Module, Scheme, Stmt};

/// Runs `module` under `scheme` to completion, returning (exit, output).
fn run(module: &Module, scheme: Scheme) -> (u64, Vec<u64>) {
    let mut cpu = Cpu::with_seed(lower(module, scheme), 99);
    let out = cpu.run(200_000_000).expect("compat program must run clean");
    match out.status {
        RunStatus::Exited(code) => (code, cpu.output().to_vec()),
        RunStatus::Syscall(n) => panic!("unexpected syscall {n}"),
    }
}

/// Asserts a module behaves identically under every scheme.
fn assert_compatible(module: &Module) {
    let baseline = run(module, Scheme::Baseline);
    for scheme in Scheme::ALL {
        let result = run(module, scheme);
        assert_eq!(result, baseline, "{scheme} diverged from baseline");
    }
}

#[test]
fn indirect_function_calls() {
    // ConFIRM: code pointers / indirect calls through function pointers.
    let mut m = Module::new();
    m.push(FuncDef::new(
        "main",
        vec![
            Stmt::CallIndirect("virt_a".into()),
            Stmt::Emit,
            Stmt::CallIndirect("virt_b".into()),
            Stmt::Emit,
            Stmt::Return,
        ],
    ));
    m.push(FuncDef::new("virt_a", vec![Stmt::Compute(3), Stmt::Return]));
    m.push(FuncDef::new("virt_b", vec![Stmt::Compute(7), Stmt::Return]));
    assert_compatible(&m);
}

#[test]
fn virtual_dispatch_through_callers() {
    // ConFIRM: virtual calls — an indirect call reached through a wrapper
    // layer, as vtable dispatch lowers to.
    let mut m = Module::new();
    m.push(FuncDef::new(
        "main",
        vec![Stmt::Call("dispatch".into()), Stmt::Emit, Stmt::Return],
    ));
    m.push(FuncDef::new(
        "dispatch",
        vec![
            Stmt::CallIndirect("impl_one".into()),
            Stmt::CallIndirect("impl_two".into()),
            Stmt::Return,
        ],
    ));
    m.push(FuncDef::new(
        "impl_one",
        vec![Stmt::Compute(2), Stmt::Return],
    ));
    m.push(FuncDef::new(
        "impl_two",
        vec![Stmt::MemAccess(2), Stmt::Return],
    ));
    assert_compatible(&m);
}

#[test]
fn tail_calls() {
    // ConFIRM: tail calls (the case §6.3.1 discusses for PACStack).
    let mut m = Module::new();
    m.push(FuncDef::new(
        "main",
        vec![Stmt::Call("outer".into()), Stmt::Emit, Stmt::Return],
    ));
    m.push(FuncDef::new(
        "outer",
        vec![Stmt::Compute(1), Stmt::TailCall("middle".into())],
    ));
    m.push(FuncDef::new(
        "middle",
        vec![Stmt::Compute(2), Stmt::TailCall("inner".into())],
    ));
    m.push(FuncDef::new(
        "inner",
        vec![Stmt::Compute(3), Stmt::Call("leafish".into()), Stmt::Return],
    ));
    m.push(FuncDef::new(
        "leafish",
        vec![Stmt::Compute(4), Stmt::Return],
    ));
    assert_compatible(&m);
}

#[test]
fn deep_call_chains() {
    // ConFIRM: unusually deep stacks (128 nested activations).
    let mut m = Module::new();
    m.push(FuncDef::new(
        "main",
        vec![Stmt::Call("d0".into()), Stmt::Return],
    ));
    for i in 0..128 {
        let body = if i == 127 {
            vec![Stmt::Compute(1), Stmt::Return]
        } else {
            vec![Stmt::Call(format!("d{}", i + 1)), Stmt::Return]
        };
        m.push(FuncDef::new(&format!("d{i}"), body));
    }
    assert_compatible(&m);
}

#[test]
fn calling_convention_callee_saved_flow() {
    // ConFIRM: calling conventions — data must flow through call
    // boundaries unchanged even with CR (X28) reserved.
    let mut m = Module::new();
    m.push(FuncDef::new(
        "main",
        vec![
            Stmt::Compute(5),
            Stmt::Call("add_layer".into()),
            Stmt::Compute(5),
            Stmt::Call("add_layer".into()),
            Stmt::Emit,
            Stmt::Return,
        ],
    ));
    m.push(FuncDef::new(
        "add_layer",
        vec![
            Stmt::Compute(9),
            Stmt::Call("add_core".into()),
            Stmt::Return,
        ],
    ));
    m.push(FuncDef::new(
        "add_core",
        vec![Stmt::Compute(4), Stmt::MemAccess(2), Stmt::Return],
    ));
    assert_compatible(&m);
}

#[test]
fn loops_with_calls_inside() {
    // ConFIRM: signal-safety-adjacent — repeated call/return cycles from
    // loop bodies (the pattern that stresses chain push/pop pairing).
    let mut m = Module::new();
    m.push(FuncDef::new(
        "main",
        vec![
            Stmt::Loop(32, vec![Stmt::Call("work".into()), Stmt::MemAccess(1)]),
            Stmt::Emit,
            Stmt::Return,
        ],
    ));
    m.push(FuncDef::new(
        "work",
        vec![Stmt::Loop(4, vec![Stmt::Call("unit".into())]), Stmt::Return],
    ));
    m.push(FuncDef::new("unit", vec![Stmt::Compute(2), Stmt::Return]));
    assert_compatible(&m);
}

#[test]
fn nested_loops_and_mixed_leaves() {
    let mut m = Module::new();
    m.push(FuncDef::new(
        "main",
        vec![
            Stmt::Loop(
                6,
                vec![Stmt::Loop(
                    5,
                    vec![Stmt::Call("leafy".into()), Stmt::Compute(1)],
                )],
            ),
            Stmt::Emit,
            Stmt::Return,
        ],
    ));
    m.push(FuncDef::new(
        "leafy",
        vec![Stmt::MemAccess(1), Stmt::Return],
    ));
    assert_compatible(&m);
}

#[test]
fn recursion_like_repeated_reentry() {
    // Static self-similar chains standing in for bounded recursion.
    let mut m = Module::new();
    m.push(FuncDef::new(
        "main",
        vec![Stmt::Call("r0".into()), Stmt::Emit, Stmt::Return],
    ));
    for i in 0..16 {
        let mut body = vec![Stmt::Compute(1)];
        if i < 15 {
            body.push(Stmt::Call(format!("r{}", i + 1)));
            body.push(Stmt::Call(format!("r{}", i + 1))); // binary fan-out
        }
        body.push(Stmt::Return);
        m.push(FuncDef::new(&format!("r{i}"), body));
    }
    assert_compatible(&m);
}

#[test]
fn indirect_tail_position_dispatch() {
    // Dispatch through a pointer followed by a tail call out.
    let mut m = Module::new();
    m.push(FuncDef::new(
        "main",
        vec![Stmt::Call("route".into()), Stmt::Emit, Stmt::Return],
    ));
    m.push(FuncDef::new(
        "route",
        vec![
            Stmt::CallIndirect("handler".into()),
            Stmt::TailCall("cleanup".into()),
        ],
    ));
    m.push(FuncDef::new(
        "handler",
        vec![Stmt::Compute(6), Stmt::Return],
    ));
    m.push(FuncDef::new(
        "cleanup",
        vec![Stmt::Compute(1), Stmt::Call("sync".into()), Stmt::Return],
    ));
    m.push(FuncDef::new("sync", vec![Stmt::Compute(1), Stmt::Return]));
    assert_compatible(&m);
}

#[test]
fn data_flow_through_emits() {
    // Observable output interleaved with calls must be identical in value
    // *and order* across schemes.
    let mut m = Module::new();
    m.push(FuncDef::new(
        "main",
        vec![
            Stmt::Emit,
            Stmt::Call("stage1".into()),
            Stmt::Emit,
            Stmt::Call("stage2".into()),
            Stmt::Emit,
            Stmt::Return,
        ],
    ));
    m.push(FuncDef::new(
        "stage1",
        vec![Stmt::Compute(11), Stmt::Call("tick".into()), Stmt::Return],
    ));
    m.push(FuncDef::new(
        "stage2",
        vec![Stmt::Compute(13), Stmt::Call("tick".into()), Stmt::Return],
    ));
    m.push(FuncDef::new("tick", vec![Stmt::Compute(1), Stmt::Return]));
    assert_compatible(&m);
}

#[test]
fn whole_spec_suite_is_scheme_invariant() {
    // Every SPEC-profile workload must compute identical results under all
    // schemes (this is the load-bearing property behind Figure 5).
    use pacstack::workloads::spec::{Suite, C_BENCHMARKS};
    for profile in &C_BENCHMARKS {
        let module = profile.module(Suite::Rate);
        let baseline = run(&module, Scheme::Baseline);
        for scheme in Scheme::ALL {
            assert_eq!(
                run(&module, scheme),
                baseline,
                "{} under {scheme}",
                profile.name
            );
        }
    }
}
