//! Differential security fuzzing: random adversary writes against a
//! PACStack-protected victim must never reach the gadget — the strongest
//! experimental form of the R1/R2 requirements.
//!
//! At the deployed 16-bit PAC width a random forgery succeeds with
//! probability 2⁻¹⁶ per attempt; seeds are fixed, so a passing run is
//! deterministic.

use pacstack::aarch64::{Cpu, Fault, Reg, RunStatus};
use pacstack::compiler::{lower, FuncDef, Module, Scheme, Stmt};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const VICTIM_CHECKPOINT: u16 = 42;
const GADGET_CHECKPOINT: u16 = 99;

fn victim() -> Module {
    let mut m = Module::new();
    m.push(FuncDef::new(
        "main",
        vec![
            Stmt::Call("layer1".into()),
            Stmt::Loop(2, vec![Stmt::Call("layer1".into())]),
            Stmt::Return,
        ],
    ));
    m.push(FuncDef::new(
        "layer1",
        vec![
            Stmt::MemAccess(1),
            Stmt::Call("layer2".into()),
            Stmt::Return,
        ],
    ));
    m.push(FuncDef::new(
        "layer2",
        vec![
            Stmt::Checkpoint(VICTIM_CHECKPOINT),
            Stmt::Call("leafy".into()),
            Stmt::Return,
        ],
    ));
    m.push(FuncDef::new("leafy", vec![Stmt::Compute(2), Stmt::Return]));
    m.push(FuncDef::new(
        "gadget",
        vec![Stmt::Checkpoint(GADGET_CHECKPOINT), Stmt::Return],
    ));
    m
}

/// One fuzz trial: at the first victim checkpoint, perform `writes` random
/// 8-byte writes into the live stack area (biased toward pointing at the
/// gadget), then resume and classify.
fn fuzz_trial(scheme: Scheme, rng: &mut StdRng, writes: usize) -> &'static str {
    let mut cpu = Cpu::with_seed(lower(&victim(), scheme), rng.gen());
    let out = cpu.run(1_000_000).expect("reach checkpoint");
    assert_eq!(out.status, RunStatus::Syscall(VICTIM_CHECKPOINT));

    let gadget = cpu.symbol("gadget").unwrap();
    let sp = cpu.reg(Reg::Sp);
    for _ in 0..writes {
        // Random offset across the live frames (layer2 + layer1 + main).
        let offset = rng.gen_range(0u64..160) & !7;
        let value = if rng.gen_bool(0.7) {
            gadget // try to aim at the gadget
        } else {
            rng.gen() // or scribble noise
        };
        let _ = cpu.mem_mut().write_u64(sp + offset, value);
    }

    loop {
        match cpu.run(1_000_000) {
            Ok(out) => match out.status {
                RunStatus::Syscall(GADGET_CHECKPOINT) => return "hijacked",
                RunStatus::Syscall(_) => continue,
                RunStatus::Exited(_) => return "survived",
            },
            Err(Fault::Timeout) => return "survived",
            Err(_) => return "crashed",
        }
    }
}

#[test]
fn pacstack_is_never_hijacked_by_random_writes() {
    let mut rng = StdRng::seed_from_u64(0xF022);
    for scheme in [Scheme::PacStack, Scheme::PacStackNomask] {
        let mut crashed = 0;
        for _ in 0..150 {
            let outcome = fuzz_trial(scheme, &mut rng, 3);
            assert_ne!(outcome, "hijacked", "{scheme} hijacked by random writes");
            if outcome == "crashed" {
                crashed += 1;
            }
        }
        // Writes that land on a chain slot (3 of the ~20 candidate slots
        // per write, 3 writes per trial ⇒ ~37% of trials) must crash; the
        // rest hit slots PACStack never reads and pass through harmlessly.
        assert!(crashed > 35, "{scheme}: only {crashed}/150 trials detected");
    }
}

#[test]
fn baseline_is_hijacked_often_under_the_same_fuzzing() {
    // Control experiment: the identical fuzzer against an unprotected
    // binary lands the gadget frequently.
    let mut rng = StdRng::seed_from_u64(0xF022);
    let mut hijacked = 0;
    for _ in 0..150 {
        if fuzz_trial(Scheme::Baseline, &mut rng, 3) == "hijacked" {
            hijacked += 1;
        }
    }
    assert!(
        hijacked > 30,
        "only {hijacked}/150 baseline trials hijacked — fuzzer too weak"
    );
}

#[test]
fn shadow_call_stack_survives_main_stack_fuzzing() {
    // SCS ignores main-stack writes entirely (its weakness is elsewhere —
    // the shadow region, tested in attack_matrix.rs).
    let mut rng = StdRng::seed_from_u64(0xF023);
    for _ in 0..100 {
        let outcome = fuzz_trial(Scheme::ShadowCallStack, &mut rng, 3);
        assert_ne!(outcome, "hijacked");
    }
}
