//! Parallel-equals-sequential guarantees for the experiment engine.
//!
//! Every Monte Carlo trial and sweep item draws from its own RNG stream
//! derived purely from `(experiment, trial-index)`, and the engine merges
//! worker results in index order — so the numbers (and therefore the
//! rendered tables) must be **byte-identical at any `--jobs` count**, and
//! stable across repeated same-seed invocations. These tests pin exactly
//! that, over every experiment the `repro` binary exposes plus the raw
//! Monte Carlo entry points underneath them.

use pacstack::acs::Masking;
use pacstack::compiler::Scheme;
use pacstack_bench::{exec, experiments, render};
use std::sync::Mutex;

/// `exec::set_jobs` is process-global, so runs at different job counts must
/// not interleave across test threads.
static JOBS_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` at jobs = 1, then twice at each of the given parallel job
/// counts, asserting every run produces the same value. Returns the
/// sequential result for any further shape checks.
fn assert_deterministic<T, F>(label: &str, parallel_jobs: &[usize], f: F) -> T
where
    T: PartialEq + std::fmt::Debug,
    F: Fn() -> T,
{
    let _guard = JOBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    exec::set_jobs(1);
    let sequential = f();
    for &jobs in parallel_jobs {
        exec::set_jobs(jobs);
        let first = f();
        let second = f();
        exec::set_jobs(0);
        assert_eq!(
            sequential, first,
            "{label}: jobs={jobs} diverged from jobs=1"
        );
        assert_eq!(
            first, second,
            "{label}: two same-seed invocations diverged at jobs={jobs}"
        );
    }
    exec::set_jobs(0);
    sequential
}

/// Every table the `repro` binary prints, rendered to its final string form
/// with moderate parameters — the strongest form of the guarantee, since it
/// is exactly what `repro --jobs N` writes to stdout.
#[test]
fn every_repro_table_is_identical_across_job_counts() {
    let all_tables = || {
        let mut out = String::new();
        for b in [4u32, 6] {
            out.push_str(&render::table1(&experiments::table1(b, 400, 0x71), b));
        }
        let fig5 = experiments::figure5();
        out.push_str(&render::figure5(&fig5));
        out.push_str(&render::table2(
            &experiments::table2(&fig5),
            experiments::cpp_aggregate(),
        ));
        out.push_str(&render::table3(&experiments::table3(2, 42)));
        out.push_str(&render::birthday(&experiments::birthday(&[6, 8], 15, 7)));
        out.push_str(&render::guessing(&experiments::guessing_costs(&[6], 60)));
        out.push_str(&render::attack_matrix(&experiments::attack_matrix()));
        out.push_str(&render::ablations(&experiments::ablations()));
        out.push_str(&render::games(&experiments::collision_games(
            &[4, 6],
            10,
            5,
        )));
        out.push_str(&render::pac_width(&experiments::pac_width_sweep()));
        out.push_str(&render::confirm(&experiments::confirm_table()));
        out.push_str(&render::instruction_mix(&experiments::instruction_mix()));
        out.push_str(&render::reuse(&experiments::reuse_opportunities()));
        out
    };
    let rendered = assert_deterministic("repro tables", &[4], all_tables);
    assert!(!rendered.is_empty());
}

/// The raw Monte Carlo attack entry points underneath the tables, compared
/// as structured results (success counts, means) rather than rendered text,
/// at several worker counts including one that does not divide the trial
/// count evenly.
#[test]
fn raw_attack_monte_carlos_are_identical_across_job_counts() {
    let sweep = || {
        let mut mc = Vec::new();
        for masking in [Masking::Masked, Masking::Unmasked] {
            mc.push(pacstack::attacks::collision::on_graph_attack(
                6, masking, 1_000, 0xA5,
            ));
            mc.push(pacstack::attacks::offgraph::to_call_site(
                6, masking, 1_000, 0xA5,
            ));
            mc.push(pacstack::attacks::offgraph::to_arbitrary_address(
                6, masking, 1_000, 0xA5,
            ));
        }
        mc
    };
    assert_deterministic("attack monte carlos", &[3, 4], sweep);
}

/// Guessing-cost and online-attack means, whose trial bodies ignore the
/// engine RNG but still rely on index-ordered merging.
#[test]
fn guessing_and_online_means_are_identical_across_job_counts() {
    let means = || {
        let dac = pacstack::attacks::guessing::mean_cost(40, |i| {
            pacstack::attacks::guessing::divide_and_conquer(6, 0xBEEF ^ i).total()
        });
        let online = pacstack::attacks::online::mean_attempts(Scheme::PacStack, 3, 8, 0xC0FFEE);
        (dac.to_bits(), online.to_bits())
    };
    assert_deterministic("guessing/online means", &[4], means);
}

/// The NGINX SSL-TPS workload: per-run handshake jitter comes from the
/// engine's per-trial streams, so mean and sigma must not move with the
/// worker count.
#[test]
fn ssl_tps_is_identical_across_job_counts() {
    let tps = || {
        [Scheme::Baseline, Scheme::PacStack]
            .map(|scheme| pacstack::workloads::nginx::ssl_tps(scheme, 4, 6, 42))
    };
    assert_deterministic("ssl_tps", &[2, 4], tps);
}
