//! Determinism guarantees for the fault-injection engine.
//!
//! Chaos campaigns fan trials out over the `pacstack-exec` worker pool;
//! like every other experiment, their results — down to the rendered
//! `repro faults` section — must be **byte-identical at any `--jobs`
//! count** and stable across repeated same-seed invocations.

use pacstack::chaos::campaign::{self, CellCounts};
use pacstack::chaos::FaultClass;
use pacstack_bench::{exec, experiments, render};
use std::sync::Mutex;

/// `exec::set_jobs` is process-global, so runs at different job counts must
/// not interleave across test threads.
static JOBS_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` at jobs = 1, then twice at each parallel job count, asserting
/// every run produces the same value.
fn assert_deterministic<T, F>(label: &str, parallel_jobs: &[usize], f: F) -> T
where
    T: PartialEq + std::fmt::Debug,
    F: Fn() -> T,
{
    let _guard = JOBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    exec::set_jobs(1);
    let sequential = f();
    for &jobs in parallel_jobs {
        exec::set_jobs(jobs);
        let first = f();
        let second = f();
        exec::set_jobs(0);
        assert_eq!(
            sequential, first,
            "{label}: jobs={jobs} diverged from jobs=1"
        );
        assert_eq!(
            first, second,
            "{label}: two same-seed invocations diverged at jobs={jobs}"
        );
    }
    exec::set_jobs(0);
    sequential
}

/// The rendered `repro faults` section — exactly what `repro faults
/// --jobs N` writes to stdout — is byte-identical at jobs 1 and 4.
#[test]
fn rendered_faults_section_is_identical_across_job_counts() {
    let section = || {
        let report = experiments::faults(4, 0xFA17).expect("campaign prepares");
        render::faults(&report)
    };
    let rendered = assert_deterministic("repro faults", &[4], section);
    assert!(rendered.contains("fault-injection detection coverage"));
    assert!(rendered.contains("crash-restart supervisor"));
}

/// The raw coverage matrix underneath the rendering, compared cell by
/// cell (including host-panic counts) at an uneven worker count.
#[test]
fn coverage_cells_are_identical_across_job_counts() {
    let matrix = || {
        let report = campaign::coverage_default(3, 0xC0DE).expect("campaign prepares");
        report
            .iter()
            .map(|t| {
                let cells: Vec<CellCounts> = FaultClass::ALL.iter().map(|c| *t.cell(*c)).collect();
                (t.label, cells, t.host_panics)
            })
            .collect::<Vec<_>>()
    };
    let report = assert_deterministic("coverage matrix", &[3, 4], matrix);
    for (label, cells, host_panics) in &report {
        assert_eq!(*host_panics, 0, "{label} panicked");
        let total: u64 = cells.iter().map(CellCounts::total).sum();
        assert_eq!(total, 3 * FaultClass::ALL.len() as u64, "{label}");
    }
}
