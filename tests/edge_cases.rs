//! Edge cases and failure injection across crate boundaries.

use pacstack::aarch64::kernel::Scheduler;
use pacstack::aarch64::{CostModel, Cpu, Instruction, Perms, Program, Reg};
use pacstack::acs::{AcsConfig, AuthenticatedCallStack};
use pacstack::compiler::{lower, FuncDef, Module, Scheme, Stmt};
use pacstack::pauth::{PaKeys, PointerAuth, VaLayout};

fn acs() -> AuthenticatedCallStack {
    AuthenticatedCallStack::new(
        PointerAuth::new(VaLayout::default()),
        PaKeys::from_seed(5),
        AcsConfig::default(),
    )
}

#[test]
fn interleaved_setjmp_buffers_resolve_independently() {
    let mut acs = acs();
    acs.call(0x40_1000);
    let outer = acs.setjmp(0x40_9000, 0x7fff_f000);
    acs.call(0x40_2000);
    let inner = acs.setjmp(0x40_9100, 0x7fff_e000);
    acs.call(0x40_3000);

    // Jump to the inner mark first, then the outer — both verify.
    assert_eq!(acs.longjmp(&inner).unwrap(), 0x40_9100);
    assert_eq!(acs.depth(), 2);
    assert_eq!(acs.longjmp(&outer).unwrap(), 0x40_9000);
    assert_eq!(acs.depth(), 1);
}

#[test]
fn longjmp_across_a_reseed_is_caught_by_the_validating_unwinder() {
    // Re-seeding (fork) rewrites the chain. A buffer captured before it is
    // *internally* consistent (its binding verifies under the unchanged PA
    // keys), so plain longjmp accepts it — the §9.1 freshness gap. But the
    // restored chain head no longer matches the rewritten frames, so (a)
    // the validating unwinder rejects the buffer up front, and (b) even
    // after a plain longjmp the very next return faults.
    let mut acs = acs();
    acs.call(0x40_1000);
    let stale = acs.setjmp(0x40_9000, 0x7fff_f000);

    let mut validating = acs.clone();
    validating.reseed(0xFEED_F00D);
    assert!(
        validating.longjmp_validating(&stale).is_err(),
        "validating unwinder must reject a pre-reseed buffer"
    );

    acs.reseed(0xFEED_F00D);
    assert_eq!(
        acs.longjmp(&stale).unwrap(),
        0x40_9000,
        "plain longjmp trusts the buffer"
    );
    assert!(
        acs.ret().is_err(),
        "the stale chain head breaks on the next return"
    );
}

#[test]
fn chain_register_exclusivity_against_jmpbuf_mixing() {
    // A buffer from one process (keys) presented to another fails.
    let mut a = acs();
    a.call(0x40_1000);
    let foreign = a.setjmp(0x40_9000, 0x7fff_f000);

    let mut b = AuthenticatedCallStack::new(
        PointerAuth::new(VaLayout::default()),
        PaKeys::from_seed(6),
        AcsConfig::default(),
    );
    b.call(0x40_1000);
    assert!(b.longjmp(&foreign).is_err());
}

#[test]
fn scheduler_with_huge_quantum_matches_uninterrupted_run() {
    let mut m = Module::new();
    m.push(FuncDef::new("main", vec![Stmt::Compute(3), Stmt::Return]));
    m.push(FuncDef::new(
        "worker",
        vec![Stmt::Loop(8, vec![Stmt::Call("unit".into())]), Stmt::Return],
    ));
    m.push(FuncDef::new("unit", vec![Stmt::Compute(5), Stmt::Return]));

    let run = |quantum: u64| {
        let mut cpu = Cpu::with_seed(lower(&m, Scheme::PacStack), 4);
        let mut sched = Scheduler::adopt_main(&cpu);
        sched.spawn(&mut cpu, "worker", 7).unwrap();
        sched.run_all(&mut cpu, quantum, 100_000).expect("clean")[1]
    };
    assert_eq!(run(10_000_000), run(13)); // no-preemption vs heavy preemption
}

#[test]
fn scheduler_reports_timeout_for_divergent_tasks() {
    let mut m = Module::new();
    m.push(FuncDef::new("main", vec![Stmt::Compute(1), Stmt::Return]));
    m.push(FuncDef::new(
        "spinner",
        vec![Stmt::Loop(1_000_000, vec![Stmt::Compute(50)]), Stmt::Return],
    ));
    let mut cpu = Cpu::with_seed(lower(&m, Scheme::Baseline), 1);
    let mut sched = Scheduler::adopt_main(&cpu);
    sched.spawn(&mut cpu, "spinner", 0).unwrap();
    assert!(sched.run_all(&mut cpu, 100, 10).is_err());
    // The spinner is still live; main may or may not have finished in 10
    // slices, but nothing crashed.
    assert!(sched.live_tasks() >= 1);
}

#[test]
fn custom_cost_model_scales_pa_cycles() {
    let program = || {
        let mut p = Program::new();
        p.function(
            "main",
            vec![
                Instruction::Paciasp,
                Instruction::Autiasp,
                Instruction::MovImm(Reg::X0, 0),
                Instruction::Ret,
            ],
        );
        p
    };
    let run = |pa_cost: u64| {
        let cost = CostModel {
            pointer_auth: pa_cost,
            ..CostModel::default()
        };
        let mut cpu = Cpu::with_parts(
            program(),
            PaKeys::from_seed(1),
            PointerAuth::new(VaLayout::default()),
            cost,
        );
        cpu.run(100).unwrap().cycles
    };
    // Two PA instructions: raising their cost by 6 each adds 12 cycles.
    assert_eq!(run(10) - run(4), 12);
}

#[test]
fn adjacent_memory_segments_and_boundary_access() {
    let mut mem = pacstack::aarch64::Memory::new(VaLayout::default());
    mem.map(0x1000, 0x1000, Perms::ReadWrite);
    mem.map(0x2000, 0x1000, Perms::ReadWrite); // exactly adjacent: allowed
    mem.write_u64(0x1FF8, 0xAA).unwrap(); // last slot of segment 1
    mem.write_u64(0x2000, 0xBB).unwrap(); // first slot of segment 2
    assert_eq!(mem.read_u64(0x1FF8).unwrap(), 0xAA);
    // A straddling access is rejected even though both sides are mapped —
    // the segments are distinct mappings.
    assert!(mem.read_u64(0x1FFC).is_err());
}

#[test]
fn trace_captures_the_road_to_a_fault() {
    let mut m = Module::new();
    m.push(FuncDef::new(
        "main",
        vec![
            Stmt::Checkpoint(42),
            Stmt::Call("noop".into()),
            Stmt::Return,
        ],
    ));
    m.push(FuncDef::new("noop", vec![Stmt::Compute(1), Stmt::Return]));
    let mut cpu = Cpu::with_seed(lower(&m, Scheme::PacStack), 9);
    cpu.enable_trace(16);
    cpu.run(100_000).unwrap();
    let sp = cpu.reg(Reg::Sp);
    cpu.mem_mut().write_u64(sp, 0xBAD).unwrap(); // chain slot
    assert!(cpu.run(100_000).is_err());
    let trace = cpu.trace().unwrap();
    // The last traced instruction is the one whose result faulted (the
    // return through the corrupted chain).
    let last = trace.entries().last().unwrap();
    assert!(
        matches!(last.insn, Instruction::Ret | Instruction::Autia(..)),
        "unexpected final instruction {:?}",
        last.insn
    );
}

#[test]
fn single_iteration_loop_is_fine() {
    let mut m = Module::new();
    m.push(FuncDef::new(
        "main",
        vec![Stmt::Loop(1, vec![Stmt::Compute(1)]), Stmt::Return],
    ));
    let mut cpu = Cpu::with_seed(lower(&m, Scheme::Baseline), 1);
    assert!(cpu.run(10_000).is_ok());
}

#[test]
#[should_panic(expected = "Loop(0)")]
fn zero_iteration_loop_is_rejected_at_lowering() {
    // A 0-count loop would underflow the down-counter and diverge; the
    // lowering rejects it up front.
    let mut m = Module::new();
    m.push(FuncDef::new(
        "main",
        vec![Stmt::Loop(0, vec![Stmt::Compute(1)]), Stmt::Return],
    ));
    let _ = lower(&m, Scheme::Baseline);
}
