//! Prints per-benchmark overheads for calibration.
use pacstack_compiler::Scheme;
use pacstack_workloads::measure::overhead_percent;
use pacstack_workloads::nginx::server_module;
use pacstack_workloads::spec::{Suite, CPP_BENCHMARKS, C_BENCHMARKS};

fn main() {
    let budget = 1_000_000_000;
    println!(
        "{:<12} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "bench", "canary", "pacret", "scs", "nomask", "full"
    );
    for p in C_BENCHMARKS.iter().chain(CPP_BENCHMARKS.iter()) {
        let m = p.module(Suite::Rate);
        println!(
            "{:<12} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2}",
            p.name,
            overhead_percent(&m, Scheme::StackProtector, budget),
            overhead_percent(&m, Scheme::PacRet, budget),
            overhead_percent(&m, Scheme::ShadowCallStack, budget),
            overhead_percent(&m, Scheme::PacStackNomask, budget),
            overhead_percent(&m, Scheme::PacStack, budget),
        );
    }
    let m = server_module(40);
    println!(
        "{:<12} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2}",
        "nginx",
        overhead_percent(&m, Scheme::StackProtector, budget),
        overhead_percent(&m, Scheme::PacRet, budget),
        overhead_percent(&m, Scheme::ShadowCallStack, budget),
        overhead_percent(&m, Scheme::PacStackNomask, budget),
        overhead_percent(&m, Scheme::PacStack, budget),
    );
}
