//! Measurement helpers: run a module under each scheme, report overheads.

use pacstack_aarch64::{Cpu, Fault, RunStatus};
use pacstack_compiler::{lower, Module, Scheme};

/// Result of running one module under one scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Measurement {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Total retired instructions.
    pub instructions: u64,
    /// The program's exit code (schemes must agree on it).
    pub exit_code: u64,
}

/// Runs `module` to completion under `scheme` and measures it.
///
/// # Panics
///
/// Panics if the program faults or exceeds `budget` instructions — workload
/// programs are supposed to run clean under every scheme.
pub fn run_module(module: &Module, scheme: Scheme, budget: u64) -> Measurement {
    let program = lower(module, scheme);
    let mut cpu = Cpu::with_seed(program, 0xACE5);
    match cpu.run(budget) {
        Ok(out) => match out.status {
            RunStatus::Exited(code) => Measurement {
                cycles: out.cycles,
                instructions: out.instructions,
                exit_code: code,
            },
            RunStatus::Syscall(n) => panic!("workload raised unexpected syscall {n}"),
        },
        Err(Fault::Timeout) => panic!("workload exceeded {budget} instructions"),
        Err(fault) => panic!("workload faulted under {scheme}: {fault}"),
    }
}

/// Percentage overhead of `scheme` over the baseline for `module`.
///
/// # Panics
///
/// Panics if the two runs disagree on the exit code (an instrumentation
/// correctness bug) or if either run faults.
pub fn overhead_percent(module: &Module, scheme: Scheme, budget: u64) -> f64 {
    let base = run_module(module, Scheme::Baseline, budget);
    let inst = run_module(module, scheme, budget);
    assert_eq!(
        base.exit_code, inst.exit_code,
        "{scheme} changed program behaviour"
    );
    (inst.cycles as f64 - base.cycles as f64) / base.cycles as f64 * 100.0
}

/// Geometric mean of a slice of percentage overheads, computed over the
/// run-time *ratios* (as SPEC does), returned as a percentage.
///
/// # Examples
///
/// ```
/// use pacstack_workloads::measure::geometric_mean_percent;
///
/// let g = geometric_mean_percent(&[1.0, 4.0]);
/// assert!((g - 2.488).abs() < 0.01); // sqrt(1.01 * 1.04) = 1.02488
/// ```
pub fn geometric_mean_percent(overheads: &[f64]) -> f64 {
    if overheads.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = overheads.iter().map(|p| (1.0 + p / 100.0).ln()).sum();
    ((log_sum / overheads.len() as f64).exp() - 1.0) * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacstack_compiler::{FuncDef, Stmt};

    fn tiny_module() -> Module {
        let mut m = Module::new();
        m.push(FuncDef::new(
            "main",
            vec![Stmt::Loop(10, vec![Stmt::Call("f".into())]), Stmt::Return],
        ));
        m.push(FuncDef::new("f", vec![Stmt::Compute(5), Stmt::Return]));
        m
    }

    #[test]
    fn overhead_is_positive_for_instrumented_schemes() {
        let m = tiny_module();
        assert!(overhead_percent(&m, Scheme::PacStack, 1_000_000) > 0.0);
        assert_eq!(overhead_percent(&m, Scheme::Baseline, 1_000_000), 0.0);
    }

    #[test]
    fn geometric_mean_of_equal_values_is_that_value() {
        let g = geometric_mean_percent(&[3.0, 3.0, 3.0]);
        assert!((g - 3.0).abs() < 1e-9);
    }

    #[test]
    fn geometric_mean_of_empty_is_zero() {
        assert_eq!(geometric_mean_percent(&[]), 0.0);
    }

    #[test]
    fn measurements_are_deterministic() {
        let m = tiny_module();
        let a = run_module(&m, Scheme::PacStack, 1_000_000);
        let b = run_module(&m, Scheme::PacStack, 1_000_000);
        assert_eq!(a, b);
    }
}
