//! Measurement helpers: run a module under each scheme, report overheads.

use pacstack_aarch64::{Cpu, Fault, RunStatus};
use pacstack_compiler::{lower, Module, Scheme};
use pacstack_telemetry as telemetry;
use pacstack_telemetry::SpanEvent;

/// Span-buffer cap for [`run_module_profiled`]; overflow is counted, not
/// silently dropped (`workload_profile_spans_dropped_total`).
const PROFILE_SPAN_CAP: usize = 1 << 16;

/// Result of running one module under one scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Measurement {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Total retired instructions.
    pub instructions: u64,
    /// The program's exit code (schemes must agree on it).
    pub exit_code: u64,
}

/// Runs `module` to completion under `scheme` and measures it.
///
/// # Panics
///
/// Panics if the program faults or exceeds `budget` instructions — workload
/// programs are supposed to run clean under every scheme.
pub fn run_module(module: &Module, scheme: Scheme, budget: u64) -> Measurement {
    let program = lower(module, scheme);
    let mut cpu = Cpu::with_seed(program, 0xACE5);
    match cpu.run(budget) {
        Ok(out) => match out.status {
            RunStatus::Exited(code) => Measurement {
                cycles: out.cycles,
                instructions: out.instructions,
                exit_code: code,
            },
            RunStatus::Syscall(n) => panic!("workload raised unexpected syscall {n}"),
        },
        Err(Fault::Timeout) => panic!("workload exceeded {budget} instructions"),
        Err(fault) => panic!("workload faulted under {scheme}: {fault}"),
    }
}

/// Runs `module` under `scheme` with per-function cycle attribution and
/// publishes the profile through the telemetry sink.
///
/// Collapsed call stacks land as flamegraph entries prefixed with `track`
/// (`"{track};{stack}"`), completed activations as span events on the
/// `track` timeline, and the run's architectural counters via
/// [`Cpu::publish_telemetry`]. With telemetry disabled this is exactly
/// [`run_module`] plus a dormant profiler: the measurement is identical
/// because profiling never touches architectural state.
///
/// # Panics
///
/// Panics under the same conditions as [`run_module`].
pub fn run_module_profiled(
    module: &Module,
    scheme: Scheme,
    budget: u64,
    track: &str,
) -> Measurement {
    let program = lower(module, scheme);
    let mut cpu = Cpu::with_seed(program, 0xACE5);
    cpu.enable_profile(PROFILE_SPAN_CAP);
    let out = match cpu.run(budget) {
        Ok(out) => out,
        Err(Fault::Timeout) => panic!("workload exceeded {budget} instructions"),
        Err(fault) => panic!("workload faulted under {scheme}: {fault}"),
    };
    let code = match out.status {
        RunStatus::Exited(code) => code,
        RunStatus::Syscall(n) => panic!("workload raised unexpected syscall {n}"),
    };
    if telemetry::enabled() {
        if let Some(profile) = cpu.take_profile() {
            for (stack, self_cycles) in &profile.stacks {
                telemetry::stack(&format!("{track};{stack}"), *self_cycles);
            }
            for span in &profile.spans {
                telemetry::span(SpanEvent::new(
                    track,
                    span.name.as_str(),
                    "function",
                    span.start,
                    span.dur,
                ));
            }
            if profile.dropped_spans > 0 {
                telemetry::counter(
                    "workload_profile_spans_dropped_total",
                    profile.dropped_spans,
                );
            }
        }
        telemetry::observe_cycles("workload_run_cycles", out.cycles);
    }
    Measurement {
        cycles: out.cycles,
        instructions: out.instructions,
        exit_code: code,
    }
}

/// Percentage overhead of `scheme` over the baseline for `module`.
///
/// # Panics
///
/// Panics if the two runs disagree on the exit code (an instrumentation
/// correctness bug) or if either run faults.
pub fn overhead_percent(module: &Module, scheme: Scheme, budget: u64) -> f64 {
    let base = run_module(module, Scheme::Baseline, budget);
    let inst = run_module(module, scheme, budget);
    assert_eq!(
        base.exit_code, inst.exit_code,
        "{scheme} changed program behaviour"
    );
    (inst.cycles as f64 - base.cycles as f64) / base.cycles as f64 * 100.0
}

/// Geometric mean of a slice of percentage overheads, computed over the
/// run-time *ratios* (as SPEC does), returned as a percentage.
///
/// # Examples
///
/// ```
/// use pacstack_workloads::measure::geometric_mean_percent;
///
/// let g = geometric_mean_percent(&[1.0, 4.0]);
/// assert!((g - 2.488).abs() < 0.01); // sqrt(1.01 * 1.04) = 1.02488
/// ```
pub fn geometric_mean_percent(overheads: &[f64]) -> f64 {
    if overheads.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = overheads.iter().map(|p| (1.0 + p / 100.0).ln()).sum();
    ((log_sum / overheads.len() as f64).exp() - 1.0) * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacstack_compiler::{FuncDef, Stmt};

    fn tiny_module() -> Module {
        let mut m = Module::new();
        m.push(FuncDef::new(
            "main",
            vec![Stmt::Loop(10, vec![Stmt::Call("f".into())]), Stmt::Return],
        ));
        m.push(FuncDef::new("f", vec![Stmt::Compute(5), Stmt::Return]));
        m
    }

    #[test]
    fn overhead_is_positive_for_instrumented_schemes() {
        let m = tiny_module();
        assert!(overhead_percent(&m, Scheme::PacStack, 1_000_000) > 0.0);
        assert_eq!(overhead_percent(&m, Scheme::Baseline, 1_000_000), 0.0);
    }

    #[test]
    fn geometric_mean_of_equal_values_is_that_value() {
        let g = geometric_mean_percent(&[3.0, 3.0, 3.0]);
        assert!((g - 3.0).abs() < 1e-9);
    }

    #[test]
    fn geometric_mean_of_empty_is_zero() {
        assert_eq!(geometric_mean_percent(&[]), 0.0);
    }

    #[test]
    fn profiled_run_matches_plain_run() {
        // Profiling must be architecturally invisible: same cycles, same
        // instructions, same exit code, telemetry on or off.
        let m = tiny_module();
        for scheme in [Scheme::Baseline, Scheme::PacStack] {
            let plain = run_module(&m, scheme, 1_000_000);
            let profiled = run_module_profiled(&m, scheme, 1_000_000, "test");
            assert_eq!(plain, profiled, "{scheme}");
        }
    }

    #[test]
    fn measurements_are_deterministic() {
        let m = tiny_module();
        let a = run_module(&m, Scheme::PacStack, 1_000_000);
        let b = run_module(&m, Scheme::PacStack, 1_000_000);
        assert_eq!(a, b);
    }
}
