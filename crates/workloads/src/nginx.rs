//! The NGINX SSL-TPS server model (paper §7.2, Table 3).
//!
//! The paper's test drives NGINX with one HTTPS request per connection and
//! a 0-byte response, making the server CPU-bound on connection setup: the
//! TLS handshake's public-key arithmetic, which in OpenSSL is a storm of
//! small bignum-helper calls — precisely the call-heavy profile that
//! maximises return-address-protection overhead (the paper measures 6–13%
//! for full PACStack there, versus ≈3% on SPEC).
//!
//! The model runs an accept → handshake → respond → close loop per
//! transaction; the handshake spins on instrumented bignum helpers. TPS is
//! simulated cycles converted through a nominal clock and scaled linearly
//! across workers. Run-to-run jitter (the paper reports σ over `wrk`
//! sessions) comes from perturbing the handshake round count per run.

use crate::measure::run_module;
use pacstack_compiler::{FuncDef, Module, Scheme, Stmt};
use pacstack_exec as exec;
use rand::Rng;

/// RNG-stream tag for [`ssl_tps`] measurement sessions. Deliberately
/// excludes the scheme: paired comparisons (baseline vs instrumented at
/// the same seed) must see identical per-run handshake jitter.
const STREAM_SSL_TPS: u64 = 0x5517_7005_EA51_0005;

/// Nominal CPU clock used to convert cycles to wall-clock TPS.
pub const CLOCK_HZ: f64 = 2.0e9;

/// Transactions simulated per measurement run (per worker).
pub const TRANSACTIONS: u32 = 40;

/// Builds the per-worker server module.
///
/// `handshake_rounds` controls how many bignum operations one TLS
/// handshake performs (the RSA-2048 / ECDHE profile of the paper's cipher
/// suite is call-heavy).
pub fn server_module(handshake_rounds: u32) -> Module {
    let mut m = Module::new();
    m.push(FuncDef::new(
        "main",
        vec![
            Stmt::Loop(
                TRANSACTIONS,
                vec![
                    Stmt::Call("accept_conn".into()),
                    Stmt::Call("tls_handshake".into()),
                    Stmt::Call("respond".into()),
                    Stmt::Call("close_conn".into()),
                ],
            ),
            Stmt::Return,
        ],
    ));
    m.push(FuncDef::new(
        "accept_conn",
        vec![
            Stmt::Compute(150),
            Stmt::MemAccess(35),
            Stmt::Call("alloc_buf".into()),
            Stmt::Return,
        ],
    ));
    m.push(FuncDef::new(
        "tls_handshake",
        vec![
            Stmt::Loop(
                handshake_rounds,
                vec![
                    Stmt::Call("bn_mul".into()),
                    Stmt::Call("bn_sqr".into()),
                    Stmt::Call("bn_mod".into()),
                ],
            ),
            Stmt::Call("kdf".into()),
            Stmt::Return,
        ],
    ));
    // Bignum helpers: small bodies, each calling a limb-level leaf — the
    // OpenSSL shape that makes handshakes call-bound.
    m.push(FuncDef::new(
        "bn_mul",
        vec![
            Stmt::Compute(95),
            Stmt::MemAccess(22),
            Stmt::Call("limb_op".into()),
            Stmt::Return,
        ],
    ));
    m.push(FuncDef::new(
        "bn_sqr",
        vec![
            Stmt::Compute(75),
            Stmt::MemAccess(18),
            Stmt::Call("limb_op".into()),
            Stmt::Return,
        ],
    ));
    m.push(FuncDef::new(
        "bn_mod",
        vec![
            Stmt::Compute(110),
            Stmt::MemAccess(26),
            Stmt::Call("limb_op".into()),
            Stmt::Return,
        ],
    ));
    m.push(FuncDef::new(
        "kdf",
        vec![
            Stmt::Compute(300),
            Stmt::Call("digest_block".into()),
            Stmt::Return,
        ],
    ));
    m.push(FuncDef::new(
        "respond",
        vec![
            Stmt::Compute(190),
            Stmt::MemAccess(45),
            Stmt::Call("writev_stub".into()),
            Stmt::Return,
        ],
    ));
    m.push(FuncDef::new(
        "close_conn",
        vec![Stmt::Compute(55), Stmt::Return],
    ));
    m.push(FuncDef::new(
        "alloc_buf",
        vec![Stmt::Compute(75), Stmt::Return],
    ));
    m.push(FuncDef::new(
        "limb_op",
        vec![Stmt::Compute(52), Stmt::Return],
    ));
    m.push(FuncDef::new(
        "digest_block",
        vec![Stmt::Compute(220), Stmt::Return],
    ));
    m.push(FuncDef::new(
        "writev_stub",
        vec![Stmt::Compute(95), Stmt::Return],
    ));
    m
}

/// Result of an SSL-TPS measurement campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct TpsResult {
    /// Mean transactions per second across runs.
    pub mean_tps: f64,
    /// Standard deviation across runs.
    pub sigma: f64,
    /// Number of measurement runs.
    pub runs: usize,
}

/// Measures SSL TPS for `scheme` with `workers` NGINX workers.
///
/// Each of `runs` measurement sessions perturbs the handshake round count
/// ±10% (run-to-run load jitter) and measures cycles per transaction; TPS
/// scales linearly with workers at the nominal clock. Sessions fan out
/// across the [`pacstack_exec`] worker pool; each draws its jitter from its
/// own `(seed, run-index)` stream, so the result is identical at any
/// thread count.
///
/// # Panics
///
/// Panics if a run faults (the workload must run clean under every scheme).
pub fn ssl_tps(scheme: Scheme, workers: u32, runs: usize, seed: u64) -> TpsResult {
    let run = exec::run_trials(seed ^ STREAM_SSL_TPS, runs as u64, |_, rng| {
        let rounds = 36 + rng.gen_range(0..=8); // 40 ± 10%
        let module = server_module(rounds);
        let m = run_module(&module, scheme, 1_000_000_000);
        let cycles_per_txn = m.cycles as f64 / f64::from(TRANSACTIONS);
        f64::from(workers) * CLOCK_HZ / cycles_per_txn
    });
    exec::stats::record(format!("ssl-tps {scheme} workers={workers}"), run.stats);
    let samples = run.results;
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / samples.len() as f64;
    TpsResult {
        mean_tps: mean,
        sigma: var.sqrt(),
        runs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::overhead_percent;

    #[test]
    fn handshake_dominates_and_is_call_heavy() {
        // Full PACStack overhead on the server should exceed its overhead
        // on a compute-bound SPEC profile — the paper's NGINX result.
        let module = server_module(40);
        let o = overhead_percent(&module, Scheme::PacStack, 1_000_000_000);
        assert!(o > 4.0, "server overhead only {o}%");
        assert!(o < 20.0, "server overhead implausibly high: {o}%");
    }

    #[test]
    fn nomask_costs_less_than_full() {
        let module = server_module(40);
        let nomask = overhead_percent(&module, Scheme::PacStackNomask, 1_000_000_000);
        let full = overhead_percent(&module, Scheme::PacStack, 1_000_000_000);
        assert!(nomask < full);
        assert!(nomask > 2.0, "nomask overhead only {nomask}%");
    }

    #[test]
    fn tps_scales_linearly_with_workers() {
        let four = ssl_tps(Scheme::Baseline, 4, 3, 1);
        let eight = ssl_tps(Scheme::Baseline, 8, 3, 1);
        let ratio = eight.mean_tps / four.mean_tps;
        assert!((1.9..2.1).contains(&ratio), "worker scaling ratio {ratio}");
    }

    #[test]
    fn instrumented_tps_is_lower_than_baseline() {
        let base = ssl_tps(Scheme::Baseline, 4, 3, 7);
        let nomask = ssl_tps(Scheme::PacStackNomask, 4, 3, 7);
        let full = ssl_tps(Scheme::PacStack, 4, 3, 7);
        assert!(base.mean_tps > nomask.mean_tps);
        assert!(nomask.mean_tps > full.mean_tps);
    }

    #[test]
    fn sigma_reflects_run_jitter() {
        let result = ssl_tps(Scheme::Baseline, 4, 8, 3);
        assert!(result.sigma > 0.0);
        assert!(result.sigma < result.mean_tps * 0.1, "σ implausibly large");
    }
}
