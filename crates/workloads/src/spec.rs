//! SPEC CPU 2017-profile synthetic benchmarks (paper §7.1, Figure 5,
//! Table 2).
//!
//! Each profile encodes the published character of one SPEC C benchmark as
//! the three quantities that determine instrumentation overhead: how deep
//! the hot call chain is, how much body work each activation performs, and
//! how much of the activity happens in (uninstrumented) leaf functions.
//! `perlbench` (an interpreter) makes very frequent, shallow calls;
//! `lbm` (a lattice-Boltzmann kernel) spins in loops and almost never
//! calls; the rest sit in between.
//!
//! The paper runs each benchmark in SPECrate (`_r`) and SPECspeed (`_s`)
//! configurations; speed runs use larger inputs whose hot regions are
//! noticeably more call-bound, which the profiles reflect with a reduced
//! body-work multiplier.

use pacstack_compiler::{FuncDef, Module, Stmt};

/// Which SPEC suite flavour to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// SPECrate (`*_r`): throughput configuration.
    Rate,
    /// SPECspeed (`*_s`): time-to-completion configuration.
    Speed,
}

impl std::fmt::Display for Suite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Suite::Rate => f.write_str("SPECrate"),
            Suite::Speed => f.write_str("SPECspeed"),
        }
    }
}

/// A synthetic profile of one SPEC CPU 2017 benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchProfile {
    /// Benchmark name (`perlbench`, `gcc`, ...).
    pub name: &'static str,
    /// Depth of the hot (instrumented) call chain per outer iteration.
    pub depth: u32,
    /// Leaf calls made by each hot function (uninstrumented activations).
    pub leaf_calls: u32,
    /// ALU operations per hot-function body.
    pub compute: u32,
    /// Store/load pairs per hot-function body.
    pub mem: u32,
    /// ALU operations per leaf body.
    pub leaf_compute: u32,
    /// Outer-loop iterations (sets total run length).
    pub iterations: u32,
}

impl BenchProfile {
    /// Builds the benchmark as an IR module for the given suite flavour.
    ///
    /// SPECspeed variants scale body work down ~28% (hot regions more
    /// call-bound) and run more iterations.
    pub fn module(&self, suite: Suite) -> Module {
        let (compute, mem, iterations) = match suite {
            Suite::Rate => (self.compute, self.mem, self.iterations),
            Suite::Speed => (
                (self.compute as f64 * 0.72).round().max(1.0) as u32,
                self.mem,
                self.iterations * 2,
            ),
        };

        let mut m = Module::new();
        m.push(FuncDef::new(
            "main",
            vec![
                Stmt::Loop(iterations, vec![Stmt::Call("hot_0".into())]),
                Stmt::Return,
            ],
        ));
        for i in 0..self.depth {
            let mut body = vec![Stmt::Compute(compute), Stmt::MemAccess(mem)];
            for _ in 0..self.leaf_calls {
                body.push(Stmt::Call("leaf".into()));
            }
            if i + 1 < self.depth {
                body.push(Stmt::Call(format!("hot_{}", i + 1)));
            }
            body.push(Stmt::Return);
            m.push(FuncDef::new(&format!("hot_{i}"), body));
        }
        m.push(FuncDef::new(
            "leaf",
            vec![Stmt::Compute(self.leaf_compute), Stmt::Return],
        ));
        m
    }
}

/// The eight C-language SPEC CPU 2017 benchmarks of the paper's Figure 5.
///
/// Calibrated so that full-PACStack overheads approximate the paper's
/// per-benchmark results: `perlbench` highest (call-bound interpreter
/// loop), `lbm` negligible (no calls in the hot loop), geometric means
/// near Table 2 (≈2.75% SPECrate / ≈3.28% SPECspeed, perlbench excluded).
pub const C_BENCHMARKS: [BenchProfile; 8] = [
    BenchProfile {
        // Interpreter: dispatch loop calling tiny opcode handlers.
        name: "perlbench",
        depth: 5,
        leaf_calls: 3,
        compute: 104,
        mem: 23,
        leaf_compute: 58,
        iterations: 60,
    },
    BenchProfile {
        // Compiler: deep pass pipelines over small functions.
        name: "gcc",
        depth: 6,
        leaf_calls: 2,
        compute: 180,
        mem: 36,
        leaf_compute: 81,
        iterations: 50,
    },
    BenchProfile {
        // Vehicle scheduling: pointer-chasing with moderate call rate.
        name: "mcf",
        depth: 2,
        leaf_calls: 1,
        compute: 516,
        mem: 258,
        leaf_compute: 172,
        iterations: 60,
    },
    BenchProfile {
        // Lattice Boltzmann: one big stencil loop, essentially no calls.
        name: "lbm",
        depth: 1,
        leaf_calls: 0,
        compute: 4000,
        mem: 1200,
        leaf_compute: 1,
        iterations: 12,
    },
    BenchProfile {
        // Video encoder: block-level helper calls around SIMD-ish kernels.
        name: "x264",
        depth: 3,
        leaf_calls: 2,
        compute: 234,
        mem: 65,
        leaf_compute: 156,
        iterations: 60,
    },
    BenchProfile {
        // Image transforms: medium-sized kernels behind wrapper calls.
        name: "imagick",
        depth: 2,
        leaf_calls: 1,
        compute: 594,
        mem: 162,
        leaf_compute: 324,
        iterations: 40,
    },
    BenchProfile {
        // Molecular dynamics: force loops with helper-function calls.
        name: "nab",
        depth: 3,
        leaf_calls: 2,
        compute: 231,
        mem: 66,
        leaf_compute: 149,
        iterations: 60,
    },
    BenchProfile {
        // LZMA: match-finder helpers around long compression loops.
        name: "xz",
        depth: 2,
        leaf_calls: 1,
        compute: 420,
        mem: 126,
        leaf_compute: 196,
        iterations: 60,
    },
];

/// The C++ benchmarks the paper reports aggregate numbers for
/// (≈2.0% PACStack / ≈0.9% nomask): virtual-call-heavy object soup.
pub const CPP_BENCHMARKS: [BenchProfile; 5] = [
    BenchProfile {
        name: "omnetpp",
        depth: 6,
        leaf_calls: 2,
        compute: 347,
        mem: 92,
        leaf_compute: 193,
        iterations: 30,
    },
    BenchProfile {
        name: "xalancbmk",
        depth: 5,
        leaf_calls: 2,
        compute: 407,
        mem: 104,
        leaf_compute: 222,
        iterations: 30,
    },
    BenchProfile {
        name: "deepsjeng",
        depth: 8,
        leaf_calls: 1,
        compute: 726,
        mem: 121,
        leaf_compute: 424,
        iterations: 25,
    },
    BenchProfile {
        // Ray tracer: very call-heavy recursive shading pipeline.
        name: "povray",
        depth: 7,
        leaf_calls: 3,
        compute: 290,
        mem: 70,
        leaf_compute: 170,
        iterations: 25,
    },
    BenchProfile {
        name: "leela",
        depth: 7,
        leaf_calls: 2,
        compute: 411,
        mem: 110,
        leaf_compute: 274,
        iterations: 30,
    },
];

/// Looks up a C benchmark profile by name.
pub fn c_benchmark(name: &str) -> Option<&'static BenchProfile> {
    C_BENCHMARKS.iter().find(|b| b.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::{overhead_percent, run_module};
    use pacstack_compiler::Scheme;

    const BUDGET: u64 = 200_000_000;

    #[test]
    fn all_profiles_build_and_run() {
        for profile in C_BENCHMARKS.iter().chain(CPP_BENCHMARKS.iter()) {
            let module = profile.module(Suite::Rate);
            let m = run_module(&module, Scheme::Baseline, BUDGET);
            assert!(
                m.cycles > 10_000,
                "{} too short: {}",
                profile.name,
                m.cycles
            );
        }
    }

    #[test]
    fn lbm_overhead_is_negligible() {
        let module = c_benchmark("lbm").unwrap().module(Suite::Rate);
        let o = overhead_percent(&module, Scheme::PacStack, BUDGET);
        assert!(o < 0.3, "lbm overhead {o}%");
    }

    #[test]
    fn perlbench_is_the_most_affected() {
        let perl = overhead_percent(
            &c_benchmark("perlbench").unwrap().module(Suite::Rate),
            Scheme::PacStack,
            BUDGET,
        );
        for profile in &C_BENCHMARKS {
            if profile.name == "perlbench" {
                continue;
            }
            let o = overhead_percent(&profile.module(Suite::Rate), Scheme::PacStack, BUDGET);
            assert!(perl >= o, "perlbench ({perl}%) < {} ({o}%)", profile.name);
        }
    }

    #[test]
    fn speed_suite_overheads_exceed_rate() {
        // Table 2: SPECspeed geomeans are higher than SPECrate for the
        // PACStack variants.
        let profile = c_benchmark("gcc").unwrap();
        let rate = overhead_percent(&profile.module(Suite::Rate), Scheme::PacStack, BUDGET);
        let speed = overhead_percent(&profile.module(Suite::Speed), Scheme::PacStack, BUDGET);
        assert!(speed > rate, "speed {speed}% <= rate {rate}%");
    }

    #[test]
    fn scheme_ordering_holds_per_benchmark() {
        let module = c_benchmark("gcc").unwrap().module(Suite::Rate);
        let canary = overhead_percent(&module, Scheme::StackProtector, BUDGET);
        let pacret = overhead_percent(&module, Scheme::PacRet, BUDGET);
        let scs = overhead_percent(&module, Scheme::ShadowCallStack, BUDGET);
        let nomask = overhead_percent(&module, Scheme::PacStackNomask, BUDGET);
        let full = overhead_percent(&module, Scheme::PacStack, BUDGET);
        assert!(canary <= pacret, "canary {canary} > pacret {pacret}");
        assert!(scs <= nomask, "scs {scs} > nomask {nomask}");
        assert!(pacret < nomask, "pacret {pacret} >= nomask {nomask}");
        assert!(nomask < full, "nomask {nomask} >= full {full}");
    }
}
