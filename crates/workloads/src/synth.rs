//! Deterministic synthetic program generation — layered call DAGs with a
//! configurable shape, used for fuzzing the instrumentation and for
//! generating workloads beyond the fixed SPEC profiles.
//!
//! Programs are generated as a *layer* structure (function `i` may only
//! call functions in layer `i + 1`), which guarantees termination while
//! still producing realistic mixes of direct, indirect and tail calls,
//! loops, branches and exceptions.

use pacstack_compiler::{FuncDef, Module, Stmt};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shape parameters for generated programs.
///
/// # Examples
///
/// ```
/// use pacstack_workloads::synth::{generate, SynthConfig};
///
/// let module = generate(&SynthConfig::default(), 42);
/// assert!(module.get("main").is_some());
/// assert!(module.check().is_ok());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SynthConfig {
    /// Call-graph depth (number of layers below `main`).
    pub layers: u32,
    /// Functions per layer.
    pub width: u32,
    /// Statements per function body (before the terminator).
    pub stmts_per_function: u32,
    /// Percent of call statements that are indirect.
    pub indirect_percent: u32,
    /// Whether to include `TryCatch`/`Throw` pairs.
    pub exceptions: bool,
    /// Whether bottom-layer functions may be tail-called.
    pub tail_calls: bool,
}

impl Default for SynthConfig {
    fn default() -> Self {
        Self {
            layers: 3,
            width: 3,
            stmts_per_function: 5,
            indirect_percent: 20,
            exceptions: true,
            tail_calls: true,
        }
    }
}

fn fn_name(layer: u32, index: u32) -> String {
    format!("l{layer}_f{index}")
}

/// Generates a random-but-deterministic module for `seed`.
///
/// The result always passes [`Module::check`] and terminates under any
/// scheme: loops are bounded, recursion is impossible by construction, and
/// every `Throw` targets a `TryCatch` in a live caller frame.
pub fn generate(config: &SynthConfig, seed: u64) -> Module {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut module = Module::new();

    let mut main_body = vec![Stmt::Compute(1 + rng.gen_range(0..8))];
    if config.exceptions {
        // main wraps a slice of its calls in a handler; a bottom-layer
        // function throws into it.
        main_body.push(Stmt::TryCatch {
            buf: 0,
            body: vec![Stmt::Call(fn_name(1, 0)), Stmt::Call("thrower".into())],
            handler: vec![Stmt::Emit],
        });
    }
    for i in 0..config.width {
        main_body.push(Stmt::Call(fn_name(1, i)));
    }
    main_body.push(Stmt::Emit);
    main_body.push(Stmt::Return);
    module.push(FuncDef::new("main", main_body));

    for layer in 1..=config.layers {
        for index in 0..config.width {
            let mut body = Vec::new();
            for _ in 0..config.stmts_per_function {
                let has_next = layer < config.layers;
                match rng.gen_range(0..6u32) {
                    0 => body.push(Stmt::Compute(1 + rng.gen_range(0..20))),
                    1 => body.push(Stmt::MemAccess(1 + rng.gen_range(0..4))),
                    2 if has_next => {
                        let callee = fn_name(layer + 1, rng.gen_range(0..config.width));
                        if rng.gen_range(0..100) < config.indirect_percent {
                            body.push(Stmt::CallIndirect(callee));
                        } else {
                            body.push(Stmt::Call(callee));
                        }
                    }
                    3 if has_next => {
                        let callee = fn_name(layer + 1, rng.gen_range(0..config.width));
                        body.push(Stmt::Loop(
                            1 + rng.gen_range(0..4),
                            vec![Stmt::Call(callee), Stmt::Compute(1)],
                        ));
                    }
                    4 => body.push(Stmt::IfEven(
                        vec![Stmt::Compute(2)],
                        vec![Stmt::MemAccess(1)],
                    )),
                    _ => body.push(Stmt::Compute(2)),
                }
            }
            let tail = config.tail_calls && layer < config.layers && rng.gen_bool(0.2);
            if tail {
                body.push(Stmt::TailCall(fn_name(
                    layer + 1,
                    rng.gen_range(0..config.width),
                )));
            } else {
                body.push(Stmt::Return);
            }
            module.push(FuncDef::new(&fn_name(layer, index), body));
        }
    }

    if config.exceptions {
        module.push(FuncDef::new(
            "thrower",
            vec![
                Stmt::Compute(1),
                Stmt::Throw { buf: 0, value: 11 },
                Stmt::Return,
            ],
        ));
    }

    debug_assert!(module.check().is_ok());
    module
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::run_module;
    use pacstack_compiler::Scheme;

    #[test]
    fn generated_modules_are_valid() {
        for seed in 0..20 {
            let module = generate(&SynthConfig::default(), seed);
            assert!(module.check().is_ok(), "seed {seed}");
        }
    }

    #[test]
    fn generated_modules_are_deterministic() {
        let a = generate(&SynthConfig::default(), 7);
        let b = generate(&SynthConfig::default(), 7);
        assert_eq!(a, b);
    }

    #[test]
    fn generated_modules_run_identically_under_all_schemes() {
        for seed in 0..12 {
            let module = generate(&SynthConfig::default(), seed);
            let baseline = run_module(&module, Scheme::Baseline, 100_000_000);
            for scheme in Scheme::ALL {
                let m = run_module(&module, scheme, 100_000_000);
                assert_eq!(
                    m.exit_code, baseline.exit_code,
                    "seed {seed} under {scheme}"
                );
            }
        }
    }

    #[test]
    fn config_dimensions_matter() {
        let small = generate(
            &SynthConfig {
                layers: 1,
                width: 1,
                ..SynthConfig::default()
            },
            1,
        );
        let large = generate(
            &SynthConfig {
                layers: 4,
                width: 4,
                ..SynthConfig::default()
            },
            1,
        );
        assert!(large.functions().len() > small.functions().len());
    }
}
