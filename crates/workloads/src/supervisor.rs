//! A crash-restart supervisor model: the paper's one-guess-per-crash
//! online-attack economics (§4.3, §6.2) played forward in time.
//!
//! PACStack turns return-address forgery into a guessing game: a wrong
//! `aret` guess crashes the process, and each crash costs the adversary a
//! fresh process lifetime. How expensive that is in practice depends on
//! the *supervisor* — the init/systemd-style policy that restarts the
//! crashed service:
//!
//! * [`RestartPolicy::Always`] restarts immediately and forever — maximum
//!   availability, but it hands the adversary an unbounded guess budget
//!   (systemd's `Restart=always` with `StartLimitIntervalSec=0`);
//! * [`RestartPolicy::Capped`] stops restarting after `max_restarts`
//!   crashes — the attack window is bounded, at the price of an outage
//!   when the cap trips;
//! * [`RestartPolicy::ExponentialBackoff`] doubles the restart delay per
//!   crash up to a ceiling — guesses stay possible but the guess *rate*
//!   collapses geometrically, which is the standard operational mitigation
//!   the paper's §6.2 discussion points at.
//!
//! [`online_attack_economics`] measures, per policy, how many guesses the
//! adversary lands within a horizon, how often the service is actually up
//! (availability degradation under sustained injection), and how the
//! empirical guess count compares to the §4.3 analytic expectation of
//! `2^{b+1}` guesses per success against a re-seeded chain.

use pacstack_acs::security;
use pacstack_exec as exec;
use rand::RngCore;

/// A supervisor restart policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RestartPolicy {
    /// Restart immediately after every crash, forever.
    Always,
    /// Restart at most `max_restarts` times, then give up (service stays
    /// down).
    Capped {
        /// Crashes tolerated before the supervisor stops restarting.
        max_restarts: u32,
    },
    /// Restart with a delay that doubles per consecutive crash, capped at
    /// `max_delay` ticks.
    ExponentialBackoff {
        /// Delay before the first restart, in ticks.
        base_delay: u64,
        /// Ceiling on the per-restart delay, in ticks.
        max_delay: u64,
    },
}

impl RestartPolicy {
    /// Display label for tables.
    pub fn label(self) -> &'static str {
        match self {
            RestartPolicy::Always => "always",
            RestartPolicy::Capped { .. } => "capped",
            RestartPolicy::ExponentialBackoff { .. } => "backoff",
        }
    }

    /// Downtime (in ticks) the supervisor imposes before restart number
    /// `restart_index` (0-based), or `None` if it refuses to restart.
    pub fn delay(self, restart_index: u32) -> Option<u64> {
        match self {
            RestartPolicy::Always => Some(1),
            RestartPolicy::Capped { max_restarts } => (restart_index < max_restarts).then_some(1),
            RestartPolicy::ExponentialBackoff {
                base_delay,
                max_delay,
            } => {
                let shift = restart_index.min(63);
                Some(base_delay.saturating_mul(1u64 << shift).min(max_delay))
            }
        }
    }
}

/// One supervised-attack trajectory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisionTrial {
    /// Guesses the adversary landed (each cost one process lifetime).
    pub guesses: u64,
    /// Whether any guess matched the `b`-bit PAC (attack succeeded).
    pub compromised: bool,
    /// Whether the supervisor stopped restarting before the horizon.
    pub gave_up: bool,
    /// Ticks the service was up within the horizon.
    pub uptime: u64,
    /// Ticks the service was down (restarting or abandoned).
    pub downtime: u64,
}

impl SupervisionTrial {
    /// Fraction of the horizon the service was available.
    pub fn availability(&self) -> f64 {
        let total = self.uptime + self.downtime;
        if total == 0 {
            1.0
        } else {
            self.uptime as f64 / total as f64
        }
    }
}

/// Plays one attack trajectory against a supervised service.
///
/// Time is discrete: the service runs for `uptime_per_life` ticks, then the
/// adversary's forged return lands — one guess, correct with probability
/// `2^-b` (the chain is re-seeded per §4.3, so crashes teach nothing). A
/// wrong guess crashes the process; the supervisor then imposes its
/// restart delay, or the service stays down for the rest of the horizon.
pub fn run_supervised_attack(
    policy: RestartPolicy,
    b: u32,
    uptime_per_life: u64,
    horizon: u64,
    rng: &mut exec::TrialRng,
) -> SupervisionTrial {
    let mut trial = SupervisionTrial {
        guesses: 0,
        compromised: false,
        gave_up: false,
        uptime: 0,
        downtime: 0,
    };
    let threshold = if b >= 64 { 0 } else { u64::MAX >> b };
    let mut elapsed = 0u64;
    let mut restarts = 0u32;

    while elapsed < horizon {
        // A process lifetime of useful service, truncated by the horizon.
        let up = uptime_per_life.min(horizon - elapsed);
        trial.uptime += up;
        elapsed += up;
        if elapsed >= horizon {
            break;
        }

        // The adversary's forged aret arrives: one guess per lifetime.
        trial.guesses += 1;
        if rng.next_u64() <= threshold {
            trial.compromised = true;
            break;
        }

        // Wrong guess: crash. The supervisor decides what happens next.
        match policy.delay(restarts) {
            Some(delay) => {
                restarts += 1;
                let down = delay.min(horizon - elapsed);
                trial.downtime += down;
                elapsed += down;
            }
            None => {
                trial.gave_up = true;
                trial.downtime += horizon - elapsed;
                break;
            }
        }
    }
    trial
}

/// Aggregated economics of one policy under sustained injection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EconomicsRow {
    /// The policy measured.
    pub policy: RestartPolicy,
    /// PAC width `b` (bits).
    pub b: u32,
    /// Trials run.
    pub trials: u64,
    /// Fraction of trials where the adversary's guess landed.
    pub compromise_rate: f64,
    /// Mean guesses the adversary got within the horizon.
    pub mean_guesses: f64,
    /// Mean service availability over the horizon.
    pub mean_availability: f64,
    /// Fraction of trials where a capped supervisor gave up.
    pub gave_up_rate: f64,
    /// The §4.3 analytic expectation: `2^{b+1}` guesses per success
    /// against a re-seeded chain (infinite-horizon reference, same for
    /// all policies).
    pub analytic_guesses_per_success: f64,
}

/// The three policies the `repro faults` supervisor table compares.
pub const POLICIES: [RestartPolicy; 3] = [
    RestartPolicy::Always,
    RestartPolicy::Capped { max_restarts: 32 },
    RestartPolicy::ExponentialBackoff {
        base_delay: 2,
        max_delay: 4096,
    },
];

/// Monte Carlo sweep: for each policy in [`POLICIES`], `trials`
/// trajectories with `b`-bit PACs over `horizon` ticks, fanned out over
/// the `pacstack-exec` pool (byte-identical at any `--jobs`).
pub fn online_attack_economics(
    b: u32,
    uptime_per_life: u64,
    horizon: u64,
    trials: u64,
    seed: u64,
) -> Vec<EconomicsRow> {
    POLICIES
        .iter()
        .enumerate()
        .map(|(p_idx, &policy)| {
            let stream = seed.wrapping_add(0x5E0 * (p_idx as u64 + 1));
            let run = exec::run_trials(stream, trials, |_i, rng| {
                run_supervised_attack(policy, b, uptime_per_life, horizon, rng)
            });
            exec::stats::record(format!("supervisor/{}", policy.label()), run.stats);
            let n = run.results.len().max(1) as f64;
            let compromised = run.results.iter().filter(|t| t.compromised).count() as f64;
            let gave_up = run.results.iter().filter(|t| t.gave_up).count() as f64;
            let guesses: u64 = run.results.iter().map(|t| t.guesses).sum();
            let availability: f64 = run.results.iter().map(SupervisionTrial::availability).sum();
            EconomicsRow {
                policy,
                b,
                trials,
                compromise_rate: compromised / n,
                mean_guesses: guesses as f64 / n,
                mean_availability: availability / n,
                gave_up_rate: gave_up / n,
                analytic_guesses_per_success: security::expected_guesses_reseeded(b),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    #[test]
    fn always_restarts_forever_capped_gives_up() {
        assert_eq!(RestartPolicy::Always.delay(1_000_000), Some(1));
        let capped = RestartPolicy::Capped { max_restarts: 3 };
        assert_eq!(capped.delay(2), Some(1));
        assert_eq!(capped.delay(3), None);
    }

    #[test]
    fn backoff_doubles_to_a_ceiling() {
        let p = RestartPolicy::ExponentialBackoff {
            base_delay: 2,
            max_delay: 16,
        };
        assert_eq!(p.delay(0), Some(2));
        assert_eq!(p.delay(1), Some(4));
        assert_eq!(p.delay(2), Some(8));
        assert_eq!(p.delay(3), Some(16));
        assert_eq!(p.delay(10), Some(16)); // capped
        assert_eq!(p.delay(63), Some(16)); // shift saturation
    }

    #[test]
    fn trajectories_are_deterministic_per_stream() {
        let mut a = exec::TrialRng::new(4, 9);
        let mut b = exec::TrialRng::new(4, 9);
        let x = run_supervised_attack(RestartPolicy::Always, 8, 50, 10_000, &mut a);
        let y = run_supervised_attack(RestartPolicy::Always, 8, 50, 10_000, &mut b);
        assert_eq!(x, y);
    }

    #[test]
    fn zero_bit_pac_compromises_on_first_guess() {
        // b = 0: every guess succeeds — the unprotected economics.
        let mut rng = exec::TrialRng::new(1, 1);
        let t = run_supervised_attack(RestartPolicy::Always, 0, 10, 1_000, &mut rng);
        assert!(t.compromised);
        assert_eq!(t.guesses, 1);
    }

    #[test]
    fn backoff_grants_fewer_guesses_than_always() {
        // Deterministic with a wide PAC: no compromise, pure rate contest.
        let rows = online_attack_economics(32, 10, 100_000, 16, 0xEC0);
        let always = &rows[0];
        let backoff = &rows[2];
        assert!(always.mean_guesses > backoff.mean_guesses);
        // Backoff trades guesses for downtime.
        assert!(always.mean_availability >= backoff.mean_availability);
    }

    #[test]
    fn capped_supervisor_bounds_the_guess_budget() {
        let rows = online_attack_economics(32, 10, 1_000_000, 16, 0xEC1);
        let capped = &rows[1];
        assert!(capped.mean_guesses <= 33.0); // max_restarts + the final guess
        assert!(capped.gave_up_rate > 0.0);
    }

    #[test]
    fn analytic_column_matches_acs() {
        let rows = online_attack_economics(8, 10, 1_000, 4, 0xEC2);
        for row in rows {
            assert_eq!(
                row.analytic_guesses_per_success,
                security::expected_guesses_reseeded(8)
            );
        }
    }
}
