//! Synthetic workloads for the PACStack performance evaluation.
//!
//! The paper measures instrumentation overhead on SPEC CPU 2017 (§7.1) and
//! on NGINX serving SSL/TLS transactions (§7.2). Neither workload is
//! runnable inside a deterministic Rust simulator, so this crate builds
//! *profile-equivalent* programs in the toy IR: what determines a scheme's
//! overhead is the ratio of function-activation work (prologue + epilogue
//! cycles, which instrumentation inflates) to useful body work — i.e. the
//! call frequency and call-depth profile, which is exactly what the
//! profiles here encode per benchmark.
//!
//! * [`spec`] — one profile per SPEC CPU 2017 C/C++ benchmark in the
//!   paper's Figure 5, in SPECrate and SPECspeed flavours;
//! * [`nginx`] — an event-loop server whose per-connection work is
//!   dominated by a call-heavy TLS-handshake model (the paper's SSL TPS
//!   test is CPU-bound by design);
//! * [`measure`] — helpers that run a module under every scheme and report
//!   cycle overheads relative to the baseline;
//! * [`confirm`] — the §7.3 ConFIRM-style compatibility suite with a
//!   pass/fail runner;
//! * [`synth`] — deterministic random-program generation for fuzzing the
//!   instrumentation beyond the fixed profiles;
//! * [`supervisor`] — a crash-restart supervisor model replaying the
//!   paper's one-guess-per-crash online-attack economics (§4.3, §6.2)
//!   under always / capped / exponential-backoff restart policies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod confirm;
pub mod measure;
pub mod nginx;
pub mod spec;
pub mod supervisor;
pub mod synth;
