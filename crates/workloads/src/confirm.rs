//! The ConFIRM-style compatibility suite as a library (paper §7.3).
//!
//! The paper runs the applicable ConFIRM CFI-compatibility micro-benchmarks
//! on the FVP and reports that they "passed with or without PACStack".
//! This module packages our equivalents — one module per corner case —
//! with a runner that executes every case under every scheme and compares
//! behaviour against the unprotected baseline, so `repro confirm` can
//! print the same pass/fail table the paper describes.

use pacstack_aarch64::{Cpu, RunStatus};
use pacstack_compiler::{lower, FuncDef, Module, Scheme, Stmt};

/// One compatibility case.
#[derive(Debug, Clone)]
pub struct ConfirmCase {
    /// Short name, in the spirit of ConFIRM's test names.
    pub name: &'static str,
    /// The corner-case program.
    pub module: Module,
}

/// Result of one case under one scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CaseResult {
    /// The scheme tested.
    pub scheme: Scheme,
    /// Whether behaviour matched the baseline exactly.
    pub passed: bool,
}

fn func(name: &str, body: Vec<Stmt>) -> FuncDef {
    FuncDef::new(name, body)
}

/// Builds the full suite.
pub fn suite() -> Vec<ConfirmCase> {
    let mut cases = Vec::new();

    // 1. Indirect function calls through code pointers.
    let mut m = Module::new();
    m.push(func(
        "main",
        vec![
            Stmt::CallIndirect("fp_a".into()),
            Stmt::Emit,
            Stmt::CallIndirect("fp_b".into()),
            Stmt::Emit,
            Stmt::Return,
        ],
    ));
    m.push(func("fp_a", vec![Stmt::Compute(3), Stmt::Return]));
    m.push(func("fp_b", vec![Stmt::Compute(5), Stmt::Return]));
    cases.push(ConfirmCase {
        name: "code_pointers",
        module: m,
    });

    // 2. Virtual-dispatch-shaped double indirection.
    let mut m = Module::new();
    m.push(func(
        "main",
        vec![Stmt::Call("dispatch".into()), Stmt::Emit, Stmt::Return],
    ));
    m.push(func(
        "dispatch",
        vec![
            Stmt::CallIndirect("impl_a".into()),
            Stmt::CallIndirect("impl_b".into()),
            Stmt::Return,
        ],
    ));
    m.push(func("impl_a", vec![Stmt::Compute(2), Stmt::Return]));
    m.push(func("impl_b", vec![Stmt::MemAccess(1), Stmt::Return]));
    cases.push(ConfirmCase {
        name: "vcalls",
        module: m,
    });

    // 3. Tail calls, three deep.
    let mut m = Module::new();
    m.push(func(
        "main",
        vec![Stmt::Call("t0".into()), Stmt::Emit, Stmt::Return],
    ));
    m.push(func(
        "t0",
        vec![Stmt::Compute(1), Stmt::TailCall("t1".into())],
    ));
    m.push(func(
        "t1",
        vec![Stmt::Compute(2), Stmt::TailCall("t2".into())],
    ));
    m.push(func("t2", vec![Stmt::Call("leafy".into()), Stmt::Return]));
    m.push(func("leafy", vec![Stmt::Compute(3), Stmt::Return]));
    cases.push(ConfirmCase {
        name: "tail_calls",
        module: m,
    });

    // 4. setjmp/longjmp.
    let mut m = Module::new();
    m.push(func(
        "main",
        vec![
            Stmt::TryCatch {
                buf: 0,
                body: vec![Stmt::Call("thrower".into()), Stmt::Emit],
                handler: vec![Stmt::Emit],
            },
            Stmt::Return,
        ],
    ));
    m.push(func(
        "thrower",
        vec![Stmt::Throw { buf: 0, value: 7 }, Stmt::Return],
    ));
    cases.push(ConfirmCase {
        name: "setjmp_longjmp",
        module: m,
    });

    // 5. Calling convention: data flows through deep call boundaries.
    let mut m = Module::new();
    m.push(func(
        "main",
        vec![
            Stmt::Compute(5),
            Stmt::Call("l1".into()),
            Stmt::Emit,
            Stmt::Return,
        ],
    ));
    m.push(func(
        "l1",
        vec![Stmt::Compute(1), Stmt::Call("l2".into()), Stmt::Return],
    ));
    m.push(func(
        "l2",
        vec![Stmt::Compute(1), Stmt::Call("l3".into()), Stmt::Return],
    ));
    m.push(func("l3", vec![Stmt::MemAccess(2), Stmt::Return]));
    cases.push(ConfirmCase {
        name: "calling_convention",
        module: m,
    });

    // 6. Deep call chain (96 activations).
    let mut m = Module::new();
    m.push(func("main", vec![Stmt::Call("d0".into()), Stmt::Return]));
    for i in 0..96 {
        let body = if i == 95 {
            vec![Stmt::Compute(1), Stmt::Return]
        } else {
            vec![Stmt::Call(format!("d{}", i + 1)), Stmt::Return]
        };
        m.push(func(&format!("d{i}"), body));
    }
    cases.push(ConfirmCase {
        name: "deep_chain",
        module: m,
    });

    // 7. Data-dependent dispatch (interpreter shape).
    let mut m = Module::new();
    m.push(func(
        "main",
        vec![
            Stmt::Loop(
                8,
                vec![
                    Stmt::IfEven(
                        vec![Stmt::Call("op_even".into())],
                        vec![Stmt::Call("op_odd".into())],
                    ),
                    Stmt::Compute(1),
                ],
            ),
            Stmt::Emit,
            Stmt::Return,
        ],
    ));
    m.push(func("op_even", vec![Stmt::Compute(3), Stmt::Return]));
    m.push(func(
        "op_odd",
        vec![Stmt::MemAccess(1), Stmt::Compute(2), Stmt::Return],
    ));
    cases.push(ConfirmCase {
        name: "data_dispatch",
        module: m,
    });

    // 8. Loops with call/return churn.
    let mut m = Module::new();
    m.push(func(
        "main",
        vec![
            Stmt::Loop(20, vec![Stmt::Call("unit".into()), Stmt::MemAccess(1)]),
            Stmt::Emit,
            Stmt::Return,
        ],
    ));
    m.push(func(
        "unit",
        vec![
            Stmt::Loop(3, vec![Stmt::Call("nested".into())]),
            Stmt::Return,
        ],
    ));
    m.push(func("nested", vec![Stmt::Compute(2), Stmt::Return]));
    cases.push(ConfirmCase {
        name: "call_churn",
        module: m,
    });

    // 9. Fan-out re-entry (binary call tree).
    let mut m = Module::new();
    m.push(func(
        "main",
        vec![Stmt::Call("fan0".into()), Stmt::Emit, Stmt::Return],
    ));
    for i in 0..10 {
        let mut body = vec![Stmt::Compute(1)];
        if i < 9 {
            body.push(Stmt::Call(format!("fan{}", i + 1)));
            body.push(Stmt::Call(format!("fan{}", i + 1)));
        }
        body.push(Stmt::Return);
        m.push(func(&format!("fan{i}"), body));
    }
    cases.push(ConfirmCase {
        name: "fanout_reentry",
        module: m,
    });

    // 10. Tail-position indirect dispatch.
    let mut m = Module::new();
    m.push(func(
        "main",
        vec![Stmt::Call("route".into()), Stmt::Emit, Stmt::Return],
    ));
    m.push(func(
        "route",
        vec![
            Stmt::CallIndirect("handler".into()),
            Stmt::TailCall("cleanup".into()),
        ],
    ));
    m.push(func("handler", vec![Stmt::Compute(6), Stmt::Return]));
    m.push(func(
        "cleanup",
        vec![Stmt::Call("sync".into()), Stmt::Return],
    ));
    m.push(func("sync", vec![Stmt::Compute(1), Stmt::Return]));
    cases.push(ConfirmCase {
        name: "tail_dispatch",
        module: m,
    });

    // 11. Exception from inside a loop body.
    let mut m = Module::new();
    m.push(func(
        "main",
        vec![
            Stmt::TryCatch {
                buf: 2,
                body: vec![Stmt::Loop(4, vec![Stmt::Call("may_throw".into())])],
                handler: vec![Stmt::Emit],
            },
            Stmt::Return,
        ],
    ));
    m.push(func(
        "may_throw",
        vec![
            Stmt::Compute(1),
            Stmt::Throw { buf: 2, value: 3 },
            Stmt::Return,
        ],
    ));
    cases.push(ConfirmCase {
        name: "throw_from_loop",
        module: m,
    });

    cases
}

fn behaviour(module: &Module, scheme: Scheme) -> Option<(u64, Vec<u64>)> {
    let mut cpu = Cpu::with_seed(lower(module, scheme), 99);
    loop {
        match cpu.run(200_000_000) {
            Ok(out) => match out.status {
                RunStatus::Exited(code) => return Some((code, cpu.output().to_vec())),
                RunStatus::Syscall(_) => continue,
            },
            Err(_) => return None,
        }
    }
}

/// Runs one case under every scheme, comparing against the baseline.
pub fn run_case(case: &ConfirmCase) -> Vec<CaseResult> {
    let baseline = behaviour(&case.module, Scheme::Baseline);
    Scheme::ALL
        .iter()
        .map(|&scheme| CaseResult {
            scheme,
            passed: baseline.is_some() && behaviour(&case.module, scheme) == baseline,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_eleven_cases_like_the_paper() {
        assert_eq!(suite().len(), 11);
    }

    #[test]
    fn every_case_passes_under_every_scheme() {
        for case in suite() {
            for result in run_case(&case) {
                assert!(
                    result.passed,
                    "{} failed under {}",
                    case.name, result.scheme
                );
            }
        }
    }

    #[test]
    fn case_names_are_unique() {
        let mut names: Vec<_> = suite().iter().map(|c| c.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 11);
    }
}
