//! Property-based tests for the QARMA-64 cipher.

use pacstack_qarma::{Key128, Qarma64, Sigma};
use proptest::prelude::*;

fn arb_sigma() -> impl Strategy<Value = Sigma> {
    prop_oneof![
        Just(Sigma::Sigma0),
        Just(Sigma::Sigma1),
        Just(Sigma::Sigma2)
    ]
}

proptest! {
    #[test]
    fn decrypt_inverts_encrypt(
        w0 in any::<u64>(),
        k0 in any::<u64>(),
        tweak in any::<u64>(),
        plaintext in any::<u64>(),
        sigma in arb_sigma(),
        rounds in 1usize..=8,
    ) {
        let cipher = Qarma64::new(w0, k0, sigma, rounds);
        let c = cipher.encrypt(plaintext, tweak);
        prop_assert_eq!(cipher.decrypt(c, tweak), plaintext);
    }

    #[test]
    fn encryption_is_injective_in_plaintext(
        key in any::<(u64, u64)>(),
        tweak in any::<u64>(),
        p1 in any::<u64>(),
        p2 in any::<u64>(),
    ) {
        prop_assume!(p1 != p2);
        let cipher = Qarma64::recommended(Key128::new(key.0, key.1));
        prop_assert_ne!(cipher.encrypt(p1, tweak), cipher.encrypt(p2, tweak));
    }

    #[test]
    fn single_bit_flip_avalanches(
        key in any::<(u64, u64)>(),
        tweak in any::<u64>(),
        plaintext in any::<u64>(),
        bit in 0u32..64,
    ) {
        let cipher = Qarma64::recommended(Key128::new(key.0, key.1));
        let c1 = cipher.encrypt(plaintext, tweak);
        let c2 = cipher.encrypt(plaintext ^ (1u64 << bit), tweak);
        // A good cipher flips close to half the output bits; we only require
        // a loose sanity band (catching e.g. a dropped diffusion layer).
        let flipped = (c1 ^ c2).count_ones();
        prop_assert!((10..=54).contains(&flipped), "only {flipped} bits flipped");
    }

    #[test]
    fn tweak_bit_flip_avalanches(
        key in any::<(u64, u64)>(),
        tweak in any::<u64>(),
        plaintext in any::<u64>(),
        bit in 0u32..64,
    ) {
        let cipher = Qarma64::recommended(Key128::new(key.0, key.1));
        let c1 = cipher.encrypt(plaintext, tweak);
        let c2 = cipher.encrypt(plaintext, tweak ^ (1u64 << bit));
        let flipped = (c1 ^ c2).count_ones();
        prop_assert!((10..=54).contains(&flipped), "only {flipped} bits flipped");
    }

    #[test]
    fn key_halves_both_matter(
        w0 in any::<u64>(),
        k0 in any::<u64>(),
        tweak in any::<u64>(),
        plaintext in any::<u64>(),
    ) {
        let base = Qarma64::recommended(Key128::new(w0, k0));
        let flip_w = Qarma64::recommended(Key128::new(w0 ^ 1, k0));
        let flip_k = Qarma64::recommended(Key128::new(w0, k0 ^ 1));
        let c = base.encrypt(plaintext, tweak);
        prop_assert_ne!(c, flip_w.encrypt(plaintext, tweak));
        prop_assert_ne!(c, flip_k.encrypt(plaintext, tweak));
    }
}
