//! Differential suite pinning the packed-nibble fast path against the
//! cell-based reference oracle: random keys/tweaks/plaintexts across all
//! S-box variants and every supported round count, plus the published
//! vectors pushed through the fast path explicitly.

use pacstack_qarma::{reference, Key128, Qarma64, Sigma};
use proptest::prelude::*;

fn arb_sigma() -> impl Strategy<Value = Sigma> {
    prop_oneof![
        Just(Sigma::Sigma0),
        Just(Sigma::Sigma1),
        Just(Sigma::Sigma2)
    ]
}

proptest! {
    #[test]
    fn packed_encrypt_matches_reference(
        w0 in any::<u64>(),
        k0 in any::<u64>(),
        tweak in any::<u64>(),
        plaintext in any::<u64>(),
        sigma in arb_sigma(),
        rounds in 1usize..=8,
    ) {
        let cipher = Qarma64::new(w0, k0, sigma, rounds);
        prop_assert_eq!(
            cipher.encrypt(plaintext, tweak),
            cipher.encrypt_reference(plaintext, tweak),
            "fast path diverged from the oracle ({} r={})", sigma, rounds
        );
    }

    #[test]
    fn packed_decrypt_matches_reference(
        w0 in any::<u64>(),
        k0 in any::<u64>(),
        tweak in any::<u64>(),
        ciphertext in any::<u64>(),
        sigma in arb_sigma(),
        rounds in 1usize..=8,
    ) {
        let cipher = Qarma64::new(w0, k0, sigma, rounds);
        prop_assert_eq!(
            cipher.decrypt(ciphertext, tweak),
            cipher.decrypt_reference(ciphertext, tweak),
            "fast path diverged from the oracle ({} r={})", sigma, rounds
        );
    }

    #[test]
    fn packed_round_trip_through_mixed_paths(
        w0 in any::<u64>(),
        k0 in any::<u64>(),
        tweak in any::<u64>(),
        plaintext in any::<u64>(),
        sigma in arb_sigma(),
        rounds in 1usize..=8,
    ) {
        // Encrypt on one path, decrypt on the other: catches compensating
        // bugs that a same-path round trip would mask.
        let cipher = Qarma64::new(w0, k0, sigma, rounds);
        prop_assert_eq!(
            cipher.decrypt_reference(cipher.encrypt(plaintext, tweak), tweak),
            plaintext
        );
        prop_assert_eq!(
            cipher.decrypt(cipher.encrypt_reference(plaintext, tweak), tweak),
            plaintext
        );
    }

    #[test]
    fn free_function_oracle_matches_method_oracle(
        w0 in any::<u64>(),
        k0 in any::<u64>(),
        tweak in any::<u64>(),
        plaintext in any::<u64>(),
        sigma in arb_sigma(),
        rounds in 1usize..=8,
    ) {
        let key = Key128::new(w0, k0);
        let cipher = Qarma64::with_key(key, sigma, rounds);
        prop_assert_eq!(
            reference::encrypt(key, sigma, rounds, plaintext, tweak),
            cipher.encrypt_reference(plaintext, tweak)
        );
        prop_assert_eq!(
            reference::decrypt(key, sigma, rounds, plaintext, tweak),
            cipher.decrypt_reference(plaintext, tweak)
        );
    }
}

// The published pins, through the *fast* path (the in-crate unit tests and
// tests/reference_vectors.rs keep pinning the oracle independently).

const W0: u64 = 0x84be85ce9804e94b;
const K0: u64 = 0xec2802d4e0a488e9;
const TWEAK: u64 = 0x477d469dec0b8762;
const PLAINTEXT: u64 = 0xfb623599da6e8127;

#[test]
fn published_sigma0_r5_vector_through_fast_path() {
    let cipher = Qarma64::new(W0, K0, Sigma::Sigma0, 5);
    assert_eq!(cipher.encrypt(PLAINTEXT, TWEAK), 0x3ee99a6c82af0c38);
    assert_eq!(cipher.decrypt(0x3ee99a6c82af0c38, TWEAK), PLAINTEXT);
}

#[test]
fn pinned_sigma1_r7_vector_through_fast_path() {
    let cipher = Qarma64::new(W0, K0, Sigma::Sigma1, 7);
    assert_eq!(cipher.encrypt(PLAINTEXT, TWEAK), 0xedf67ff370a483f2);
    assert_eq!(cipher.decrypt(0xedf67ff370a483f2, TWEAK), PLAINTEXT);
}

#[test]
fn pinned_sigma2_r7_vector_through_fast_path() {
    let cipher = Qarma64::new(W0, K0, Sigma::Sigma2, 7);
    assert_eq!(cipher.encrypt(PLAINTEXT, TWEAK), 0x5c06a7501b63b2fd);
    assert_eq!(cipher.decrypt(0x5c06a7501b63b2fd, TWEAK), PLAINTEXT);
}
