//! Reference-vector pins for QARMA-64 across S-box variants and round counts.
//!
//! All vectors share the key/tweak/plaintext from the QARMA paper's test
//! vector appendix (Avanzi, "The QARMA Block Cipher Family", 2017):
//!
//! ```text
//! w0 = 84be85ce9804e94b   k0 = ec2802d4e0a488e9
//! T  = 477d469dec0b8762   P  = fb623599da6e8127
//! ```
//!
//! The paper lists one ciphertext per round count r ∈ {5, 6, 7}. Although the
//! surrounding text associates σ0/σ1/σ2 with r = 5/6/7 respectively, all
//! three published ciphertexts were generated with σ0 — a well-known quirk of
//! the paper's appendix, reproduced by independent implementations. This
//! implementation matches all three, which pins the whole data path
//! (ShuffleCells, MixColumns, the tweak schedule and the round constants
//! c5/c6 that r = 5 alone never exercises).
//!
//! The σ2 column is pinned against an independent public C implementation
//! (the `QARMA64` reference code widely used for ARM PAC modelling), whose
//! three check values at r = 5/6/7 this implementation reproduces exactly —
//! cross-validating the non-involutory σ2 inverse-S-box path. σ1 has no
//! published ciphertexts; those pins are self-computed regression vectors,
//! trusted transitively through the σ0/σ2 agreement and the
//! `decrypt ∘ encrypt = id` property (see `properties.rs`).

use pacstack_qarma::{Qarma64, Sigma};

const W0: u64 = 0x84be85ce9804e94b;
const K0: u64 = 0xec2802d4e0a488e9;
const TWEAK: u64 = 0x477d469dec0b8762;
const PLAINTEXT: u64 = 0xfb623599da6e8127;

/// `(sigma, rounds, ciphertext, provenance)` for every pinned vector.
const VECTORS: &[(Sigma, usize, u64, &str)] = &[
    // Published in the QARMA paper's appendix (all generated with σ0).
    (Sigma::Sigma0, 5, 0x3ee99a6c82af0c38, "paper, r=5"),
    (Sigma::Sigma0, 6, 0x9f5c41ec525603c9, "paper, r=6"),
    (Sigma::Sigma0, 7, 0xbcaf6c89de930765, "paper, r=7"),
    // Cross-validated against the independent QARMA64 C implementation.
    (
        Sigma::Sigma2,
        5,
        0xc003b93999b33765,
        "independent C impl, r=5",
    ),
    (
        Sigma::Sigma2,
        6,
        0x270a787275c48d10,
        "independent C impl, r=6",
    ),
    (
        Sigma::Sigma2,
        7,
        0x5c06a7501b63b2fd,
        "independent C impl, r=7",
    ),
    // Self-computed σ1 regression pins (no published ciphertexts exist).
    (Sigma::Sigma1, 5, 0x544b0ab95bda7c3a, "regression, r=5"),
    (Sigma::Sigma1, 6, 0xa512dd1e4e3ec582, "regression, r=6"),
    (Sigma::Sigma1, 7, 0xedf67ff370a483f2, "regression, r=7"),
];

#[test]
fn every_pinned_vector_encrypts_correctly() {
    for &(sigma, rounds, ciphertext, provenance) in VECTORS {
        let cipher = Qarma64::new(W0, K0, sigma, rounds);
        assert_eq!(
            cipher.encrypt(PLAINTEXT, TWEAK),
            ciphertext,
            "{sigma} r={rounds} ({provenance})"
        );
    }
}

#[test]
fn every_pinned_vector_decrypts_correctly() {
    for &(sigma, rounds, ciphertext, provenance) in VECTORS {
        let cipher = Qarma64::new(W0, K0, sigma, rounds);
        assert_eq!(
            cipher.decrypt(ciphertext, TWEAK),
            PLAINTEXT,
            "{sigma} r={rounds} ({provenance})"
        );
    }
}

#[test]
fn pinned_ciphertexts_are_pairwise_distinct() {
    // Nine (sigma, rounds) instances over one plaintext must give nine
    // distinct ciphertexts — a duplicated pin would mean a copy-paste error
    // in the table above or a degenerate parameterisation in the cipher.
    for (i, a) in VECTORS.iter().enumerate() {
        for b in &VECTORS[i + 1..] {
            assert_ne!(
                a.2, b.2,
                "{} r={} collides with {} r={}",
                a.0, a.1, b.0, b.1
            );
        }
    }
}
