//! The cell-based reference implementation of QARMA-64 — the differential
//! oracle the packed fast path is pinned against.
//!
//! This is the original, paper-shaped data path: the 64-bit state is
//! unpacked into a `[u8; 16]` nibble array for every σ/τ/M layer, and the
//! key schedule (`w1`, per-round tweakeys, the reflector key) is re-derived
//! on every call, exactly as the pre-optimisation implementation did. It is
//! kept (a) as the ground truth for `tests/packed_differential.rs` and the
//! in-crate proptests, and (b) as the honest "before" arm of the
//! `repro perf` harness (selectable process-wide with the
//! `PACSTACK_REFERENCE_PAC` environment variable).

use crate::cells::{from_cells, mix_columns, permute, sub_cells, Cells};
use crate::constants::{ALPHA, ROUND_CONSTANTS, TAU, TAU_INV};
use crate::tweak::{backward_update, forward_update};
use crate::{Key128, Sigma};

/// One forward round: add tweakey, then (unless `short`) ShuffleCells and
/// MixColumns, then SubCells.
pub(crate) fn forward(state: u64, tweakey: u64, short: bool, sbox: &[u8; 16]) -> u64 {
    let mut cells = to_cells(state ^ tweakey);
    if !short {
        cells = mix_columns(&permute(&cells, &TAU));
    }
    from_cells(&sub_cells(&cells, sbox))
}

/// One backward round: inverse SubCells, then (unless `short`) inverse
/// MixColumns and inverse ShuffleCells, then add tweakey.
pub(crate) fn backward(state: u64, tweakey: u64, short: bool, sbox_inv: &[u8; 16]) -> u64 {
    let mut cells = sub_cells(&to_cells(state), sbox_inv);
    if !short {
        cells = permute(&mix_columns(&cells), &TAU_INV);
    }
    from_cells(&cells) ^ tweakey
}

/// The central pseudo-reflector: τ, multiply by the involutory Q = M, add
/// the reflector key, τ⁻¹.
pub(crate) fn reflect(state: u64, k1: u64) -> u64 {
    let shuffled = permute(&to_cells(state), &TAU);
    let mut mixed: Cells = mix_columns(&shuffled);
    let key_cells = to_cells(k1);
    for (m, k) in mixed.iter_mut().zip(key_cells.iter()) {
        *m ^= k;
    }
    from_cells(&permute(&mixed, &TAU_INV))
}

fn to_cells(x: u64) -> Cells {
    crate::cells::to_cells(x)
}

/// The shared data path: whitened forward rounds, central reflector,
/// backward rounds. Encryption and decryption differ only in the key
/// schedule fed in here.
#[allow(clippy::too_many_arguments)]
fn crypt(
    block: u64,
    tweak: u64,
    w0: u64,
    w1: u64,
    k0: u64,
    k1: u64,
    sigma: Sigma,
    rounds: usize,
) -> u64 {
    let sbox = sigma.table();
    let sbox_inv = sigma.inverse_table();
    let mut state = block ^ w0;
    let mut t = tweak;
    for (i, constant) in ROUND_CONSTANTS.iter().enumerate().take(rounds) {
        state = forward(state, k0 ^ t ^ constant, i == 0, sbox);
        t = forward_update(t);
    }

    state = forward(state, w1 ^ t, false, sbox);
    state = reflect(state, k1);
    state = backward(state, w0 ^ t, false, sbox_inv);

    for i in (0..rounds).rev() {
        t = backward_update(t);
        state = backward(state, k0 ^ t ^ ROUND_CONSTANTS[i] ^ ALPHA, i == 0, sbox_inv);
    }

    state ^ w1
}

fn assert_rounds(rounds: usize) {
    assert!(
        (1..=ROUND_CONSTANTS.len()).contains(&rounds),
        "QARMA-64 supports 1..=8 forward rounds, got {rounds}"
    );
}

/// Encrypts one block through the cell-based reference path, re-deriving
/// the whole key schedule per call (the pre-optimisation cost profile).
///
/// # Panics
///
/// Panics if `rounds` is 0 or greater than 8.
///
/// # Examples
///
/// ```
/// use pacstack_qarma::{reference, Key128, Sigma};
///
/// let key = Key128::new(0x84be85ce9804e94b, 0xec2802d4e0a488e9);
/// let c = reference::encrypt(key, Sigma::Sigma0, 5, 0xfb623599da6e8127, 0x477d469dec0b8762);
/// assert_eq!(c, 0x3ee99a6c82af0c38);
/// ```
pub fn encrypt(key: Key128, sigma: Sigma, rounds: usize, plaintext: u64, tweak: u64) -> u64 {
    assert_rounds(rounds);
    let w0 = key.w0();
    let w1 = w0.rotate_right(1) ^ (w0 >> 63);
    crypt(plaintext, tweak, w0, w1, key.k0(), key.k0(), sigma, rounds)
}

/// Decrypts one block through the cell-based reference path.
///
/// # Panics
///
/// Panics if `rounds` is 0 or greater than 8.
pub fn decrypt(key: Key128, sigma: Sigma, rounds: usize, ciphertext: u64, tweak: u64) -> u64 {
    assert_rounds(rounds);
    let w0 = key.w0();
    let w1 = w0.rotate_right(1) ^ (w0 >> 63);
    let k0 = key.k0();
    // The inverse of the central reflector keyed with k1 = k0 is the
    // reflector keyed with Q·k0 (Q = M is involutory).
    let q_k0 = from_cells(&mix_columns(&to_cells(k0)));
    crypt(ciphertext, tweak, w1, w0, k0 ^ ALPHA, q_k0, sigma, rounds)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> Key128 {
        Key128::new(0x84be85ce9804e94b, 0xec2802d4e0a488e9)
    }
    const TWEAK: u64 = 0x477d469dec0b8762;
    const PLAINTEXT: u64 = 0xfb623599da6e8127;

    #[test]
    fn paper_vector_through_the_reference_path() {
        assert_eq!(
            encrypt(key(), Sigma::Sigma0, 5, PLAINTEXT, TWEAK),
            0x3ee99a6c82af0c38
        );
    }

    #[test]
    fn reference_decrypt_inverts_reference_encrypt() {
        for sigma in [Sigma::Sigma0, Sigma::Sigma1, Sigma::Sigma2] {
            for rounds in 1..=8 {
                let c = encrypt(key(), sigma, rounds, PLAINTEXT, TWEAK);
                assert_eq!(
                    decrypt(key(), sigma, rounds, c, TWEAK),
                    PLAINTEXT,
                    "round-trip failed for {sigma} r={rounds}"
                );
            }
        }
    }

    #[test]
    fn forward_backward_are_inverses() {
        let x = 0xfb623599da6e8127u64;
        let tk = 0x1234_5678_9abc_def0u64;
        let sigma = Sigma::Sigma1;
        for short in [true, false] {
            let y = forward(x, tk, short, sigma.table());
            assert_eq!(
                backward(y, tk, short, sigma.inverse_table()),
                x,
                "short={short}"
            );
        }
    }

    #[test]
    fn reflect_is_involution_with_zero_key() {
        let x = 0xfb623599da6e8127u64;
        let y = reflect(x, 0);
        assert_eq!(reflect(y, 0), x);
    }

    #[test]
    #[should_panic(expected = "1..=8 forward rounds")]
    fn zero_rounds_panics() {
        let _ = encrypt(key(), Sigma::Sigma1, 0, PLAINTEXT, TWEAK);
    }
}
