//! The QARMA-64 cipher proper: whitened forward rounds, a central reflector,
//! and backward rounds, all parameterised by S-box choice and round count.

use crate::cells::{from_cells, mix_columns, permute, sub_cells, to_cells, Cells};
use crate::constants::{ALPHA, ROUND_CONSTANTS, SIGMA0, SIGMA1, SIGMA2, SIGMA2_INV, TAU, TAU_INV};
use crate::tweak::{backward_update, forward_update};
use crate::Key128;
use std::fmt;

/// Which of QARMA's three published 4-bit S-boxes to use.
///
/// σ1 is the variant referenced for ARM pointer authentication; σ0 and σ2 are
/// the lighter and heavier alternatives from the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Sigma {
    /// σ0 — smallest circuit depth (an involution).
    Sigma0,
    /// σ1 — the recommended trade-off and ARM's reference choice (an involution).
    #[default]
    Sigma1,
    /// σ2 — highest nonlinearity (requires a distinct inverse table).
    Sigma2,
}

impl Sigma {
    fn table(self) -> &'static [u8; 16] {
        match self {
            Sigma::Sigma0 => &SIGMA0,
            Sigma::Sigma1 => &SIGMA1,
            Sigma::Sigma2 => &SIGMA2,
        }
    }

    fn inverse_table(self) -> &'static [u8; 16] {
        match self {
            Sigma::Sigma0 => &SIGMA0,
            Sigma::Sigma1 => &SIGMA1,
            Sigma::Sigma2 => &SIGMA2_INV,
        }
    }
}

impl fmt::Display for Sigma {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sigma::Sigma0 => write!(f, "σ0"),
            Sigma::Sigma1 => write!(f, "σ1"),
            Sigma::Sigma2 => write!(f, "σ2"),
        }
    }
}

/// A QARMA-64 instance: a 128-bit key, an S-box choice and `r` forward rounds.
///
/// The paper's recommended parameterisations are `r = 5` with σ0, `r = 7`
/// with σ1, and `r = 11` with σ2. [`Qarma64::recommended`] builds the σ1/r=7
/// instance used as ARM's PAC reference.
///
/// # Examples
///
/// ```
/// use pacstack_qarma::{Key128, Qarma64, Sigma};
///
/// let cipher = Qarma64::with_key(Key128::new(0x1234, 0x5678), Sigma::Sigma1, 7);
/// let c = cipher.encrypt(0xdead_beef, 42);
/// assert_eq!(cipher.decrypt(c, 42), 0xdead_beef);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Qarma64 {
    key: Key128,
    sigma: Sigma,
    rounds: usize,
}

impl Qarma64 {
    /// Creates a cipher from the two key halves, an S-box and a round count.
    ///
    /// # Panics
    ///
    /// Panics if `rounds` is 0 or greater than 8 (the number of published
    /// round constants).
    pub fn new(w0: u64, k0: u64, sigma: Sigma, rounds: usize) -> Self {
        Self::with_key(Key128::new(w0, k0), sigma, rounds)
    }

    /// Creates a cipher from a [`Key128`], an S-box and a round count.
    ///
    /// # Panics
    ///
    /// Panics if `rounds` is 0 or greater than 8.
    pub fn with_key(key: Key128, sigma: Sigma, rounds: usize) -> Self {
        assert!(
            (1..=ROUND_CONSTANTS.len()).contains(&rounds),
            "QARMA-64 supports 1..=8 forward rounds, got {rounds}"
        );
        Self { key, sigma, rounds }
    }

    /// The σ1, r = 7 instance — QARMA7-64-σ1, ARM's PAC reference.
    pub fn recommended(key: Key128) -> Self {
        Self::with_key(key, Sigma::Sigma1, 7)
    }

    /// Returns the key this instance was built with.
    pub fn key(&self) -> Key128 {
        self.key
    }

    /// Returns the S-box variant in use.
    pub fn sigma(&self) -> Sigma {
        self.sigma
    }

    /// Returns the number of forward rounds.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Derived whitening key `w1 = (w0 ⋙ 1) ⊕ (w0 ≫ 63)`.
    fn w1(&self) -> u64 {
        let w0 = self.key.w0();
        w0.rotate_right(1) ^ (w0 >> 63)
    }

    /// The decryption reflector key `Q · k0`.
    fn k1(&self) -> u64 {
        from_cells(&mix_columns(&to_cells(self.key.k0())))
    }

    /// One forward round: add tweakey, then (unless `short`) ShuffleCells and
    /// MixColumns, then SubCells.
    fn forward(&self, state: u64, tweakey: u64, short: bool) -> u64 {
        let mut cells = to_cells(state ^ tweakey);
        if !short {
            cells = mix_columns(&permute(&cells, &TAU));
        }
        from_cells(&sub_cells(&cells, self.sigma.table()))
    }

    /// One backward round: inverse SubCells, then (unless `short`) inverse
    /// MixColumns and inverse ShuffleCells, then add tweakey.
    fn backward(&self, state: u64, tweakey: u64, short: bool) -> u64 {
        let mut cells = sub_cells(&to_cells(state), self.sigma.inverse_table());
        if !short {
            cells = permute(&mix_columns(&cells), &TAU_INV);
        }
        from_cells(&cells) ^ tweakey
    }

    /// The central pseudo-reflector: τ, multiply by the involutory Q = M,
    /// add the reflector key, τ⁻¹.
    fn reflect(&self, state: u64, k1: u64) -> u64 {
        let shuffled = permute(&to_cells(state), &TAU);
        let mut mixed: Cells = mix_columns(&shuffled);
        let key_cells = to_cells(k1);
        for (m, k) in mixed.iter_mut().zip(key_cells.iter()) {
            *m ^= k;
        }
        from_cells(&permute(&mixed, &TAU_INV))
    }

    /// The shared data path: whitened forward rounds, central reflector,
    /// backward rounds. Encryption and decryption differ only in the key
    /// schedule fed in here.
    fn crypt(&self, block: u64, tweak: u64, w0: u64, w1: u64, k0: u64, k1: u64) -> u64 {
        let mut state = block ^ w0;
        let mut t = tweak;
        for (i, constant) in ROUND_CONSTANTS.iter().enumerate().take(self.rounds) {
            state = self.forward(state, k0 ^ t ^ constant, i == 0);
            t = forward_update(t);
        }

        state = self.forward(state, w1 ^ t, false);
        state = self.reflect(state, k1);
        state = self.backward(state, w0 ^ t, false);

        for i in (0..self.rounds).rev() {
            t = backward_update(t);
            state = self.backward(state, k0 ^ t ^ ROUND_CONSTANTS[i] ^ ALPHA, i == 0);
        }

        state ^ w1
    }

    /// Encrypts one 64-bit block under the given 64-bit tweak.
    ///
    /// # Examples
    ///
    /// ```
    /// use pacstack_qarma::{Qarma64, Sigma};
    ///
    /// let cipher = Qarma64::new(0x84be85ce9804e94b, 0xec2802d4e0a488e9, Sigma::Sigma0, 5);
    /// assert_eq!(cipher.encrypt(0xfb623599da6e8127, 0x477d469dec0b8762), 0x3ee99a6c82af0c38);
    /// ```
    pub fn encrypt(&self, plaintext: u64, tweak: u64) -> u64 {
        self.crypt(
            plaintext,
            tweak,
            self.key.w0(),
            self.w1(),
            self.key.k0(),
            self.key.k0(),
        )
    }

    /// Decrypts one 64-bit block under the given 64-bit tweak.
    ///
    /// QARMA's reflector structure makes decryption the same circuit as
    /// encryption under a transformed key schedule: the whitening keys swap
    /// roles, α is folded into the core key, and the reflector key is reused.
    pub fn decrypt(&self, ciphertext: u64, tweak: u64) -> u64 {
        // The inverse of the central reflector keyed with k1 = k0 is the
        // reflector keyed with Q·k0 (Q = M is involutory).
        self.crypt(
            ciphertext,
            tweak,
            self.w1(),
            self.key.w0(),
            self.key.k0() ^ ALPHA,
            self.k1(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const W0: u64 = 0x84be85ce9804e94b;
    const K0: u64 = 0xec2802d4e0a488e9;
    const TWEAK: u64 = 0x477d469dec0b8762;
    const PLAINTEXT: u64 = 0xfb623599da6e8127;

    #[test]
    fn paper_test_vector_sigma0_r5() {
        let cipher = Qarma64::new(W0, K0, Sigma::Sigma0, 5);
        assert_eq!(cipher.encrypt(PLAINTEXT, TWEAK), 0x3ee99a6c82af0c38);
    }

    #[test]
    fn regression_vector_sigma1_r7() {
        // Computed by this implementation, cross-validated through the
        // published σ0/r=5 vector (which pins the whole data path) and the
        // encrypt/decrypt inverse property. Guards against regressions.
        let cipher = Qarma64::new(W0, K0, Sigma::Sigma1, 7);
        assert_eq!(cipher.encrypt(PLAINTEXT, TWEAK), 0xedf67ff370a483f2);
    }

    #[test]
    fn regression_vector_sigma2_r7() {
        // Matches the independent public QARMA64 C implementation's r=7
        // check value, cross-validating the non-involutory σ2 path; see
        // tests/reference_vectors.rs for the full pin table.
        let cipher = Qarma64::new(W0, K0, Sigma::Sigma2, 7);
        let c = cipher.encrypt(PLAINTEXT, TWEAK);
        assert_eq!(c, 0x5c06a7501b63b2fd);
        assert_eq!(cipher.decrypt(c, TWEAK), PLAINTEXT);
    }

    #[test]
    fn decrypt_inverts_encrypt_on_vectors() {
        for sigma in [Sigma::Sigma0, Sigma::Sigma1, Sigma::Sigma2] {
            for rounds in 1..=8 {
                let cipher = Qarma64::new(W0, K0, sigma, rounds);
                let c = cipher.encrypt(PLAINTEXT, TWEAK);
                assert_eq!(
                    cipher.decrypt(c, TWEAK),
                    PLAINTEXT,
                    "round-trip failed for {sigma} r={rounds}"
                );
            }
        }
    }

    #[test]
    fn different_tweaks_give_different_ciphertexts() {
        let cipher = Qarma64::recommended(Key128::new(W0, K0));
        assert_ne!(cipher.encrypt(PLAINTEXT, 0), cipher.encrypt(PLAINTEXT, 1));
    }

    #[test]
    fn different_keys_give_different_ciphertexts() {
        let a = Qarma64::recommended(Key128::new(W0, K0));
        let b = Qarma64::recommended(Key128::new(W0 ^ 1, K0));
        assert_ne!(a.encrypt(PLAINTEXT, TWEAK), b.encrypt(PLAINTEXT, TWEAK));
    }

    #[test]
    #[should_panic(expected = "1..=8 forward rounds")]
    fn zero_rounds_panics() {
        let _ = Qarma64::new(W0, K0, Sigma::Sigma1, 0);
    }

    #[test]
    fn recommended_is_sigma1_r7() {
        let cipher = Qarma64::recommended(Key128::new(W0, K0));
        assert_eq!(cipher.sigma(), Sigma::Sigma1);
        assert_eq!(cipher.rounds(), 7);
        assert_eq!(cipher.encrypt(PLAINTEXT, TWEAK), 0xedf67ff370a483f2);
    }
}

#[cfg(test)]
mod debug_tests {
    use super::*;

    #[test]
    fn forward_backward_are_inverses() {
        let cipher = Qarma64::new(0x84be85ce9804e94b, 0xec2802d4e0a488e9, Sigma::Sigma1, 7);
        let x = 0xfb623599da6e8127u64;
        let tk = 0x1234_5678_9abc_def0u64;
        for short in [true, false] {
            let y = cipher.forward(x, tk, short);
            assert_eq!(cipher.backward(y, tk, short), x, "short={short}");
        }
    }

    #[test]
    fn reflect_is_involution_with_zero_key() {
        let cipher = Qarma64::new(0x84be85ce9804e94b, 0xec2802d4e0a488e9, Sigma::Sigma1, 7);
        let x = 0xfb623599da6e8127u64;
        let y = cipher.reflect(x, 0);
        assert_eq!(cipher.reflect(y, 0), x);
    }
}
