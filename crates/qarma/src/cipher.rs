//! The QARMA-64 cipher proper: whitened forward rounds, a central reflector,
//! and backward rounds, all parameterised by S-box choice and round count.
//!
//! [`Qarma64::encrypt`]/[`Qarma64::decrypt`] run the packed-nibble fast path
//! over a key schedule precomputed in [`Qarma64::with_key`]; the original
//! cell-based data path survives as [`Qarma64::encrypt_reference`]/
//! [`Qarma64::decrypt_reference`] (see the [`crate::reference`] module) and
//! the two are pinned against each other by a differential proptest suite.

use crate::constants::{SIGMA0, SIGMA1, SIGMA2, SIGMA2_INV};
use crate::packed::{
    mt, reflector, sub_bytes, tinv_m, tweak_fwd, SIGMA0_BYTES, SIGMA1_BYTES, SIGMA2_BYTES,
    SIGMA2_INV_BYTES,
};
use crate::schedule::{DirSchedule, Schedule};
use crate::{reference, Key128};
use std::fmt;
use std::hash::{Hash, Hasher};

/// Which of QARMA's three published 4-bit S-boxes to use.
///
/// σ1 is the variant referenced for ARM pointer authentication; σ0 and σ2 are
/// the lighter and heavier alternatives from the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Sigma {
    /// σ0 — smallest circuit depth (an involution).
    Sigma0,
    /// σ1 — the recommended trade-off and ARM's reference choice (an involution).
    #[default]
    Sigma1,
    /// σ2 — highest nonlinearity (requires a distinct inverse table).
    Sigma2,
}

impl Sigma {
    pub(crate) fn table(self) -> &'static [u8; 16] {
        match self {
            Sigma::Sigma0 => &SIGMA0,
            Sigma::Sigma1 => &SIGMA1,
            Sigma::Sigma2 => &SIGMA2,
        }
    }

    pub(crate) fn inverse_table(self) -> &'static [u8; 16] {
        match self {
            Sigma::Sigma0 => &SIGMA0,
            Sigma::Sigma1 => &SIGMA1,
            Sigma::Sigma2 => &SIGMA2_INV,
        }
    }

    fn byte_table(self) -> &'static [u8; 256] {
        match self {
            Sigma::Sigma0 => &SIGMA0_BYTES,
            Sigma::Sigma1 => &SIGMA1_BYTES,
            Sigma::Sigma2 => &SIGMA2_BYTES,
        }
    }

    fn inverse_byte_table(self) -> &'static [u8; 256] {
        match self {
            Sigma::Sigma0 => &SIGMA0_BYTES,
            Sigma::Sigma1 => &SIGMA1_BYTES,
            Sigma::Sigma2 => &SIGMA2_INV_BYTES,
        }
    }
}

impl fmt::Display for Sigma {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sigma::Sigma0 => write!(f, "σ0"),
            Sigma::Sigma1 => write!(f, "σ1"),
            Sigma::Sigma2 => write!(f, "σ2"),
        }
    }
}

/// A QARMA-64 instance: a 128-bit key, an S-box choice and `r` forward rounds.
///
/// Construction precomputes the full two-direction key schedule (`w1`, the
/// per-round tweakeys, the reflector keys), so `encrypt`/`decrypt` touch no
/// key-derivation code — build an instance once per key and reuse it.
///
/// The paper's recommended parameterisations are `r = 5` with σ0, `r = 7`
/// with σ1, and `r = 11` with σ2. [`Qarma64::recommended`] builds the σ1/r=7
/// instance used as ARM's PAC reference.
///
/// # Examples
///
/// ```
/// use pacstack_qarma::{Key128, Qarma64, Sigma};
///
/// let cipher = Qarma64::with_key(Key128::new(0x1234, 0x5678), Sigma::Sigma1, 7);
/// let c = cipher.encrypt(0xdead_beef, 42);
/// assert_eq!(cipher.decrypt(c, 42), 0xdead_beef);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Qarma64 {
    key: Key128,
    sigma: Sigma,
    rounds: usize,
    schedule: Schedule,
}

// The schedule is a pure function of (key, sigma, rounds), so identity is
// decided by the parameters alone — comparing or hashing the derived tables
// would only re-state the same information more slowly.
impl PartialEq for Qarma64 {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.sigma == other.sigma && self.rounds == other.rounds
    }
}

impl Eq for Qarma64 {}

impl Hash for Qarma64 {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.key.hash(state);
        self.sigma.hash(state);
        self.rounds.hash(state);
    }
}

impl Qarma64 {
    /// Creates a cipher from the two key halves, an S-box and a round count.
    ///
    /// # Panics
    ///
    /// Panics if `rounds` is 0 or greater than 8 (the number of published
    /// round constants).
    pub fn new(w0: u64, k0: u64, sigma: Sigma, rounds: usize) -> Self {
        Self::with_key(Key128::new(w0, k0), sigma, rounds)
    }

    /// Creates a cipher from a [`Key128`], an S-box and a round count,
    /// precomputing the key schedule for both directions.
    ///
    /// # Panics
    ///
    /// Panics if `rounds` is 0 or greater than 8.
    pub fn with_key(key: Key128, sigma: Sigma, rounds: usize) -> Self {
        assert!(
            (1..=crate::constants::ROUND_CONSTANTS.len()).contains(&rounds),
            "QARMA-64 supports 1..=8 forward rounds, got {rounds}"
        );
        Self {
            key,
            sigma,
            rounds,
            schedule: Schedule::new(key),
        }
    }

    /// The σ1, r = 7 instance — QARMA7-64-σ1, ARM's PAC reference.
    pub fn recommended(key: Key128) -> Self {
        Self::with_key(key, Sigma::Sigma1, 7)
    }

    /// Returns the key this instance was built with.
    pub fn key(&self) -> Key128 {
        self.key
    }

    /// Returns the S-box variant in use.
    pub fn sigma(&self) -> Sigma {
        self.sigma
    }

    /// Returns the number of forward rounds.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// The shared packed data path: whitened forward rounds, central
    /// reflector, backward rounds, over one direction's precomputed
    /// schedule. The tweak sequence is computed once on the way forward and
    /// reused on the way back (the backward rounds consume the same values
    /// in reverse), and no `[u8; 16]` cell array is ever materialised.
    fn crypt_packed(&self, block: u64, tweak: u64, ks: &DirSchedule) -> u64 {
        let sb = self.sigma.byte_table();
        let sb_inv = self.sigma.inverse_byte_table();
        let r = self.rounds;

        let mut ts = [0u64; 9];
        ts[0] = tweak;
        for i in 1..=r {
            ts[i] = tweak_fwd(ts[i - 1]);
        }

        let mut state = block ^ ks.w_in;
        // Round 0 is the short round: no ShuffleCells/MixColumns.
        state = sub_bytes(state ^ ks.fwd_key[0] ^ ts[0], sb);
        for (&k, &t) in ks.fwd_key[1..r].iter().zip(&ts[1..r]) {
            state = sub_bytes(mt(state ^ k ^ t), sb);
        }

        let t_mid = ts[r];
        state = sub_bytes(mt(state ^ ks.w_out ^ t_mid), sb);
        state = reflector(state) ^ ks.reflect_key;
        state = tinv_m(sub_bytes(state, sb_inv)) ^ ks.w_in ^ t_mid;

        for i in (1..r).rev() {
            state = tinv_m(sub_bytes(state, sb_inv)) ^ ks.bwd_key[i] ^ ts[i];
        }
        state = sub_bytes(state, sb_inv) ^ ks.bwd_key[0] ^ ts[0];

        state ^ ks.w_out
    }

    /// Encrypts one 64-bit block under the given 64-bit tweak.
    ///
    /// On x86-64 CPUs with SSSE3 this dispatches to the vectorised data path
    /// (`pshufb` permutations and S-boxes); everywhere else it runs the
    /// portable packed-nibble SWAR path. Both are differentially pinned
    /// against the cell-based reference and always agree.
    ///
    /// # Examples
    ///
    /// ```
    /// use pacstack_qarma::{Qarma64, Sigma};
    ///
    /// let cipher = Qarma64::new(0x84be85ce9804e94b, 0xec2802d4e0a488e9, Sigma::Sigma0, 5);
    /// assert_eq!(cipher.encrypt(0xfb623599da6e8127, 0x477d469dec0b8762), 0x3ee99a6c82af0c38);
    /// ```
    pub fn encrypt(&self, plaintext: u64, tweak: u64) -> u64 {
        #[cfg(target_arch = "x86_64")]
        if crate::simd::available() {
            return crate::simd::crypt(
                plaintext,
                tweak,
                &self.schedule.enc,
                self.sigma,
                self.rounds,
            );
        }
        self.crypt_packed(plaintext, tweak, &self.schedule.enc)
    }

    /// Decrypts one 64-bit block under the given 64-bit tweak.
    ///
    /// QARMA's reflector structure makes decryption the same circuit as
    /// encryption under a transformed key schedule: the whitening keys swap
    /// roles, α is folded into the core key, and the reflector key is reused.
    pub fn decrypt(&self, ciphertext: u64, tweak: u64) -> u64 {
        #[cfg(target_arch = "x86_64")]
        if crate::simd::available() {
            return crate::simd::crypt(
                ciphertext,
                tweak,
                &self.schedule.dec,
                self.sigma,
                self.rounds,
            );
        }
        self.crypt_packed(ciphertext, tweak, &self.schedule.dec)
    }

    /// Encrypts through the cell-based reference path (the differential
    /// oracle; see [`crate::reference`]).
    pub fn encrypt_reference(&self, plaintext: u64, tweak: u64) -> u64 {
        reference::encrypt(self.key, self.sigma, self.rounds, plaintext, tweak)
    }

    /// Decrypts through the cell-based reference path (the differential
    /// oracle; see [`crate::reference`]).
    pub fn decrypt_reference(&self, ciphertext: u64, tweak: u64) -> u64 {
        reference::decrypt(self.key, self.sigma, self.rounds, ciphertext, tweak)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const W0: u64 = 0x84be85ce9804e94b;
    const K0: u64 = 0xec2802d4e0a488e9;
    const TWEAK: u64 = 0x477d469dec0b8762;
    const PLAINTEXT: u64 = 0xfb623599da6e8127;

    #[test]
    fn paper_test_vector_sigma0_r5() {
        let cipher = Qarma64::new(W0, K0, Sigma::Sigma0, 5);
        assert_eq!(cipher.encrypt(PLAINTEXT, TWEAK), 0x3ee99a6c82af0c38);
    }

    #[test]
    fn regression_vector_sigma1_r7() {
        // Computed by this implementation, cross-validated through the
        // published σ0/r=5 vector (which pins the whole data path) and the
        // encrypt/decrypt inverse property. Guards against regressions.
        let cipher = Qarma64::new(W0, K0, Sigma::Sigma1, 7);
        assert_eq!(cipher.encrypt(PLAINTEXT, TWEAK), 0xedf67ff370a483f2);
    }

    #[test]
    fn regression_vector_sigma2_r7() {
        // Matches the independent public QARMA64 C implementation's r=7
        // check value, cross-validating the non-involutory σ2 path; see
        // tests/reference_vectors.rs for the full pin table.
        let cipher = Qarma64::new(W0, K0, Sigma::Sigma2, 7);
        let c = cipher.encrypt(PLAINTEXT, TWEAK);
        assert_eq!(c, 0x5c06a7501b63b2fd);
        assert_eq!(cipher.decrypt(c, TWEAK), PLAINTEXT);
    }

    #[test]
    fn decrypt_inverts_encrypt_on_vectors() {
        for sigma in [Sigma::Sigma0, Sigma::Sigma1, Sigma::Sigma2] {
            for rounds in 1..=8 {
                let cipher = Qarma64::new(W0, K0, sigma, rounds);
                let c = cipher.encrypt(PLAINTEXT, TWEAK);
                assert_eq!(
                    cipher.decrypt(c, TWEAK),
                    PLAINTEXT,
                    "round-trip failed for {sigma} r={rounds}"
                );
            }
        }
    }

    #[test]
    fn packed_path_matches_reference_path_on_vectors() {
        for sigma in [Sigma::Sigma0, Sigma::Sigma1, Sigma::Sigma2] {
            for rounds in 1..=8 {
                let cipher = Qarma64::new(W0, K0, sigma, rounds);
                let c = cipher.encrypt(PLAINTEXT, TWEAK);
                assert_eq!(
                    c,
                    cipher.encrypt_reference(PLAINTEXT, TWEAK),
                    "encrypt diverged for {sigma} r={rounds}"
                );
                assert_eq!(
                    cipher.decrypt(c, TWEAK),
                    cipher.decrypt_reference(c, TWEAK),
                    "decrypt diverged for {sigma} r={rounds}"
                );
            }
        }
    }

    #[test]
    fn swar_path_matches_dispatched_path() {
        // On SIMD-capable hosts `encrypt` takes the vector path, which would
        // leave the portable SWAR fallback untested — pin them against each
        // other explicitly (and against the reference) on every host.
        for sigma in [Sigma::Sigma0, Sigma::Sigma1, Sigma::Sigma2] {
            for rounds in 1..=8 {
                let cipher = Qarma64::new(W0, K0, sigma, rounds);
                for i in 0..16u64 {
                    let p = PLAINTEXT.wrapping_mul(i | 1);
                    let t = TWEAK.wrapping_add(i);
                    assert_eq!(
                        cipher.crypt_packed(p, t, &cipher.schedule.enc),
                        cipher.encrypt(p, t),
                        "enc SWAR diverged for {sigma} r={rounds} i={i}"
                    );
                    assert_eq!(
                        cipher.crypt_packed(p, t, &cipher.schedule.dec),
                        cipher.decrypt(p, t),
                        "dec SWAR diverged for {sigma} r={rounds} i={i}"
                    );
                }
            }
        }
    }

    #[test]
    fn different_tweaks_give_different_ciphertexts() {
        let cipher = Qarma64::recommended(Key128::new(W0, K0));
        assert_ne!(cipher.encrypt(PLAINTEXT, 0), cipher.encrypt(PLAINTEXT, 1));
    }

    #[test]
    fn different_keys_give_different_ciphertexts() {
        let a = Qarma64::recommended(Key128::new(W0, K0));
        let b = Qarma64::recommended(Key128::new(W0 ^ 1, K0));
        assert_ne!(a.encrypt(PLAINTEXT, TWEAK), b.encrypt(PLAINTEXT, TWEAK));
    }

    #[test]
    fn equality_and_hash_ignore_the_derived_schedule() {
        use std::collections::HashSet;
        let a = Qarma64::new(W0, K0, Sigma::Sigma1, 7);
        let b = Qarma64::recommended(Key128::new(W0, K0));
        assert_eq!(a, b);
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
        assert_ne!(a, Qarma64::new(W0, K0, Sigma::Sigma1, 6));
        assert_ne!(a, Qarma64::new(W0, K0, Sigma::Sigma2, 7));
    }

    #[test]
    #[should_panic(expected = "1..=8 forward rounds")]
    fn zero_rounds_panics() {
        let _ = Qarma64::new(W0, K0, Sigma::Sigma1, 0);
    }

    #[test]
    fn recommended_is_sigma1_r7() {
        let cipher = Qarma64::recommended(Key128::new(W0, K0));
        assert_eq!(cipher.sigma(), Sigma::Sigma1);
        assert_eq!(cipher.rounds(), 7);
        assert_eq!(cipher.encrypt(PLAINTEXT, TWEAK), 0xedf67ff370a483f2);
    }
}
