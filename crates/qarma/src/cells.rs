//! Cell-level operations on the QARMA-64 internal state.
//!
//! QARMA-64 treats its 64-bit state as a 4×4 array of 4-bit cells, numbered
//! from the most-significant nibble (`cell[0]`) to the least-significant
//! (`cell[15]`), row-major.

/// The 4×4 state of 4-bit cells, `cells[0]` being the most-significant nibble.
pub(crate) type Cells = [u8; 16];

/// Splits a 64-bit word into 16 nibbles, most-significant first.
pub(crate) fn to_cells(x: u64) -> Cells {
    let mut cells = [0u8; 16];
    for (i, cell) in cells.iter_mut().enumerate() {
        *cell = ((x >> (4 * (15 - i))) & 0xF) as u8;
    }
    cells
}

/// Reassembles 16 nibbles (most-significant first) into a 64-bit word.
pub(crate) fn from_cells(cells: &Cells) -> u64 {
    let mut x = 0u64;
    for (i, &cell) in cells.iter().enumerate() {
        x |= u64::from(cell & 0xF) << (4 * (15 - i));
    }
    x
}

/// Applies a cell permutation: `out[i] = cells[perm[i]]`.
pub(crate) fn permute(cells: &Cells, perm: &[usize; 16]) -> Cells {
    let mut out = [0u8; 16];
    for (o, &p) in out.iter_mut().zip(perm.iter()) {
        *o = cells[p];
    }
    out
}

/// Rotates a 4-bit cell left by `b` bits (`b` in `1..=3`).
fn rotl4(a: u8, b: u8) -> u8 {
    ((a << b) & 0xF) | (a >> (4 - b))
}

/// Multiplies the state by the involutory circulant matrix
/// `M = circ(0, ρ¹, ρ², ρ¹)` used by QARMA-64, where ρ is the left rotation
/// of a cell by one bit. Because the matrix is involutory, the same routine
/// serves MixColumns in both the forward and backward directions.
pub(crate) fn mix_columns(cells: &Cells) -> Cells {
    // Exponents of ρ in row-major order; 0 entries mean "no contribution".
    const M: [u8; 16] = [0, 1, 2, 1, 1, 0, 1, 2, 2, 1, 0, 1, 1, 2, 1, 0];
    let mut out = [0u8; 16];
    for row in 0..4 {
        for col in 0..4 {
            let mut acc = 0u8;
            for k in 0..4 {
                let b = M[4 * row + k];
                if b != 0 {
                    acc ^= rotl4(cells[4 * k + col], b);
                }
            }
            out[4 * row + col] = acc;
        }
    }
    out
}

/// Applies a 4-bit S-box to every cell.
pub(crate) fn sub_cells(cells: &Cells, sbox: &[u8; 16]) -> Cells {
    let mut out = [0u8; 16];
    for (o, &c) in out.iter_mut().zip(cells.iter()) {
        *o = sbox[c as usize];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cells_round_trip() {
        let x = 0x0123_4567_89ab_cdef;
        assert_eq!(from_cells(&to_cells(x)), x);
    }

    #[test]
    fn cell_zero_is_most_significant_nibble() {
        let cells = to_cells(0xf000_0000_0000_0001);
        assert_eq!(cells[0], 0xF);
        assert_eq!(cells[15], 0x1);
    }

    #[test]
    fn rotl4_rotates_within_nibble() {
        assert_eq!(rotl4(0b1000, 1), 0b0001);
        assert_eq!(rotl4(0b0011, 2), 0b1100);
        assert_eq!(rotl4(0b1001, 3), 0b1100);
    }

    #[test]
    fn mix_columns_is_involutory() {
        let cells = to_cells(0xfb62_3599_da6e_8127);
        assert_eq!(mix_columns(&mix_columns(&cells)), cells);
    }

    #[test]
    fn permute_then_inverse_is_identity() {
        const TAU: [usize; 16] = [0, 11, 6, 13, 10, 1, 12, 7, 5, 14, 3, 8, 15, 4, 9, 2];
        const TAU_INV: [usize; 16] = [0, 5, 15, 10, 13, 8, 2, 7, 11, 14, 4, 1, 6, 3, 9, 12];
        let cells = to_cells(0x0123_4567_89ab_cdef);
        assert_eq!(permute(&permute(&cells, &TAU), &TAU_INV), cells);
    }
}
