//! The QARMA tweak schedule: the tweak is permuted by h and a subset of its
//! cells passes through a 4-bit LFSR ω after every forward round.

use crate::cells::{from_cells, permute, to_cells};
use crate::constants::{H, H_INV, LFSR_CELLS};

/// The ω LFSR: (b3, b2, b1, b0) → (b0 ⊕ b1, b3, b2, b1).
fn lfsr(x: u8) -> u8 {
    let b0 = x & 1;
    let b1 = (x >> 1) & 1;
    let b2 = (x >> 2) & 1;
    let b3 = (x >> 3) & 1;
    ((b0 ^ b1) << 3) | (b3 << 2) | (b2 << 1) | b1
}

/// Inverse of [`lfsr`].
fn lfsr_inv(x: u8) -> u8 {
    let y0 = x & 1;
    let y1 = (x >> 1) & 1;
    let y2 = (x >> 2) & 1;
    let y3 = (x >> 3) & 1;
    // Forward produced (y3, y2, y1, y0) = (b0 ^ b1, b3, b2, b1).
    let b1 = y0;
    let b2 = y1;
    let b3 = y2;
    let b0 = y3 ^ y0;
    (b3 << 3) | (b2 << 2) | (b1 << 1) | b0
}

/// Advances the tweak by one round: permute cells by h, then clock the ω LFSR
/// on cells {0, 1, 3, 4, 8, 11, 13}.
pub(crate) fn forward_update(tweak: u64) -> u64 {
    let mut cells = permute(&to_cells(tweak), &H);
    for &i in &LFSR_CELLS {
        cells[i] = lfsr(cells[i]);
    }
    from_cells(&cells)
}

/// Rewinds the tweak by one round (inverse of [`forward_update`]).
pub(crate) fn backward_update(tweak: u64) -> u64 {
    let mut cells = to_cells(tweak);
    for &i in &LFSR_CELLS {
        cells[i] = lfsr_inv(cells[i]);
    }
    from_cells(&permute(&cells, &H_INV))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lfsr_is_invertible() {
        for x in 0..16u8 {
            assert_eq!(lfsr_inv(lfsr(x)), x);
            assert_eq!(lfsr(lfsr_inv(x)), x);
        }
    }

    #[test]
    fn lfsr_has_full_period_on_nonzero_states() {
        // ω is a maximum-period LFSR on the 15 non-zero states.
        let mut x = 1u8;
        let mut period = 0;
        loop {
            x = lfsr(x);
            period += 1;
            if x == 1 {
                break;
            }
        }
        assert_eq!(period, 15);
        assert_eq!(lfsr(0), 0);
    }

    #[test]
    fn tweak_update_round_trips() {
        let t = 0x477d_469d_ec0b_8762;
        assert_eq!(backward_update(forward_update(t)), t);
        assert_eq!(forward_update(backward_update(t)), t);
    }

    #[test]
    fn tweak_update_changes_value() {
        let t = 0x477d_469d_ec0b_8762;
        assert_ne!(forward_update(t), t);
    }
}
