//! Round constants and fixed permutations for QARMA-64, as published in
//! "The QARMA Block Cipher Family" (Avanzi, 2017).

/// The constant α added to the core key in the backward rounds.
pub(crate) const ALPHA: u64 = 0xC0AC_29B7_C97C_50DD;

/// Round constants `c[0..8]` (digits of π), enough for up to 8 forward rounds.
pub(crate) const ROUND_CONSTANTS: [u64; 8] = [
    0x0000_0000_0000_0000,
    0x1319_8A2E_0370_7344,
    0xA409_3822_299F_31D0,
    0x082E_FA98_EC4E_6C89,
    0x4528_21E6_38D0_1377,
    0xBE54_66CF_34E9_0C6C,
    0x3F84_D5B5_B547_0917,
    0x9216_D5D9_8979_FB1B,
];

/// The MIDORI cell shuffle τ used by QARMA's ShuffleCells step.
pub(crate) const TAU: [usize; 16] = [0, 11, 6, 13, 10, 1, 12, 7, 5, 14, 3, 8, 15, 4, 9, 2];

/// Inverse of [`TAU`].
pub(crate) const TAU_INV: [usize; 16] = [0, 5, 15, 10, 13, 8, 2, 7, 11, 14, 4, 1, 6, 3, 9, 12];

/// The tweak-cell permutation h applied when updating the tweak each round.
pub(crate) const H: [usize; 16] = [6, 5, 14, 15, 0, 1, 2, 3, 7, 12, 13, 4, 8, 9, 10, 11];

/// Inverse of [`H`].
pub(crate) const H_INV: [usize; 16] = [4, 5, 6, 7, 11, 1, 0, 8, 12, 13, 14, 15, 9, 10, 2, 3];

/// Tweak cells that pass through the ω LFSR on every tweak update.
pub(crate) const LFSR_CELLS: [usize; 7] = [0, 1, 3, 4, 8, 11, 13];

/// The σ0 S-box (an involution).
pub(crate) const SIGMA0: [u8; 16] = [0, 14, 2, 10, 9, 15, 8, 11, 6, 4, 3, 7, 13, 12, 1, 5];

/// The σ1 S-box (an involution); the variant ARM's PAC reference uses.
pub(crate) const SIGMA1: [u8; 16] = [10, 13, 14, 6, 15, 7, 3, 5, 9, 8, 0, 12, 11, 1, 2, 4];

/// The σ2 S-box (not an involution — see [`SIGMA2_INV`]).
pub(crate) const SIGMA2: [u8; 16] = [11, 6, 8, 15, 12, 0, 9, 14, 3, 7, 4, 5, 13, 2, 1, 10];

/// Inverse of [`SIGMA2`].
pub(crate) const SIGMA2_INV: [u8; 16] = [5, 14, 13, 8, 10, 11, 1, 9, 2, 6, 15, 0, 4, 12, 7, 3];

#[cfg(test)]
mod tests {
    use super::*;

    fn is_permutation(p: &[u8; 16]) -> bool {
        let mut seen = [false; 16];
        for &v in p {
            if seen[v as usize] {
                return false;
            }
            seen[v as usize] = true;
        }
        true
    }

    fn inverse_of(p: &[usize; 16], q: &[usize; 16]) -> bool {
        (0..16).all(|i| q[p[i]] == i)
    }

    #[test]
    fn sboxes_are_permutations() {
        assert!(is_permutation(&SIGMA0));
        assert!(is_permutation(&SIGMA1));
        assert!(is_permutation(&SIGMA2));
        assert!(is_permutation(&SIGMA2_INV));
    }

    #[test]
    fn sigma0_and_sigma1_are_involutions() {
        for x in 0..16u8 {
            assert_eq!(SIGMA0[SIGMA0[x as usize] as usize], x);
            assert_eq!(SIGMA1[SIGMA1[x as usize] as usize], x);
        }
    }

    #[test]
    fn sigma2_inverse_is_correct() {
        for x in 0..16u8 {
            assert_eq!(SIGMA2_INV[SIGMA2[x as usize] as usize], x);
        }
    }

    #[test]
    fn permutation_inverses_are_correct() {
        assert!(inverse_of(&TAU, &TAU_INV));
        assert!(inverse_of(&H, &H_INV));
    }
}
