//! SIMD fast path (x86-64, SSSE3): the whole cipher on one XMM register,
//! one cell per byte lane.
//!
//! In this layout every QARMA-64 layer degenerates to a handful of vector
//! instructions:
//!
//! * **Cell permutations are one `pshufb`.** τ, τ⁻¹ and the tweak
//!   permutation h each become a single byte shuffle with a constant index
//!   vector.
//! * **SubCells is one `pshufb` too.** Cells hold nibble values, which are
//!   exactly in-range indices into a 16-entry S-box loaded as the shuffle
//!   *table* operand — the substitution of all 16 cells is one instruction.
//! * **MixColumns is two shuffles short of free.** Rotating every cell `k`
//!   rows down its column is `palignr` by `4k` bytes, and the per-cell ρ
//!   rotations are SWAR shifts on the byte lanes; ρ's linearity folds the
//!   two ρ¹ terms of `circ(0, ρ¹, ρ², ρ¹)` into one.
//!
//! The schedule's key material is pre-spread into this lane layout by
//! [`crate::schedule`], so the hot loop only loads and XORs.
//!
//! This module is the one place in the crate that uses `unsafe` (the crate
//! is otherwise `#![deny(unsafe_code)]`): the SSSE3 intrinsics require a
//! `#[target_feature]` context. [`crypt`] asserts runtime SSSE3 support
//! before entering it, and non-x86-64 builds (or CPUs without SSSE3) take
//! the portable SWAR path in [`crate::packed`] instead. Correctness is
//! pinned by the in-module differential tests against the cell-based
//! reference and by the crate-level proptest suite, which exercises
//! whichever path dispatch selects.
#![allow(unsafe_code)]

use crate::constants::{H, LFSR_CELLS, SIGMA0, SIGMA1, SIGMA2, SIGMA2_INV, TAU, TAU_INV};
use crate::schedule::{DirSchedule, Spread};
use crate::Sigma;
use core::arch::x86_64::{
    __m128i, _mm_alignr_epi8, _mm_and_si128, _mm_andnot_si128, _mm_cvtsi128_si64,
    _mm_cvtsi64_si128, _mm_or_si128, _mm_packus_epi16, _mm_set1_epi16, _mm_set1_epi8,
    _mm_set_epi64x, _mm_setzero_si128, _mm_shuffle_epi8, _mm_slli_epi16, _mm_srli_epi16,
    _mm_unpacklo_epi8, _mm_xor_si128,
};

/// A cell permutation as a `pshufb` index pair: lane `d` reads `perm[d]`.
const fn idx_pair(perm: &[usize; 16]) -> Spread {
    let mut halves = [0u64; 2];
    let mut d = 0;
    while d < 16 {
        halves[d / 8] |= (perm[d] as u64) << (8 * (d % 8));
        d += 1;
    }
    halves
}

/// A 16-entry S-box as a `pshufb` table pair: lane `i` holds `sbox[i]`.
const fn sbox_pair(sbox: &[u8; 16]) -> Spread {
    let mut halves = [0u64; 2];
    let mut i = 0;
    while i < 16 {
        halves[i / 8] |= (sbox[i] as u64) << (8 * (i % 8));
        i += 1;
    }
    halves
}

/// Byte-lane mask pair selecting the cells the ω LFSR clocks.
const fn lfsr_lane_pair() -> Spread {
    let mut halves = [0u64; 2];
    let mut i = 0;
    while i < LFSR_CELLS.len() {
        let d = LFSR_CELLS[i];
        halves[d / 8] |= 0xFFu64 << (8 * (d % 8));
        i += 1;
    }
    halves
}

const TAU_IDX: Spread = idx_pair(&TAU);
const TAU_INV_IDX: Spread = idx_pair(&TAU_INV);
const H_IDX: Spread = idx_pair(&H);
const LFSR_LANES: Spread = lfsr_lane_pair();
const SIGMA0_VEC: Spread = sbox_pair(&SIGMA0);
const SIGMA1_VEC: Spread = sbox_pair(&SIGMA1);
const SIGMA2_VEC: Spread = sbox_pair(&SIGMA2);
const SIGMA2_INV_VEC: Spread = sbox_pair(&SIGMA2_INV);

/// Whether the SIMD path can run on this CPU. The detection result is cached
/// by the standard library, so calling this per encryption is cheap.
#[inline]
pub(crate) fn available() -> bool {
    std::arch::is_x86_feature_detected!("ssse3")
}

/// Runs the shared data path (forward rounds, reflector, backward rounds)
/// entirely in SIMD registers. Same contract as the SWAR `crypt_packed`.
///
/// # Panics
///
/// Panics if the CPU lacks SSSE3 — callers dispatch on [`available`].
#[inline]
pub(crate) fn crypt(block: u64, tweak: u64, ks: &DirSchedule, sigma: Sigma, rounds: usize) -> u64 {
    assert!(available(), "SIMD path entered without SSSE3 support");
    // SAFETY: the assertion above guarantees the ssse3 target feature is
    // present at runtime.
    unsafe { crypt_ssse3(block, tweak, ks, sigma, rounds) }
}

#[target_feature(enable = "ssse3")]
fn load(pair: Spread) -> __m128i {
    _mm_set_epi64x(pair[1] as i64, pair[0] as i64)
}

/// Packed `u64` → one cell per byte lane (lane `d` = cell `d`).
#[target_feature(enable = "ssse3")]
fn spread(x: u64) -> __m128i {
    // After a byte swap, little-endian byte j holds cells 2j (high nibble)
    // and 2j+1 (low nibble); splitting the nibbles and interleaving puts
    // every cell in its own lane, in order.
    let v = _mm_cvtsi64_si128(x.swap_bytes() as i64);
    let x0f = _mm_set1_epi8(0x0F);
    let hi = _mm_and_si128(_mm_srli_epi16::<4>(v), x0f);
    let lo = _mm_and_si128(v, x0f);
    _mm_unpacklo_epi8(hi, lo)
}

/// One cell per byte lane → packed `u64` (inverse of [`spread`]).
#[target_feature(enable = "ssse3")]
fn pack(v: __m128i) -> u64 {
    // Each u16 lane is [cell 2j | cell 2j+1 << 8]; fuse the pair back into
    // one byte, compress the eight u16 lanes to eight bytes, byte-swap.
    let even = _mm_and_si128(v, _mm_set1_epi16(0x00FF));
    let fused = _mm_or_si128(_mm_slli_epi16::<4>(even), _mm_srli_epi16::<8>(v));
    let bytes = _mm_packus_epi16(fused, _mm_setzero_si128());
    (_mm_cvtsi128_si64(bytes) as u64).swap_bytes()
}

/// ρ¹ on every lane.
#[target_feature(enable = "ssse3")]
fn rho1(v: __m128i) -> __m128i {
    let x0f = _mm_set1_epi8(0x0F);
    _mm_and_si128(
        _mm_or_si128(_mm_slli_epi16::<1>(v), _mm_srli_epi16::<3>(v)),
        x0f,
    )
}

/// ρ² on every lane.
#[target_feature(enable = "ssse3")]
fn rho2(v: __m128i) -> __m128i {
    let x0f = _mm_set1_epi8(0x0F);
    _mm_and_si128(
        _mm_or_si128(_mm_slli_epi16::<2>(v), _mm_srli_epi16::<2>(v)),
        x0f,
    )
}

/// MixColumns: row-rotations are byte rotations of the whole register
/// (`palignr`), and ρ's GF(2)-linearity folds the two ρ¹ terms together.
#[target_feature(enable = "ssse3")]
fn mix(v: __m128i) -> __m128i {
    let down1 = _mm_alignr_epi8::<4>(v, v);
    let down2 = _mm_alignr_epi8::<8>(v, v);
    let down3 = _mm_alignr_epi8::<12>(v, v);
    _mm_xor_si128(rho1(_mm_xor_si128(down1, down3)), rho2(down2))
}

/// Forward-round linear layer M∘τ.
#[target_feature(enable = "ssse3")]
fn mt(v: __m128i) -> __m128i {
    mix(_mm_shuffle_epi8(v, load(TAU_IDX)))
}

/// Backward-round linear layer τ⁻¹∘M.
#[target_feature(enable = "ssse3")]
fn tinv_m(v: __m128i) -> __m128i {
    _mm_shuffle_epi8(mix(v), load(TAU_INV_IDX))
}

/// One forward tweak update: permute by h, clock ω on the LFSR cells.
#[target_feature(enable = "ssse3")]
fn tweak_fwd(t: __m128i) -> __m128i {
    let p = _mm_shuffle_epi8(t, load(H_IDX));
    let x01 = _mm_set1_epi8(0x01);
    let shifted = _mm_srli_epi16::<1>(p);
    let b0 = _mm_and_si128(p, x01);
    let b1 = _mm_and_si128(shifted, x01);
    let top = _mm_slli_epi16::<3>(_mm_xor_si128(b0, b1));
    let low3 = _mm_and_si128(shifted, _mm_set1_epi8(0x07));
    let clocked = _mm_or_si128(top, low3);
    let mask = load(LFSR_LANES);
    _mm_or_si128(_mm_and_si128(clocked, mask), _mm_andnot_si128(mask, p))
}

/// The σ (and σ⁻¹) shuffle tables for a given S-box choice.
fn sbox_vecs(sigma: Sigma) -> (Spread, Spread) {
    match sigma {
        Sigma::Sigma0 => (SIGMA0_VEC, SIGMA0_VEC),
        Sigma::Sigma1 => (SIGMA1_VEC, SIGMA1_VEC),
        Sigma::Sigma2 => (SIGMA2_VEC, SIGMA2_INV_VEC),
    }
}

#[target_feature(enable = "ssse3")]
fn crypt_ssse3(block: u64, tweak: u64, ks: &DirSchedule, sigma: Sigma, rounds: usize) -> u64 {
    let (sb_pair, sb_inv_pair) = sbox_vecs(sigma);
    let sb = load(sb_pair);
    let sb_inv = load(sb_inv_pair);
    let r = rounds;

    let mut ts = [_mm_setzero_si128(); 9];
    ts[0] = spread(tweak);
    for i in 1..=r {
        ts[i] = tweak_fwd(ts[i - 1]);
    }

    let xor3 = |a: __m128i, b: Spread, c: __m128i| _mm_xor_si128(_mm_xor_si128(a, load(b)), c);
    let sub = |v: __m128i, table: __m128i| _mm_shuffle_epi8(table, v);

    let mut state = spread(block ^ ks.w_in);
    // Round 0 is the short round: no ShuffleCells/MixColumns.
    state = sub(xor3(state, ks.fwd_key_spread[0], ts[0]), sb);
    for (&k, &t) in ks.fwd_key_spread[1..r].iter().zip(&ts[1..r]) {
        state = sub(mt(xor3(state, k, t)), sb);
    }

    let t_mid = ts[r];
    state = sub(mt(xor3(state, ks.w_out_spread, t_mid)), sb);
    state = _mm_xor_si128(
        _mm_shuffle_epi8(
            mix(_mm_shuffle_epi8(state, load(TAU_IDX))),
            load(TAU_INV_IDX),
        ),
        load(ks.reflect_key_spread),
    );
    state = xor3(tinv_m(sub(state, sb_inv)), ks.w_in_spread, t_mid);

    for i in (1..r).rev() {
        state = xor3(tinv_m(sub(state, sb_inv)), ks.bwd_key_spread[i], ts[i]);
    }
    state = xor3(sub(state, sb_inv), ks.bwd_key_spread[0], ts[0]);

    pack(state) ^ ks.w_out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{spread_cells, Schedule};
    use crate::{reference, Key128};

    fn samples() -> impl Iterator<Item = u64> {
        (0..64)
            .map(|b| 1u64 << b)
            .chain([0, u64::MAX, 0x0123_4567_89ab_cdef, 0xfb62_3599_da6e_8127])
            .chain((0..64).map(|i| 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i + 1)))
    }

    #[test]
    fn spread_and_pack_round_trip() {
        if !available() {
            return;
        }
        for x in samples() {
            let s = spread_cells(x);
            // SAFETY: guarded by available() above.
            let (rt, direct) = unsafe { (pack(spread(x)), pack(load(s))) };
            assert_eq!(rt, x, "x = {x:#018x}");
            assert_eq!(direct, x, "scalar spread diverged for x = {x:#018x}");
        }
    }

    #[test]
    fn simd_crypt_matches_the_cell_reference() {
        if !available() {
            return;
        }
        let key = Key128::new(0x84be85ce9804e94b, 0xec2802d4e0a488e9);
        let schedule = Schedule::new(key);
        for sigma in [Sigma::Sigma0, Sigma::Sigma1, Sigma::Sigma2] {
            for rounds in 1..=8 {
                for (i, x) in samples().enumerate() {
                    let tweak = (i as u64).wrapping_mul(0xA076_1D64_78BD_642F);
                    assert_eq!(
                        crypt(x, tweak, &schedule.enc, sigma, rounds),
                        reference::encrypt(key, sigma, rounds, x, tweak),
                        "encrypt diverged for {sigma} r={rounds} x={x:#018x}"
                    );
                    assert_eq!(
                        crypt(x, tweak, &schedule.dec, sigma, rounds),
                        reference::decrypt(key, sigma, rounds, x, tweak),
                        "decrypt diverged for {sigma} r={rounds} x={x:#018x}"
                    );
                }
            }
        }
    }
}
