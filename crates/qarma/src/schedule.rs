//! Precomputed QARMA-64 key schedules.
//!
//! The reference data path re-derives `w1`, the per-round tweakeys and the
//! reflector key on every call. All of that material is a pure function of
//! the 128-bit key, so [`Schedule::new`] derives it once when the cipher is
//! built and the hot path only XORs precomputed words.

use crate::cells::{from_cells, mix_columns, permute, to_cells};
use crate::constants::{ALPHA, ROUND_CONSTANTS, TAU_INV};
use crate::Key128;

/// A 64-bit packed state spread to one cell per byte (lane `d` = cell `d`),
/// as two little-endian `u64` halves — the in-register layout of the SIMD
/// data path, precomputed here so the hot loop just loads it.
#[cfg(target_arch = "x86_64")]
pub(crate) type Spread = [u64; 2];

/// Spreads a packed word into the one-cell-per-byte layout.
#[cfg(target_arch = "x86_64")]
pub(crate) fn spread_cells(x: u64) -> Spread {
    let mut halves = [0u64; 2];
    for d in 0..16 {
        halves[d / 8] |= ((x >> (60 - 4 * d)) & 0xF) << (8 * (d % 8));
    }
    halves
}

/// Key material for one direction of the shared data path.
///
/// QARMA's reflector structure makes decryption the same circuit as
/// encryption under a transformed key schedule, so one `DirSchedule` fully
/// describes either direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct DirSchedule {
    /// Whitening XORed into the input block (`w0` when encrypting).
    pub w_in: u64,
    /// Whitening XORed into the output block (`w1` when encrypting); also
    /// the tweakey core of the extra forward round before the reflector.
    pub w_out: u64,
    /// Forward-round tweakeys `k ⊕ c_i` (tweak added per call).
    pub fwd_key: [u64; 8],
    /// Backward-round tweakeys `k ⊕ c_i ⊕ α`.
    pub bwd_key: [u64; 8],
    /// The reflector key, pre-permuted by τ⁻¹ and packed, so the reflector
    /// centre collapses to one table application and one XOR.
    pub reflect_key: u64,
    /// [`DirSchedule::w_in`] in the SIMD lane layout.
    #[cfg(target_arch = "x86_64")]
    pub w_in_spread: Spread,
    /// [`DirSchedule::w_out`] in the SIMD lane layout.
    #[cfg(target_arch = "x86_64")]
    pub w_out_spread: Spread,
    /// [`DirSchedule::fwd_key`] in the SIMD lane layout.
    #[cfg(target_arch = "x86_64")]
    pub fwd_key_spread: [Spread; 8],
    /// [`DirSchedule::bwd_key`] in the SIMD lane layout.
    #[cfg(target_arch = "x86_64")]
    pub bwd_key_spread: [Spread; 8],
    /// [`DirSchedule::reflect_key`] in the SIMD lane layout.
    #[cfg(target_arch = "x86_64")]
    pub reflect_key_spread: Spread,
}

impl DirSchedule {
    fn new(w_in: u64, w_out: u64, k: u64, k1: u64) -> Self {
        let mut fwd_key = [0u64; 8];
        let mut bwd_key = [0u64; 8];
        for (i, c) in ROUND_CONSTANTS.iter().enumerate() {
            fwd_key[i] = k ^ c;
            bwd_key[i] = k ^ c ^ ALPHA;
        }
        let reflect_key = from_cells(&permute(&to_cells(k1), &TAU_INV));
        Self {
            w_in,
            w_out,
            fwd_key,
            bwd_key,
            reflect_key,
            #[cfg(target_arch = "x86_64")]
            w_in_spread: spread_cells(w_in),
            #[cfg(target_arch = "x86_64")]
            w_out_spread: spread_cells(w_out),
            #[cfg(target_arch = "x86_64")]
            fwd_key_spread: fwd_key.map(spread_cells),
            #[cfg(target_arch = "x86_64")]
            bwd_key_spread: bwd_key.map(spread_cells),
            #[cfg(target_arch = "x86_64")]
            reflect_key_spread: spread_cells(reflect_key),
        }
    }
}

/// Both directions' schedules, derived once per key in `Qarma64::with_key`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct Schedule {
    /// Encryption-direction key material.
    pub enc: DirSchedule,
    /// Decryption-direction key material: whitening keys swapped, α folded
    /// into the core key, reflector keyed with `Q·k0`.
    pub dec: DirSchedule,
}

impl Schedule {
    /// Derives the full two-direction schedule from a 128-bit key.
    pub fn new(key: Key128) -> Self {
        let w0 = key.w0();
        let w1 = w0.rotate_right(1) ^ (w0 >> 63);
        let k0 = key.k0();
        let q_k0 = from_cells(&mix_columns(&to_cells(k0)));
        Self {
            enc: DirSchedule::new(w0, w1, k0, k0),
            dec: DirSchedule::new(w1, w0, k0 ^ ALPHA, q_k0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_in_the_key() {
        let key = Key128::new(0x84be85ce9804e94b, 0xec2802d4e0a488e9);
        assert_eq!(Schedule::new(key), Schedule::new(key));
        assert_ne!(
            Schedule::new(key),
            Schedule::new(Key128::new(0x84be85ce9804e94b ^ 1, 0xec2802d4e0a488e9))
        );
    }

    #[test]
    fn derived_whitening_matches_reference_formula() {
        let key = Key128::new(0x84be85ce9804e94b, 0xec2802d4e0a488e9);
        let s = Schedule::new(key);
        let w0 = key.w0();
        let w1 = w0.rotate_right(1) ^ (w0 >> 63);
        assert_eq!(s.enc.w_in, w0);
        assert_eq!(s.enc.w_out, w1);
        assert_eq!(s.dec.w_in, w1);
        assert_eq!(s.dec.w_out, w0);
    }

    #[test]
    fn round_keys_fold_constants_and_alpha() {
        let key = Key128::new(7, 9);
        let s = Schedule::new(key);
        for (i, c) in ROUND_CONSTANTS.iter().enumerate() {
            assert_eq!(s.enc.fwd_key[i], key.k0() ^ c);
            assert_eq!(s.enc.bwd_key[i], key.k0() ^ c ^ ALPHA);
            assert_eq!(s.dec.fwd_key[i], key.k0() ^ ALPHA ^ c);
            assert_eq!(s.dec.bwd_key[i], key.k0() ^ c);
        }
    }
}
