//! QARMA-64: the tweakable block cipher used as the reference primitive for
//! ARMv8.3-A pointer authentication codes (PACs).
//!
//! QARMA is a three-round Even–Mansour construction with a reflector, designed
//! by Roberto Avanzi ("The QARMA Block Cipher Family", IACR ToSC 2017). The
//! 64-bit variant is the primitive ARM's architecture reference manual names
//! for computing PACs, and the one the PACStack paper assumes when estimating
//! a ~4-cycle PAC latency.
//!
//! This crate implements the full QARMA-64 encryption and decryption with all
//! three published S-boxes (σ0, σ1, σ2) and a configurable number of forward
//! rounds `r`, and is validated against the test vectors published in the
//! QARMA paper.
//!
//! # Examples
//!
//! ```
//! use pacstack_qarma::{Qarma64, Sigma};
//!
//! // Key, tweak and plaintext from the QARMA paper's published test vector.
//! let cipher = Qarma64::new(0x84be85ce9804e94b, 0xec2802d4e0a488e9, Sigma::Sigma0, 5);
//! let ciphertext = cipher.encrypt(0xfb623599da6e8127, 0x477d469dec0b8762);
//! assert_eq!(ciphertext, 0x3ee99a6c82af0c38);
//! assert_eq!(cipher.decrypt(ciphertext, 0x477d469dec0b8762), 0xfb623599da6e8127);
//! ```

// `unsafe` is denied crate-wide and allowed in exactly one place: the
// `simd` module, whose SSSE3 intrinsics need a `#[target_feature]` context.
// Every other module is unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod cells;
mod cipher;
mod constants;
mod packed;
pub mod reference;
mod schedule;
#[cfg(target_arch = "x86_64")]
mod simd;
mod tweak;

pub use cipher::{Qarma64, Sigma};

/// A 128-bit QARMA key, split into the whitening half `w0` and core half `k0`.
///
/// This mirrors how ARM pointer-authentication key registers (for example
/// `APIAKey_EL1`) hold a 128-bit value consumed by QARMA-64.
///
/// # Examples
///
/// ```
/// use pacstack_qarma::Key128;
///
/// let key = Key128::new(0x84be85ce9804e94b, 0xec2802d4e0a488e9);
/// assert_eq!(key.w0(), 0x84be85ce9804e94b);
/// assert_eq!(key.k0(), 0xec2802d4e0a488e9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Key128 {
    w0: u64,
    k0: u64,
}

impl Key128 {
    /// Creates a key from its whitening (`w0`) and core (`k0`) halves.
    pub fn new(w0: u64, k0: u64) -> Self {
        Self { w0, k0 }
    }

    /// Returns the whitening half of the key.
    pub fn w0(self) -> u64 {
        self.w0
    }

    /// Returns the core half of the key.
    pub fn k0(self) -> u64 {
        self.k0
    }

    /// Builds a key from 16 bytes in big-endian order (`w0` first).
    ///
    /// # Examples
    ///
    /// ```
    /// use pacstack_qarma::Key128;
    ///
    /// let bytes = [0u8; 16];
    /// assert_eq!(Key128::from_bytes(bytes), Key128::new(0, 0));
    /// ```
    pub fn from_bytes(bytes: [u8; 16]) -> Self {
        let mut w0 = [0u8; 8];
        let mut k0 = [0u8; 8];
        w0.copy_from_slice(&bytes[..8]);
        k0.copy_from_slice(&bytes[8..]);
        Self {
            w0: u64::from_be_bytes(w0),
            k0: u64::from_be_bytes(k0),
        }
    }

    /// Serialises the key to 16 bytes in big-endian order (`w0` first).
    pub fn to_bytes(self) -> [u8; 16] {
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&self.w0.to_be_bytes());
        out[8..].copy_from_slice(&self.k0.to_be_bytes());
        out
    }
}

impl Default for Key128 {
    fn default() -> Self {
        Self::new(0, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_round_trips_through_bytes() {
        let key = Key128::new(0x0123_4567_89ab_cdef, 0xfedc_ba98_7654_3210);
        assert_eq!(Key128::from_bytes(key.to_bytes()), key);
    }

    #[test]
    fn key_accessors_return_halves() {
        let key = Key128::new(1, 2);
        assert_eq!(key.w0(), 1);
        assert_eq!(key.k0(), 2);
    }
}
