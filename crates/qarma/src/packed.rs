//! Packed-nibble fast path: every QARMA-64 layer computed directly on the
//! packed 64-bit state with SWAR bit-twiddling, never materialising the
//! `[u8; 16]` cell array.
//!
//! Two observations make this work:
//!
//! * **Cell permutations are rotation sums.** A nibble permutation moves
//!   cell `perm[d]` to cell `d`; in the packed big-endian layout that is a
//!   rotation of the whole word by `4·(perm[d] − d)` bits. Grouping
//!   destinations by rotation distance turns τ, τ⁻¹ and the tweak
//!   permutation h into ~10 `rotate ∧ mask` terms ORed together — pure ALU
//!   work, no tables (an earlier table-driven variant at 16 KiB per layer
//!   won microbenchmarks but lost end-to-end: real workloads evicted the
//!   tables between PAC computations).
//! * **MixColumns is row rotation.** With cells packed row-major, moving
//!   every cell down one row *within its column* is `rotate_left(16)` on the
//!   whole word, and `circ(0, ρ¹, ρ², ρ¹)` becomes three word rotations,
//!   each followed by a SWAR per-nibble rotate: ~12 ALU operations for the
//!   entire matrix.
//!
//! The ω LFSR clocks all 16 nibbles SWAR-style and keeps only the seven
//! cells the schedule actually clocks. SubCells is nibble-wise but
//! byte-local, so it stays a single 256-byte lane table — small enough to
//! live permanently in cache. Everything is built at compile time from the
//! same published constants as the cell-based reference; the differential
//! suite in `tests/packed_differential.rs` pins the two paths against each
//! other.

#[cfg(test)]
use crate::constants::H_INV;
use crate::constants::{H, LFSR_CELLS, SIGMA0, SIGMA1, SIGMA2, SIGMA2_INV, TAU, TAU_INV};

// ---- nibble permutations as rotation masks ----

/// Compiles a cell permutation (`out[d] = in[perm[d]]`) into 16 masks, one
/// per possible word-rotation distance: `masks[r]` selects the destination
/// nibbles whose source sits `4·r` bits to the right (cyclically). Applying
/// the permutation is then `⋁ᵣ rotate_left(x, 4r) ∧ masks[r]`; the loop in
/// [`apply_perm`] unrolls and the all-zero masks vanish at compile time.
const fn perm_rot_masks(perm: &[usize; 16]) -> [u64; 16] {
    let mut masks = [0u64; 16];
    let mut d = 0;
    while d < 16 {
        let rot = (16 + perm[d] - d) % 16;
        masks[rot] |= 0xFu64 << (4 * (15 - d));
        d += 1;
    }
    masks
}

/// τ (the MIDORI ShuffleCells) as rotation masks.
const TAU_MASKS: [u64; 16] = perm_rot_masks(&TAU);
/// τ⁻¹ as rotation masks.
const TAU_INV_MASKS: [u64; 16] = perm_rot_masks(&TAU_INV);
/// The tweak permutation h as rotation masks.
const H_MASKS: [u64; 16] = perm_rot_masks(&H);
/// h⁻¹ as rotation masks (test-only; see [`tweak_bwd`]).
#[cfg(test)]
const H_INV_MASKS: [u64; 16] = perm_rot_masks(&H_INV);

#[inline(always)]
fn apply_perm(masks: &[u64; 16], x: u64) -> u64 {
    let mut out = 0u64;
    let mut r = 0;
    while r < 16 {
        out |= x.rotate_left((4 * r) as u32) & masks[r];
        r += 1;
    }
    out
}

// ---- MixColumns ----

/// Every-nibble masks for the SWAR rotates: `N1 * k` repeats the nibble `k`
/// in all 16 lanes.
const N1: u64 = 0x1111_1111_1111_1111;
const N3: u64 = N1 * 0x7; // low three bits of every nibble
const NE: u64 = N1 * 0xE; // high three bits of every nibble

/// ρ¹ on every nibble simultaneously.
#[inline(always)]
fn rho1(x: u64) -> u64 {
    ((x << 1) & NE) | ((x >> 3) & N1)
}

/// ρ² on every nibble simultaneously.
#[inline(always)]
fn rho2(x: u64) -> u64 {
    ((x << 2) & (N1 * 0xC)) | ((x >> 2) & (N1 * 0x3))
}

/// The involutory MixColumns `M = circ(0, ρ¹, ρ², ρ¹)`.
///
/// Cells are packed row-major, so `rotate_left(16·k)` places the cell `k`
/// rows below (same column, wrapping) at every position — the circulant
/// reduces to three word rotations and three SWAR nibble-rotates.
#[inline(always)]
fn mix_swar(x: u64) -> u64 {
    rho1(x.rotate_left(16)) ^ rho2(x.rotate_left(32)) ^ rho1(x.rotate_left(48))
}

// ---- the fused linear layers the cipher consumes ----

/// Forward-round linear layer: M∘τ, applied to `state ⊕ tweakey`.
#[inline(always)]
pub(crate) fn mt(x: u64) -> u64 {
    mix_swar(apply_perm(&TAU_MASKS, x))
}

/// Backward-round linear layer: τ⁻¹∘M, applied after inverse SubCells.
#[inline(always)]
pub(crate) fn tinv_m(x: u64) -> u64 {
    apply_perm(&TAU_INV_MASKS, mix_swar(x))
}

/// The fused reflector centre τ⁻¹∘M∘τ (the key addition commutes out:
/// `τ⁻¹(M(τ(s)) ⊕ k) = τ⁻¹(M(τ(s))) ⊕ τ⁻¹(k)`, so the schedule stores the
/// τ⁻¹-permuted reflector key instead).
#[inline(always)]
pub(crate) fn reflector(x: u64) -> u64 {
    apply_perm(&TAU_INV_MASKS, mix_swar(apply_perm(&TAU_MASKS, x)))
}

// ---- tweak schedule ----

/// Mask selecting the seven cells the ω LFSR clocks.
const fn lfsr_cell_mask() -> u64 {
    let mut mask = 0u64;
    let mut i = 0;
    while i < LFSR_CELLS.len() {
        mask |= 0xFu64 << (4 * (15 - LFSR_CELLS[i]));
        i += 1;
    }
    mask
}

const LFSR_MASK: u64 = lfsr_cell_mask();

/// One forward tweak update: permute by h, then clock
/// `ω(b3b2b1b0) = (b0⊕b1, b3, b2, b1)` on the LFSR cells. The LFSR runs
/// SWAR on all 16 nibbles and the mask keeps only the seven real ones.
#[inline(always)]
pub(crate) fn tweak_fwd(x: u64) -> u64 {
    let p = apply_perm(&H_MASKS, x);
    let b0 = p & N1;
    let b1 = (p >> 1) & N1;
    let clocked = ((b0 ^ b1) << 3) | ((p >> 1) & N3);
    (clocked & LFSR_MASK) | (p & !LFSR_MASK)
}

/// One backward tweak update (inverse of [`tweak_fwd`]). The hot path never
/// consumes it — backward rounds replay the forward tweak sequence in
/// reverse — but the inversion invariant is still worth pinning in tests.
#[cfg(test)]
pub(crate) fn tweak_bwd(x: u64) -> u64 {
    // ω⁻¹(y3y2y1y0) = (y2, y1, y0, y3⊕y0): the low three output bits are the
    // high three input bits, and b0 = y3 ⊕ y0.
    let y0 = x & N1;
    let y3 = (x >> 3) & N1;
    let unclocked = ((x << 1) & NE) | (y3 ^ y0);
    let cells = (unclocked & LFSR_MASK) | (x & !LFSR_MASK);
    apply_perm(&H_INV_MASKS, cells)
}

// ---- SubCells ----

/// Lifts a 16-entry nibble S-box to a 256-entry byte table (both nibbles of
/// the byte substituted independently).
const fn sbox_bytes(sbox: &[u8; 16]) -> [u8; 256] {
    let mut tab = [0u8; 256];
    let mut b = 0;
    while b < 256 {
        tab[b] = (sbox[b >> 4] << 4) | sbox[b & 0xF];
        b += 1;
    }
    tab
}

/// σ0 lifted to bytes (an involution).
pub(crate) static SIGMA0_BYTES: [u8; 256] = sbox_bytes(&SIGMA0);
/// σ1 lifted to bytes (an involution).
pub(crate) static SIGMA1_BYTES: [u8; 256] = sbox_bytes(&SIGMA1);
/// σ2 lifted to bytes.
pub(crate) static SIGMA2_BYTES: [u8; 256] = sbox_bytes(&SIGMA2);
/// σ2⁻¹ lifted to bytes.
pub(crate) static SIGMA2_INV_BYTES: [u8; 256] = sbox_bytes(&SIGMA2_INV);

/// Applies a byte-lifted S-box to every lane of the packed state.
#[inline(always)]
pub(crate) fn sub_bytes(x: u64, sbox: &[u8; 256]) -> u64 {
    let b = x.to_le_bytes();
    u64::from_le_bytes([
        sbox[b[0] as usize],
        sbox[b[1] as usize],
        sbox[b[2] as usize],
        sbox[b[3] as usize],
        sbox[b[4] as usize],
        sbox[b[5] as usize],
        sbox[b[6] as usize],
        sbox[b[7] as usize],
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells::{from_cells, mix_columns, permute, sub_cells, to_cells};
    use crate::tweak::{backward_update, forward_update};

    /// A spread of packed states touching every lane and nibble pattern.
    fn samples() -> impl Iterator<Item = u64> {
        (0..64)
            .map(|b| 1u64 << b)
            .chain([
                0,
                u64::MAX,
                0x0123_4567_89ab_cdef,
                0xfb62_3599_da6e_8127,
                0x477d_469d_ec0b_8762,
                0xdead_beef_f00d_cafe,
            ])
            .chain((0..256).map(|i| 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i + 1)))
    }

    #[test]
    fn perm_masks_implement_the_permutations() {
        for x in samples() {
            for (masks, perm) in [
                (&TAU_MASKS, &TAU),
                (&TAU_INV_MASKS, &TAU_INV),
                (&H_MASKS, &H),
                (&H_INV_MASKS, &H_INV),
            ] {
                let expect = from_cells(&permute(&to_cells(x), perm));
                assert_eq!(apply_perm(masks, x), expect, "x = {x:#018x}");
            }
        }
    }

    #[test]
    fn mix_swar_matches_cell_reference() {
        for x in samples() {
            let expect = from_cells(&mix_columns(&to_cells(x)));
            assert_eq!(mix_swar(x), expect, "x = {x:#018x}");
            // M is an involution.
            assert_eq!(mix_swar(mix_swar(x)), x, "x = {x:#018x}");
        }
    }

    #[test]
    fn mt_matches_cell_reference() {
        for x in samples() {
            let expect = from_cells(&mix_columns(&permute(&to_cells(x), &TAU)));
            assert_eq!(mt(x), expect, "x = {x:#018x}");
        }
    }

    #[test]
    fn tinv_m_matches_cell_reference() {
        for x in samples() {
            let expect = from_cells(&permute(&mix_columns(&to_cells(x)), &TAU_INV));
            assert_eq!(tinv_m(x), expect, "x = {x:#018x}");
        }
    }

    #[test]
    fn reflector_matches_cell_reference() {
        for x in samples() {
            let expect = from_cells(&permute(
                &mix_columns(&permute(&to_cells(x), &TAU)),
                &TAU_INV,
            ));
            assert_eq!(reflector(x), expect, "x = {x:#018x}");
        }
    }

    #[test]
    fn tweak_updates_match_tweak_schedule() {
        for x in samples() {
            assert_eq!(tweak_fwd(x), forward_update(x), "x = {x:#018x}");
            assert_eq!(tweak_bwd(x), backward_update(x), "x = {x:#018x}");
            assert_eq!(tweak_bwd(tweak_fwd(x)), x);
        }
    }

    #[test]
    fn byte_sboxes_match_nibble_sboxes() {
        for (bytes, nibbles) in [
            (&SIGMA0_BYTES, &SIGMA0),
            (&SIGMA1_BYTES, &SIGMA1),
            (&SIGMA2_BYTES, &SIGMA2),
            (&SIGMA2_INV_BYTES, &SIGMA2_INV),
        ] {
            for x in samples() {
                let expect = from_cells(&sub_cells(&to_cells(x), nibbles));
                assert_eq!(sub_bytes(x, bytes), expect, "x = {x:#018x}");
            }
        }
    }
}
