//! The injection engine: prepared targets, single-stepped runs, classified
//! outcomes.

use crate::plan::{FaultKind, InjectionPlan};
use pacstack_aarch64::kernel::{SignalDelivery, SIGRETURN_SYSCALL};
use pacstack_aarch64::{Cpu, Fault, Instruction, LinkError, Reg, RunStatus};
use pacstack_compiler::{lower, Module, Scheme};
use pacstack_pauth::PaKey;
use pacstack_qarma::Key128;
use pacstack_telemetry as telemetry;
use std::cell::RefCell;
use std::fmt;

thread_local! {
    /// Per-thread scratch CPU reused across trials. Restoring the base
    /// snapshot with `clone_from` copies into the scratch's existing
    /// allocations; cloning afresh per trial would map and unmap the ~3 MiB
    /// of memory segments every time, which dominated campaign wall time.
    static SCRATCH: RefCell<Option<Cpu>> = const { RefCell::new(None) };
}

/// A protection configuration under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Target {
    /// Row label in the coverage matrix.
    pub label: &'static str,
    /// The instrumentation scheme to lower the module under.
    pub scheme: Scheme,
    /// Whether to enable ARMv8.6-A FPAC (fault inside `aut*`).
    pub fpac: bool,
}

/// The four configurations the `repro faults` matrix compares. Under FPAC
/// the masking that hides intermediate authentication tokens is unnecessary
/// (the paper's §5.2 discussion), so the FPAC row uses PACStack-nomask.
pub const TARGETS: [Target; 4] = [
    Target {
        label: "unprotected",
        scheme: Scheme::Baseline,
        fpac: false,
    },
    Target {
        label: "PACStack",
        scheme: Scheme::PacStack,
        fpac: false,
    },
    Target {
        label: "PACStack-nomask",
        scheme: Scheme::PacStackNomask,
        fpac: false,
    },
    Target {
        label: "PACStack+FPAC",
        scheme: Scheme::PacStackNomask,
        fpac: true,
    },
];

/// How one injected trial ended. Every trial ends in exactly one of these.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrialOutcome {
    /// The simulated process died with a [`Fault`] — the corruption was
    /// *detected* (the paper's desired failure mode).
    DetectedCrash(Fault),
    /// The process exited normally but with the wrong exit code or output —
    /// undetected corruption, the dangerous quadrant.
    SilentCorruption,
    /// The process produced exactly the reference exit code and output —
    /// the flip was architecturally masked.
    Masked,
    /// The process exceeded its instruction budget.
    Hang,
}

impl TrialOutcome {
    /// Short label for rendering.
    pub fn label(self) -> &'static str {
        match self {
            TrialOutcome::DetectedCrash(_) => "detected",
            TrialOutcome::SilentCorruption => "silent",
            TrialOutcome::Masked => "masked",
            TrialOutcome::Hang => "hang",
        }
    }
}

impl fmt::Display for TrialOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrialOutcome::DetectedCrash(fault) => write!(f, "detected ({fault})"),
            other => f.write_str(other.label()),
        }
    }
}

/// Why a target could not be prepared (distinct from trial outcomes:
/// preparation failures mean the *harness* is misconfigured).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChaosError {
    /// The lowered program did not link.
    Link(LinkError),
    /// The uninjected reference run did not exit cleanly.
    Reference(Fault),
}

impl fmt::Display for ChaosError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChaosError::Link(e) => write!(f, "target program does not link: {e}"),
            ChaosError::Reference(fault) => {
                write!(f, "reference run did not exit cleanly: {fault}")
            }
        }
    }
}

impl std::error::Error for ChaosError {}

impl From<LinkError> for ChaosError {
    fn from(e: LinkError) -> Self {
        ChaosError::Link(e)
    }
}

/// Golden behaviour of the uninjected program, plus the retire-index
/// windows where return-address state is live in registers.
#[derive(Debug, Clone)]
pub struct Reference {
    /// Exit code of the clean run.
    pub exit_code: u64,
    /// `svc #1` emissions of the clean run.
    pub output: Vec<u64>,
    /// Retired instructions of the clean run.
    pub instructions: u64,
    /// Retire indices about to execute a PA instruction, call or return —
    /// the prologue/epilogue windows plans bias injections toward.
    pub windows: Vec<u64>,
}

/// A target compiled, seeded and profiled, ready for injected trials.
/// Trials restore the base CPU into a per-thread scratch with `clone_from`,
/// so the per-trial snapshot cost is a straight memory copy.
#[derive(Debug, Clone)]
pub struct PreparedTarget {
    /// The configuration this was prepared for.
    pub target: Target,
    /// Golden behaviour and injection windows.
    pub reference: Reference,
    base: Cpu,
    handler: u64,
    budget: u64,
}

/// Name of the signal handler the engine appends to every lowered program.
const SIG_HANDLER: &str = "chaos_sig_handler";

/// Whether the upcoming instruction opens a prologue/epilogue window:
/// pointer-auth activity, a call, or a return.
fn is_window(insn: Instruction) -> bool {
    insn.is_pointer_auth()
        || matches!(
            insn,
            Instruction::Bl(_) | Instruction::Blr(_) | Instruction::Ret
        )
}

/// Lowers `module` under the target's scheme, appends the chaos signal
/// handler, seeds the PA keys, and records the reference run.
///
/// # Errors
///
/// [`ChaosError::Link`] if the program does not assemble;
/// [`ChaosError::Reference`] if the clean run faults, times out, or stops
/// on an unexpected syscall.
pub fn prepare(target: Target, module: &Module, seed: u64) -> Result<PreparedTarget, ChaosError> {
    let mut program = lower(module, target.scheme);
    // The handler a spurious signal lands in: immediately requests
    // sigreturn, so an *uncorrupted* signal round-trip is behaviour-
    // preserving and any deviation is attributable to the injection.
    program.function(SIG_HANDLER, vec![Instruction::Svc(SIGRETURN_SYSCALL)]);

    let mut base = Cpu::try_with_seed(program, seed)?;
    if target.fpac {
        base.enable_fpac();
    }
    let handler = base
        .symbol(SIG_HANDLER)
        .ok_or(Fault::NoSuchSymbol)
        .map_err(ChaosError::Reference)?;

    // Reference run on a scratch clone, collecting windows as we go.
    let mut cpu = base.clone();
    let mut windows = Vec::new();
    const REFERENCE_CEILING: u64 = 4_000_000;
    let reference = loop {
        if cpu.instructions() >= REFERENCE_CEILING {
            return Err(ChaosError::Reference(Fault::Timeout));
        }
        if let Some(insn) = cpu.instruction_at(cpu.pc()) {
            if is_window(insn) {
                windows.push(cpu.instructions());
            }
        }
        match cpu.step() {
            Ok(None) => {}
            Ok(Some(RunStatus::Exited(exit_code))) => {
                break Reference {
                    exit_code,
                    output: cpu.output().to_vec(),
                    instructions: cpu.instructions(),
                    windows,
                };
            }
            // The clean program must not raise syscalls the engine would
            // have to interpret; that would make classification ambiguous.
            Ok(Some(RunStatus::Syscall(_))) => {
                return Err(ChaosError::Reference(Fault::SigreturnViolation));
            }
            Err(fault) => return Err(ChaosError::Reference(fault)),
        }
    };

    // Budget: generous multiple of the clean run, so only genuine
    // divergence (e.g. a flipped loop counter) classifies as Hang.
    let budget = reference.instructions.saturating_mul(4) + 4096;
    Ok(PreparedTarget {
        target,
        reference,
        base,
        handler,
        budget,
    })
}

/// Applies one perturbation to the live CPU. Returns a fault only for
/// signal delivery that the kernel model itself rejects (e.g. the frame
/// write faulted because SP was already corrupted).
fn apply(
    cpu: &mut Cpu,
    signals: &mut SignalDelivery,
    handler: u64,
    kind: FaultKind,
) -> Result<(), Fault> {
    match kind {
        FaultKind::RegFlip { reg, mask } => {
            let v = cpu.reg(reg);
            cpu.set_reg(reg, v ^ mask);
        }
        FaultKind::StackFlip { slot, mask } => {
            let addr = cpu.reg(Reg::Sp).wrapping_add(8 * slot);
            // A flip landing on unmapped memory latches nothing.
            if let Ok(v) = cpu.mem().read_u64(addr) {
                let _ = cpu.mem_mut().write_u64(addr, v ^ mask);
            }
        }
        FaultKind::KeyFlip {
            key_index,
            mask_w0,
            mask_k0,
        } => {
            let key = PaKey::ALL[key_index % PaKey::ALL.len()];
            let mut keys = cpu.keys().clone();
            let old = keys.key(key);
            keys.set_key(key, Key128::new(old.w0() ^ mask_w0, old.k0() ^ mask_k0));
            cpu.corrupt_keys(keys);
        }
        FaultKind::KeyZero => {
            let mut keys = cpu.keys().clone();
            for key in PaKey::ALL {
                keys.set_key(key, Key128::new(0, 0));
            }
            cpu.corrupt_keys(keys);
        }
        FaultKind::InsnSkip => {
            let pc = cpu.pc();
            cpu.set_pc(pc.wrapping_add(4));
        }
        FaultKind::Signal => {
            signals.deliver(cpu, handler)?;
        }
    }
    Ok(())
}

impl PreparedTarget {
    /// Runs one injected trial to its classified outcome. Never panics:
    /// every termination path maps to a [`TrialOutcome`].
    ///
    /// The trial executes on this thread's scratch CPU, restored to the
    /// prepared base snapshot first — `clone_from` makes the restore an
    /// in-place copy, so consecutive trials do no allocator work. Restores
    /// have full `Clone` semantics, so outcomes are independent of whatever
    /// trial (of whatever target) previously used the scratch.
    pub fn run_plan(&self, plan: &InjectionPlan) -> TrialOutcome {
        SCRATCH.with(|slot| {
            let mut slot = slot.borrow_mut();
            let cpu = match slot.as_mut() {
                Some(cpu) => {
                    cpu.clone_from(&self.base);
                    cpu
                }
                None => slot.insert(self.base.clone()),
            };
            self.run_plan_on(cpu, plan)
        })
    }

    /// The trial loop, plus end-of-trial telemetry: outcome counts, fault
    /// attribution, the cycle-latency histogram, and the CPU's own counter
    /// deltas — all in the simulated-cycle domain, so campaign telemetry is
    /// as thread-count-independent as the outcomes themselves.
    fn run_plan_on(&self, cpu: &mut Cpu, plan: &InjectionPlan) -> TrialOutcome {
        let outcome = self.trial_loop(cpu, plan);
        if telemetry::enabled() {
            telemetry::counter(
                &format!("chaos_trials_total{{outcome=\"{}\"}}", outcome.label()),
                1,
            );
            if let TrialOutcome::DetectedCrash(fault) = outcome {
                telemetry::counter(
                    &format!("chaos_detected_total{{fault=\"{}\"}}", fault.label()),
                    1,
                );
            }
            telemetry::observe_cycles("chaos_trial_cycles", cpu.cycles());
            cpu.publish_telemetry();
        }
        outcome
    }

    fn trial_loop(&self, cpu: &mut Cpu, plan: &InjectionPlan) -> TrialOutcome {
        let mut signals = SignalDelivery::new();
        let mut pending = plan.injections.as_slice();

        loop {
            // Fire every injection scheduled at or before this retire index
            // (triggers past the actual exit simply never fire — the
            // process was gone before the glitch landed).
            while let Some(injection) = pending.first() {
                if injection.at > cpu.instructions() {
                    break;
                }
                pending = &pending[1..];
                if telemetry::enabled() {
                    // `windows` is in retire order, so occupancy is a
                    // binary search: did the glitch land on a retire index
                    // where return-address state was live?
                    let occupied = self.reference.windows.binary_search(&injection.at).is_ok();
                    telemetry::counter(
                        if occupied {
                            "chaos_injections_total{window=\"in\"}"
                        } else {
                            "chaos_injections_total{window=\"out\"}"
                        },
                        1,
                    );
                }
                if let Err(fault) = apply(cpu, &mut signals, self.handler, injection.kind) {
                    return TrialOutcome::DetectedCrash(fault);
                }
            }

            if cpu.instructions() >= self.budget {
                return TrialOutcome::Hang;
            }

            match cpu.step() {
                Ok(None) => {}
                Ok(Some(RunStatus::Exited(code))) => {
                    let reference = &self.reference;
                    return if code == reference.exit_code && cpu.output() == reference.output {
                        TrialOutcome::Masked
                    } else {
                        TrialOutcome::SilentCorruption
                    };
                }
                Ok(Some(RunStatus::Syscall(SIGRETURN_SYSCALL))) => {
                    if let Err(fault) = signals.sigreturn(cpu) {
                        return TrialOutcome::DetectedCrash(fault);
                    }
                }
                // No other syscall exists in the lowered image; control
                // flow wild enough to reach one is corruption.
                Ok(Some(RunStatus::Syscall(_))) => return TrialOutcome::SilentCorruption,
                Err(fault) => return TrialOutcome::DetectedCrash(fault),
            }
        }
    }

    /// The per-trial instruction budget Hang is judged against.
    pub fn budget(&self) -> u64 {
        self.budget
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use crate::campaign::chaos_module;
    use crate::plan::InjectionPlan;

    fn prepared(label: &str) -> PreparedTarget {
        let target = *TARGETS.iter().find(|t| t.label == label).unwrap();
        prepare(target, &chaos_module(), 0xFEED).unwrap()
    }

    #[test]
    fn empty_plan_is_masked_for_every_target() {
        for target in TARGETS {
            let p = prepare(target, &chaos_module(), 0xFEED).unwrap();
            assert_eq!(
                p.run_plan(&InjectionPlan::default()),
                TrialOutcome::Masked,
                "{}",
                target.label
            );
        }
    }

    #[test]
    fn reference_runs_collect_windows() {
        let p = prepared("PACStack");
        assert!(p.reference.instructions > 0);
        assert!(!p.reference.windows.is_empty());
        assert!(p.budget() > p.reference.instructions);
    }

    #[test]
    fn uninjected_signal_round_trip_is_masked() {
        // A spurious signal with an honest sigreturn preserves behaviour.
        for target in TARGETS {
            let p = prepare(target, &chaos_module(), 0xFEED).unwrap();
            let mid = p.reference.instructions / 2;
            let plan = InjectionPlan::single(mid, FaultKind::Signal);
            assert_eq!(p.run_plan(&plan), TrialOutcome::Masked, "{}", target.label);
        }
    }

    #[test]
    fn key_zero_mid_chain_is_detected_under_pacstack() {
        let p = prepared("PACStack");
        // Zero the keys in the middle of the run, while the chain is live.
        let mid = p.reference.instructions / 2;
        let plan = InjectionPlan::single(mid, FaultKind::KeyZero);
        match p.run_plan(&plan) {
            TrialOutcome::DetectedCrash(fault) => {
                assert!(matches!(fault, Fault::KeyFault { .. }), "got {fault}");
            }
            other => panic!("expected a detected crash, got {other}"),
        }
    }

    #[test]
    fn key_flip_is_never_masked_by_the_pac_memo_cache() {
        // Regression for the PAC memo cache: corrupting a key register
        // mid-run must invalidate every cached MAC, so the next `aut*`
        // recomputes under the glitched keys and attributes the failure to
        // them. A stale cache hit would instead report Masked — the cache
        // silently bridging a hardware fault.
        let p = prepared("PACStack");
        let mid = p.reference.instructions / 2;
        let plan = InjectionPlan::single(
            mid,
            FaultKind::KeyFlip {
                key_index: 0, // IA — the key PACStack signs with
                mask_w0: 1,
                mask_k0: 0,
            },
        );
        match p.run_plan(&plan) {
            TrialOutcome::DetectedCrash(fault) => {
                assert!(matches!(fault, Fault::KeyFault { .. }), "got {fault}");
            }
            other => panic!("expected a detected KeyFault crash, got {other}"),
        }
    }

    #[test]
    fn cr_flip_faults_under_pacstack() {
        let p = prepared("PACStack");
        // Flip a low bit of CR right at a window: the chained MAC check
        // must eventually fail and the corrupted pointer fault on use.
        let at = p.reference.windows[p.reference.windows.len() / 2];
        let plan = InjectionPlan::single(
            at,
            FaultKind::RegFlip {
                reg: Reg::CR,
                mask: 1 << 3,
            },
        );
        assert!(matches!(p.run_plan(&plan), TrialOutcome::DetectedCrash(_)));
    }

    #[test]
    fn outcome_display_is_stable() {
        assert_eq!(TrialOutcome::Masked.to_string(), "masked");
        assert_eq!(TrialOutcome::Hang.to_string(), "hang");
        assert_eq!(TrialOutcome::SilentCorruption.to_string(), "silent");
        assert!(TrialOutcome::DetectedCrash(Fault::Timeout)
            .to_string()
            .starts_with("detected"));
    }
}
