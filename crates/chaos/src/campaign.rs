//! Campaigns: deterministic fan-out of injected trials over
//! `pacstack-exec`, aggregated into a detection-coverage matrix.

use crate::engine::{prepare, ChaosError, PreparedTarget, TrialOutcome, TARGETS};
use crate::plan::{generate_kind, generate_trigger, FaultClass, InjectionPlan};
use pacstack_compiler::{FuncDef, Module, Stmt};
use pacstack_exec as exec;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Outcome tallies for one (target, fault-class) matrix cell.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CellCounts {
    /// Trials ending in `DetectedCrash`.
    pub detected: u64,
    /// Trials ending in `SilentCorruption`.
    pub silent: u64,
    /// Trials ending in `Masked`.
    pub masked: u64,
    /// Trials ending in `Hang`.
    pub hung: u64,
}

impl CellCounts {
    /// Total classified trials in the cell.
    pub fn total(&self) -> u64 {
        self.detected + self.silent + self.masked + self.hung
    }

    /// Fraction of *observable* corruptions that were detected:
    /// `detected / (detected + silent)`. Masked flips had no effect to
    /// detect; hangs are counted separately. `1.0` when nothing was
    /// observable.
    pub fn detection_rate(&self) -> f64 {
        let observable = self.detected + self.silent;
        if observable == 0 {
            1.0
        } else {
            self.detected as f64 / observable as f64
        }
    }

    fn record(&mut self, outcome: TrialOutcome) {
        match outcome {
            TrialOutcome::DetectedCrash(_) => self.detected += 1,
            TrialOutcome::SilentCorruption => self.silent += 1,
            TrialOutcome::Masked => self.masked += 1,
            TrialOutcome::Hang => self.hung += 1,
        }
    }
}

/// One row-group of the coverage matrix: a target's tallies per class.
#[derive(Debug, Clone)]
pub struct TargetCoverage {
    /// The target's matrix label.
    pub label: &'static str,
    /// One cell per [`FaultClass::ALL`] entry, in that order.
    pub cells: [CellCounts; FaultClass::ALL.len()],
    /// Host-process panics caught during the campaign — must stay 0; any
    /// other value means a simulator path still aborts instead of
    /// returning a structured error.
    pub host_panics: u64,
}

impl TargetCoverage {
    /// The cell for a class.
    pub fn cell(&self, class: FaultClass) -> &CellCounts {
        // FaultClass::ALL is the indexing order by construction.
        let idx = FaultClass::ALL
            .iter()
            .position(|c| *c == class)
            .unwrap_or(0);
        &self.cells[idx]
    }

    /// Fraction of **all** injected return-address flips (CR, LR and
    /// stack words) that were detected — the quantity the paper's
    /// argument is about. Unlike the per-cell [`CellCounts::detection_rate`],
    /// the denominator here includes masked trials: PACStack's improvement
    /// comes precisely from making otherwise-dead chain state
    /// authenticated, so a flip that is benignly masked elsewhere (e.g.
    /// CR under the unprotected build, where X28 is never read) faults
    /// under PACStack.
    pub fn return_address_detection_rate(&self) -> f64 {
        let mut agg = CellCounts::default();
        for class in FaultClass::ALL {
            if class.is_return_address() {
                let c = self.cell(class);
                agg.detected += c.detected;
                agg.silent += c.silent;
                agg.masked += c.masked;
                agg.hung += c.hung;
            }
        }
        if agg.total() == 0 {
            1.0
        } else {
            agg.detected as f64 / agg.total() as f64
        }
    }
}

/// The module every campaign injects into: call-heavy, with loops, an
/// indirect call, data-dependent branching, stack traffic and observable
/// output — enough live return-address state for flips to matter, small
/// enough that thousands of trials stay fast.
pub fn chaos_module() -> Module {
    let mut m = Module::new();
    m.push(FuncDef::new(
        "main",
        vec![
            Stmt::Compute(3),
            Stmt::Loop(4, vec![Stmt::Call("work".into()), Stmt::MemAccess(1)]),
            Stmt::CallIndirect("leaf".into()),
            Stmt::Emit,
            Stmt::Return,
        ],
    ));
    m.push(FuncDef::new(
        "work",
        vec![
            Stmt::MemAccess(2),
            Stmt::Call("inner".into()),
            Stmt::IfEven(vec![Stmt::Compute(2)], vec![Stmt::Compute(5)]),
            Stmt::Return,
        ],
    ));
    m.push(FuncDef::new(
        "inner",
        vec![Stmt::Compute(2), Stmt::Call("leaf".into()), Stmt::Return],
    ));
    m.push(FuncDef::new("leaf", vec![Stmt::Compute(1), Stmt::Return]));
    m
}

/// Runs the single-injection coverage campaign: for every target in
/// [`TARGETS`], `trials_per_class` trials of each [`FaultClass`], fanned
/// out over the `pacstack-exec` worker pool. Trial `i` injects class
/// `ALL[i % 8]`, so per-class tallies are exact and the matrix is
/// byte-identical at any `--jobs` count.
///
/// Each trial body is wrapped in `catch_unwind`; a host panic is counted
/// (and must never happen — the acceptance gate asserts 0).
///
/// # Errors
///
/// Propagates [`ChaosError`] if any target fails to prepare.
pub fn coverage(
    module: &Module,
    trials_per_class: u64,
    seed: u64,
) -> Result<Vec<TargetCoverage>, ChaosError> {
    let classes = FaultClass::ALL.len() as u64;
    let trials = trials_per_class * classes;
    let mut report = Vec::with_capacity(TARGETS.len());

    for (t_idx, target) in TARGETS.iter().enumerate() {
        let prepared = prepare(*target, module, seed ^ 0xC4A0_5000)?;
        let stream = seed.wrapping_add(0x9E37 * (t_idx as u64 + 1));
        let run = exec::run_trials(stream, trials, |i, rng| {
            let class = FaultClass::ALL[(i % classes) as usize];
            let reference = &prepared.reference;
            let at = generate_trigger(rng, &reference.windows, reference.instructions);
            let kind = generate_kind(class, rng);
            let plan = InjectionPlan::single(at, kind);
            catch_unwind(AssertUnwindSafe(|| prepared.run_plan(&plan))).ok()
        });
        exec::stats::record(format!("faults/{}", target.label), run.stats);

        let mut cells = [CellCounts::default(); FaultClass::ALL.len()];
        let mut host_panics = 0u64;
        for (i, outcome) in run.results.into_iter().enumerate() {
            match outcome {
                Some(outcome) => cells[i % classes as usize].record(outcome),
                None => host_panics += 1,
            }
        }
        report.push(TargetCoverage {
            label: target.label,
            cells,
            host_panics,
        });
    }
    Ok(report)
}

/// Convenience wrapper: run [`coverage`] against [`chaos_module`].
///
/// # Errors
///
/// Propagates [`ChaosError`] from [`coverage`].
pub fn coverage_default(
    trials_per_class: u64,
    seed: u64,
) -> Result<Vec<TargetCoverage>, ChaosError> {
    coverage(&chaos_module(), trials_per_class, seed)
}

/// Prepares every target for `module`, for callers that drive trials
/// themselves (property tests).
///
/// # Errors
///
/// Propagates [`ChaosError`] if any target fails to prepare.
pub fn prepare_all(module: &Module, seed: u64) -> Result<Vec<PreparedTarget>, ChaosError> {
    TARGETS.iter().map(|t| prepare(*t, module, seed)).collect()
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    #[test]
    fn chaos_module_checks_and_runs_under_all_schemes() {
        let m = chaos_module();
        m.check().unwrap();
        let report = coverage(&m, 2, 7).unwrap();
        assert_eq!(report.len(), TARGETS.len());
        for target in &report {
            assert_eq!(target.host_panics, 0);
            let total: u64 = target.cells.iter().map(CellCounts::total).sum();
            assert_eq!(total, 2 * FaultClass::ALL.len() as u64);
        }
    }

    #[test]
    fn detection_rate_edge_cases() {
        let empty = CellCounts::default();
        assert_eq!(empty.detection_rate(), 1.0);
        let all_detected = CellCounts {
            detected: 5,
            ..CellCounts::default()
        };
        assert_eq!(all_detected.detection_rate(), 1.0);
        let half = CellCounts {
            detected: 3,
            silent: 3,
            ..CellCounts::default()
        };
        assert!((half.detection_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn coverage_is_deterministic_for_a_fixed_seed() {
        let m = chaos_module();
        let a = coverage(&m, 2, 99).unwrap();
        let b = coverage(&m, 2, 99).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.cells, y.cells);
        }
    }
}
