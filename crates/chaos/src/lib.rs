//! Deterministic fault injection for the PACStack reproduction.
//!
//! PACStack's security argument is a claim about *failure behaviour*: a
//! corrupted `aret` must produce a non-canonical pointer that faults when
//! used, converting silent control-flow hijack into a process crash that
//! costs the adversary one guess per process lifetime (paper §4.3, §6.2).
//! The attack modules exercise faults they deliberately construct; this
//! crate perturbs the substrate itself and *measures* detection, turning
//! "crash on corruption" from an assumption into a coverage result.
//!
//! The engine interposes on the simulated CPU at instruction-retire
//! granularity ([`pacstack_aarch64::Cpu::step`]) and injects architectural
//! faults from a seeded [`plan::InjectionPlan`]:
//!
//! * single/multi-bit flips in the chain register (CR/X28), the link
//!   register (LR/X30) and SP;
//! * bit flips in stack-memory words;
//! * PA key-register corruption and mid-run key zeroing;
//! * instruction skips (a classic glitch primitive);
//! * spurious asynchronous signal delivery at adversarially chosen points,
//!   prologue/epilogue windows included.
//!
//! Every trial terminates in exactly one [`engine::TrialOutcome`] —
//! `DetectedCrash(Fault)`, `SilentCorruption`, `Masked` or `Hang` — and
//! never unwinds the host process: the execution pipeline underneath
//! (`aarch64`, `pauth`) reports structured errors end to end.
//!
//! Campaigns ([`campaign::coverage`]) fan out over `pacstack-exec`, so the
//! detection-coverage matrix is byte-identical at any `--jobs` count.
//!
//! # Examples
//!
//! ```
//! use pacstack_chaos::{campaign, engine};
//!
//! let module = campaign::chaos_module();
//! let report = campaign::coverage(&module, 4, 0xC4A05).unwrap();
//! assert_eq!(report.len(), engine::TARGETS.len());
//! // Every trial classified, none lost to host panics.
//! for target in &report {
//!     assert_eq!(target.host_panics, 0);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod campaign;
pub mod engine;
pub mod plan;

pub use campaign::{coverage, CellCounts, TargetCoverage};
pub use engine::{ChaosError, PreparedTarget, Target, TrialOutcome, TARGETS};
pub use plan::{FaultClass, FaultKind, Injection, InjectionPlan};
