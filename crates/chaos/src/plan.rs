//! Seeded injection plans: what to corrupt, and when.
//!
//! A plan is pure data derived from a [`TrialRng`] stream, so the same
//! `(experiment, trial-index)` pair always yields the same plan regardless
//! of scheduling — the foundation of campaign determinism.

use pacstack_aarch64::Reg;
use pacstack_exec::TrialRng;
use rand::Rng;
use std::fmt;

/// The eight fault classes a campaign cycles through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultClass {
    /// Bit flips in the chain register CR/X28 — PACStack's `aret`.
    RegCr,
    /// Bit flips in the link register LR/X30.
    RegLr,
    /// Bit flips in the stack pointer.
    RegSp,
    /// Bit flips in a stack-memory word near SP (spilled state, including
    /// saved return addresses).
    StackWord,
    /// Bit flips in one PA key register.
    KeyCorrupt,
    /// Mid-run zeroing of all five PA key registers.
    KeyZero,
    /// Skipping one instruction (a classic voltage-glitch primitive).
    InsnSkip,
    /// Spurious asynchronous signal delivery.
    Signal,
}

impl FaultClass {
    /// All classes, in campaign round-robin order.
    pub const ALL: [FaultClass; 8] = [
        FaultClass::RegCr,
        FaultClass::RegLr,
        FaultClass::RegSp,
        FaultClass::StackWord,
        FaultClass::KeyCorrupt,
        FaultClass::KeyZero,
        FaultClass::InsnSkip,
        FaultClass::Signal,
    ];

    /// Short column label for the coverage matrix.
    pub fn label(self) -> &'static str {
        match self {
            FaultClass::RegCr => "cr-flip",
            FaultClass::RegLr => "lr-flip",
            FaultClass::RegSp => "sp-flip",
            FaultClass::StackWord => "stack-flip",
            FaultClass::KeyCorrupt => "key-flip",
            FaultClass::KeyZero => "key-zero",
            FaultClass::InsnSkip => "insn-skip",
            FaultClass::Signal => "signal",
        }
    }

    /// Whether this class corrupts return-address state (the flips the
    /// paper's detection argument is about): CR, LR, or spilled stack
    /// words.
    pub fn is_return_address(self) -> bool {
        matches!(
            self,
            FaultClass::RegCr | FaultClass::RegLr | FaultClass::StackWord
        )
    }
}

impl fmt::Display for FaultClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One concrete architectural perturbation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// XOR `mask` into a general-purpose register (or SP).
    RegFlip {
        /// The register to corrupt.
        reg: Reg,
        /// Bits to flip (1–3 bits set).
        mask: u64,
    },
    /// XOR `mask` into the stack word at `SP + 8 * slot`. A flip landing
    /// on unmapped memory is a no-op (nothing latched).
    StackFlip {
        /// Word index above the current stack pointer.
        slot: u64,
        /// Bits to flip (1–3 bits set).
        mask: u64,
    },
    /// XOR masks into one PA key register's two 64-bit halves.
    KeyFlip {
        /// Index into [`pacstack_pauth::PaKey::ALL`].
        key_index: usize,
        /// Bits to flip in the whitening half.
        mask_w0: u64,
        /// Bits to flip in the core half.
        mask_k0: u64,
    },
    /// Zero all five PA key registers.
    KeyZero,
    /// Skip the next instruction without executing it.
    InsnSkip,
    /// Deliver an asynchronous signal whose handler immediately
    /// `sigreturn`s.
    Signal,
}

/// A perturbation scheduled at a retired-instruction index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Injection {
    /// Inject when `cpu.instructions()` first reaches this value.
    pub at: u64,
    /// What to perturb.
    pub kind: FaultKind,
}

/// A full trial plan: one or more injections, sorted by trigger index.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct InjectionPlan {
    /// The scheduled perturbations, non-decreasing in `at`.
    pub injections: Vec<Injection>,
}

impl InjectionPlan {
    /// A plan with a single injection.
    pub fn single(at: u64, kind: FaultKind) -> Self {
        Self {
            injections: vec![Injection { at, kind }],
        }
    }
}

/// A random 64-bit mask with 1–3 bits set.
fn bit_mask(rng: &mut TrialRng) -> u64 {
    let bits = 1 + rng.gen_range(0..3u32);
    let mut mask = 0u64;
    for _ in 0..bits {
        mask |= 1u64 << rng.gen_range(0..64u32);
    }
    mask
}

/// Draws a concrete [`FaultKind`] for a class.
pub fn generate_kind(class: FaultClass, rng: &mut TrialRng) -> FaultKind {
    match class {
        FaultClass::RegCr => FaultKind::RegFlip {
            reg: Reg::CR,
            mask: bit_mask(rng),
        },
        FaultClass::RegLr => FaultKind::RegFlip {
            reg: Reg::LR,
            mask: bit_mask(rng),
        },
        FaultClass::RegSp => FaultKind::RegFlip {
            reg: Reg::Sp,
            mask: bit_mask(rng),
        },
        FaultClass::StackWord => FaultKind::StackFlip {
            slot: u64::from(rng.gen_range(0..32u32)),
            mask: bit_mask(rng),
        },
        FaultClass::KeyCorrupt => FaultKind::KeyFlip {
            key_index: rng.gen_range(0..5u32) as usize,
            mask_w0: bit_mask(rng),
            mask_k0: bit_mask(rng),
        },
        FaultClass::KeyZero => FaultKind::KeyZero,
        FaultClass::InsnSkip => FaultKind::InsnSkip,
        FaultClass::Signal => FaultKind::Signal,
    }
}

/// Draws a trigger index in `[0, horizon)`, biased 50% toward the
/// prologue/epilogue `windows` collected from the reference run — the
/// adversarially interesting retire points where return-address state is
/// live in registers.
pub fn generate_trigger(rng: &mut TrialRng, windows: &[u64], horizon: u64) -> u64 {
    let horizon = horizon.max(1);
    if !windows.is_empty() && rng.gen_range(0..2u32) == 0 {
        windows[rng.gen_range(0..windows.len() as u32) as usize]
    } else {
        u64::from(rng.gen_range(0..horizon.min(u64::from(u32::MAX)) as u32))
    }
}

/// Draws a multi-injection plan: 1–`max_injections` perturbations across
/// random classes, each with its own (window-biased) trigger point.
pub fn generate(
    rng: &mut TrialRng,
    max_injections: usize,
    windows: &[u64],
    horizon: u64,
) -> InjectionPlan {
    let count = 1 + rng.gen_range(0..max_injections.max(1) as u32) as usize;
    let mut injections: Vec<Injection> = (0..count)
        .map(|_| {
            let class = FaultClass::ALL[rng.gen_range(0..8u32) as usize];
            Injection {
                at: generate_trigger(rng, windows, horizon),
                kind: generate_kind(class, rng),
            }
        })
        .collect();
    injections.sort_by_key(|i| i.at);
    InjectionPlan { injections }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    #[test]
    fn masks_have_one_to_three_bits() {
        let mut rng = TrialRng::new(1, 1);
        for _ in 0..200 {
            let m = bit_mask(&mut rng);
            let ones = m.count_ones();
            assert!((1..=3).contains(&ones), "{ones} bits in {m:#x}");
        }
    }

    #[test]
    fn plans_are_pure_functions_of_the_stream() {
        let windows = [3, 9, 27];
        let a = generate(&mut TrialRng::new(5, 77), 4, &windows, 1000);
        let b = generate(&mut TrialRng::new(5, 77), 4, &windows, 1000);
        assert_eq!(a, b);
    }

    #[test]
    fn plans_are_sorted_by_trigger() {
        let mut rng = TrialRng::new(2, 3);
        for i in 0..50 {
            let plan = generate(&mut rng, 5, &[10, 20], 500);
            let ats: Vec<u64> = plan.injections.iter().map(|i| i.at).collect();
            let mut sorted = ats.clone();
            sorted.sort_unstable();
            assert_eq!(ats, sorted, "plan {i} unsorted");
            assert!(!plan.injections.is_empty());
        }
    }

    #[test]
    fn every_class_generates_its_kind() {
        let mut rng = TrialRng::new(9, 9);
        for class in FaultClass::ALL {
            let kind = generate_kind(class, &mut rng);
            match class {
                FaultClass::RegCr | FaultClass::RegLr | FaultClass::RegSp => {
                    assert!(matches!(kind, FaultKind::RegFlip { .. }));
                }
                FaultClass::StackWord => assert!(matches!(kind, FaultKind::StackFlip { .. })),
                FaultClass::KeyCorrupt => assert!(matches!(kind, FaultKind::KeyFlip { .. })),
                FaultClass::KeyZero => assert_eq!(kind, FaultKind::KeyZero),
                FaultClass::InsnSkip => assert_eq!(kind, FaultKind::InsnSkip),
                FaultClass::Signal => assert_eq!(kind, FaultKind::Signal),
            }
        }
    }

    #[test]
    fn return_address_classes_are_the_cr_lr_stack_set() {
        let ra: Vec<FaultClass> = FaultClass::ALL
            .into_iter()
            .filter(|c| c.is_return_address())
            .collect();
        assert_eq!(
            ra,
            vec![FaultClass::RegCr, FaultClass::RegLr, FaultClass::StackWord]
        );
    }
}
