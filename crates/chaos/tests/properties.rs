//! The chaos engine's core robustness property: *every* randomly generated
//! injection plan, against every target, yields exactly one classified
//! outcome and never unwinds the host process.
//!
//! The trial body runs under `catch_unwind`; a host panic fails the
//! property outright — the execution pipeline must report structured
//! errors ([`Fault`], [`LinkError`]) end to end, no matter what the plan
//! corrupts.

use pacstack_chaos::{campaign, engine, plan};
use pacstack_exec::TrialRng;
use proptest::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::OnceLock;

/// Targets are prepared once — preparation is deterministic, and sharing
/// them keeps the property's 256 cases fast.
fn prepared_targets() -> &'static [engine::PreparedTarget] {
    static TARGETS: OnceLock<Vec<engine::PreparedTarget>> = OnceLock::new();
    TARGETS.get_or_init(|| {
        campaign::prepare_all(&campaign::chaos_module(), 0x0BAD_C0DE)
            .expect("chaos module prepares under every target")
    })
}

proptest! {
    /// Any multi-injection plan from any RNG stream classifies cleanly on
    /// every target.
    #[test]
    fn every_plan_yields_exactly_one_outcome(stream in any::<u64>(), index in 0u64..1_000_000) {
        let mut rng = TrialRng::new(stream, index);
        for prepared in prepared_targets() {
            let windows = &prepared.reference.windows;
            let horizon = prepared.reference.instructions;
            let p = plan::generate(&mut rng, 4, windows, horizon);
            let outcome = catch_unwind(AssertUnwindSafe(|| prepared.run_plan(&p)));
            match outcome {
                Ok(_classified) => {} // exactly one TrialOutcome, by type
                Err(_) => prop_assert!(
                    false,
                    "host panic on target {} with plan {:?}",
                    prepared.target.label,
                    p
                ),
            }
        }
    }

    /// The engine itself is deterministic: the same plan on the same
    /// prepared target always classifies identically.
    #[test]
    fn run_plan_is_deterministic(stream in any::<u64>(), index in 0u64..1_000_000) {
        let mut rng = TrialRng::new(stream, index);
        for prepared in prepared_targets() {
            let p = plan::generate(
                &mut rng,
                3,
                &prepared.reference.windows,
                prepared.reference.instructions,
            );
            prop_assert_eq!(prepared.run_plan(&p), prepared.run_plan(&p));
        }
    }
}
