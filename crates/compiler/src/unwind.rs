//! Stack unwinding over the simulator (paper §5 and §9.1).
//!
//! Two unwinders, mirroring the paper's compatibility story:
//!
//! * [`backtrace`] walks the conventional frame-pointer chain and reads the
//!   plain return addresses from the frame records. PACStack leaves those
//!   records untouched precisely so that debuggers "can backtrace the
//!   call-stack without knowledge of PACStack" (§5) — but nothing here is
//!   authenticated, so a tampered record yields a wrong (not detected)
//!   backtrace.
//! * [`validated_backtrace`] is the §9.1 proposal: a libunwind-style walker
//!   that re-verifies each ACS chain link frame by frame, detecting any
//!   corruption along the way. It needs the (kernel-held) PA keys and the
//!   live chain register, so only a trusted runtime can use it.

use crate::frame;
use pacstack_aarch64::{Cpu, Reg};
use pacstack_acs::Masking;
use pacstack_pauth::PaKey;

/// Maximum frames walked before assuming a corrupt (cyclic) FP chain.
pub const MAX_FRAMES: usize = 4096;

/// Walks the frame-pointer chain, returning the saved return addresses from
/// innermost to outermost — what a debugger does.
///
/// Stops at the first null frame pointer, unreadable record, or after
/// [`MAX_FRAMES`] records (a corrupt chain).
pub fn backtrace(cpu: &Cpu) -> Vec<u64> {
    let mut rets = Vec::new();
    let mut fp = cpu.reg(Reg::FP);
    while fp != 0 && rets.len() < MAX_FRAMES {
        let Ok(lr) = cpu.mem().read_u64(fp + 8) else {
            break;
        };
        let Ok(next_fp) = cpu.mem().read_u64(fp) else {
            break;
        };
        rets.push(lr);
        fp = next_fp;
    }
    rets
}

/// A broken link found by the validating unwinder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnwindViolation {
    /// Index of the frame (0 = innermost) whose link failed to verify.
    pub frame_index: usize,
    /// The chain value that failed authentication.
    pub bad_link: u64,
}

impl std::fmt::Display for UnwindViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ACS chain broken at frame {} (link {:#018x})",
            self.frame_index, self.bad_link
        )
    }
}

impl std::error::Error for UnwindViolation {}

/// Walks and *verifies* the ACS chain of a PACStack-instrumented process
/// suspended inside an instrumented function, returning the authenticated
/// return addresses from innermost to outermost (paper §9.1).
///
/// `masking` must match the scheme the binary was compiled with
/// ([`Masking::Masked`] for full PACStack, [`Masking::Unmasked`] for
/// PACStack-nomask).
///
/// # Errors
///
/// Returns [`UnwindViolation`] at the first chain link that fails
/// authentication — exactly the detection a validating `longjmp` or C++
/// exception unwinder would perform before transferring control.
pub fn validated_backtrace(cpu: &Cpu, masking: Masking) -> Result<Vec<u64>, UnwindViolation> {
    let pa = *cpu.pa();
    let keys = cpu.keys().clone();
    let mut rets = Vec::new();
    let mut cr = cpu.reg(Reg::CR);
    let mut fp = cpu.reg(Reg::FP);
    while fp != 0 && rets.len() < MAX_FRAMES {
        // The chain slot sits at the frame base, FP_SLOT bytes below the
        // frame record the frame pointer addresses.
        let chain_addr = fp.wrapping_sub(frame::FP_SLOT as u64);
        let Ok(prev) = cpu.mem().read_u64(chain_addr + frame::CHAIN_SLOT as u64) else {
            break;
        };
        let lr = match masking {
            Masking::Masked => cr ^ pa.pac(&keys, PaKey::Ia, 0, prev),
            Masking::Unmasked => cr,
        };
        match pa.aut(&keys, PaKey::Ia, lr, prev) {
            Ok(ret) => rets.push(ret),
            Err(_) => {
                return Err(UnwindViolation {
                    frame_index: rets.len(),
                    bad_link: prev,
                })
            }
        }
        cr = prev;
        let Ok(next_fp) = cpu.mem().read_u64(fp) else {
            break;
        };
        fp = next_fp;
    }
    Ok(rets)
}

/// Unwinds the *live* CPU state frame by frame with chain verification
/// until the frame whose record sits at `target_fp` becomes the active
/// frame — the §9.1 proposal applied to C++-style exception propagation:
/// every intermediate link is authenticated before control is transferred,
/// so an exception can never be made to "unwind through" a corrupted
/// frame.
///
/// On success the CPU is left as if every intermediate function had
/// returned normally: `PC` at the saved return address of the last popped
/// frame, `SP`/`FP`/`CR` restored. The caller (a modelled language
/// runtime) then transfers control into the handler.
///
/// # Errors
///
/// Returns [`UnwindViolation`] and leaves the CPU untouched if any link on
/// the way to `target_fp` fails to verify, or if `target_fp` is not on the
/// frame-pointer chain.
pub fn unwind_to_frame(
    cpu: &mut Cpu,
    masking: Masking,
    target_fp: u64,
) -> Result<(), UnwindViolation> {
    let pa = *cpu.pa();
    let keys = cpu.keys().clone();

    // Dry-run first: validate every link up to the target without mutating.
    let mut cr = cpu.reg(Reg::CR);
    let mut fp = cpu.reg(Reg::FP);
    let mut frames = Vec::new(); // (ret, prev_chain, fp_of_frame)
    let mut found = fp == target_fp;
    while fp != 0 && frames.len() < MAX_FRAMES && !found {
        let chain_addr = fp.wrapping_sub(frame::FP_SLOT as u64);
        let Ok(prev) = cpu.mem().read_u64(chain_addr + frame::CHAIN_SLOT as u64) else {
            return Err(UnwindViolation {
                frame_index: frames.len(),
                bad_link: fp,
            });
        };
        let lr = match masking {
            Masking::Masked => cr ^ pa.pac(&keys, PaKey::Ia, 0, prev),
            Masking::Unmasked => cr,
        };
        let ret = pa
            .aut(&keys, PaKey::Ia, lr, prev)
            .map_err(|_| UnwindViolation {
                frame_index: frames.len(),
                bad_link: prev,
            })?;
        let Ok(next_fp) = cpu.mem().read_u64(fp) else {
            return Err(UnwindViolation {
                frame_index: frames.len(),
                bad_link: fp,
            });
        };
        frames.push((ret, prev, fp));
        cr = prev;
        fp = next_fp;
        found = fp == target_fp;
    }
    if !found {
        return Err(UnwindViolation {
            frame_index: frames.len(),
            bad_link: target_fp,
        });
    }

    // Commit: pop the validated frames on the real state.
    let Some(&(last_ret, last_prev, last_fp)) = frames.last() else {
        return Ok(()); // already at the target frame
    };
    cpu.set_reg(Reg::CR, last_prev);
    cpu.set_reg(Reg::FP, target_fp);
    // SP returns to just above the last popped frame's record area: the
    // frame base is FP_SLOT below the record, and the frame extends
    // frame-size bytes — the caller's SP equals the popped frame's base
    // plus its size, which the record's position encodes for our fixed
    // layouts: frame base = last_fp - FP_SLOT; caller SP = base + size.
    // The lowering's epilogues compute this via their immediates; the
    // runtime recovers it from the *target* frame's own base instead:
    let target_base = target_fp - frame::FP_SLOT as u64;
    cpu.set_reg(Reg::Sp, target_base);
    cpu.set_pc(last_ret);
    let _ = last_fp;
    Ok(())
}

/// The masking variant used by a scheme's lowering, if it is a PACStack
/// variant at all.
pub fn masking_of(scheme: crate::Scheme) -> Option<Masking> {
    match scheme {
        crate::Scheme::PacStack => Some(Masking::Masked),
        crate::Scheme::PacStackNomask => Some(Masking::Unmasked),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lower, FuncDef, Module, Scheme, Stmt};
    use pacstack_aarch64::RunStatus;

    fn suspended_cpu(scheme: Scheme) -> Cpu {
        let mut m = Module::new();
        m.push(FuncDef::new(
            "main",
            vec![Stmt::Call("level1".into()), Stmt::Return],
        ));
        m.push(FuncDef::new(
            "level1",
            vec![Stmt::Call("level2".into()), Stmt::Return],
        ));
        m.push(FuncDef::new(
            "level2",
            vec![
                Stmt::Checkpoint(60),
                Stmt::Call("noop".into()),
                Stmt::Return,
            ],
        ));
        m.push(FuncDef::new("noop", vec![Stmt::Compute(1), Stmt::Return]));
        let mut cpu = Cpu::with_seed(lower(&m, scheme), 17);
        let out = cpu.run(100_000).unwrap();
        assert_eq!(out.status, RunStatus::Syscall(60));
        cpu
    }

    #[test]
    fn debugger_backtrace_works_under_every_scheme() {
        for scheme in Scheme::ALL {
            let cpu = suspended_cpu(scheme);
            let rets = backtrace(&cpu);
            // Three frame records: level2's, level1's, main's.
            assert_eq!(rets.len(), 3, "{scheme}: {rets:x?}");
            // Each return address lies in the code segment (for PA schemes
            // the *record* holds the plain address — the compat claim).
            let strip = |x: u64| cpu.pa().strip(x);
            for ret in &rets {
                let plain = strip(*ret);
                assert!(
                    (0x40_0000..0x50_0000).contains(&plain),
                    "{scheme}: {ret:#x} not a code address"
                );
            }
        }
    }

    #[test]
    fn frame_records_hold_plain_addresses_under_pacstack() {
        // §5: PACStack does not modify the frame record.
        let cpu = suspended_cpu(Scheme::PacStack);
        for ret in backtrace(&cpu) {
            assert!(
                cpu.pa().layout().is_canonical(ret),
                "{ret:#x} carries a PAC"
            );
        }
    }

    #[test]
    fn validated_backtrace_matches_plain_backtrace() {
        for (scheme, masking) in [
            (Scheme::PacStack, Masking::Masked),
            (Scheme::PacStackNomask, Masking::Unmasked),
        ] {
            let cpu = suspended_cpu(scheme);
            let plain = backtrace(&cpu);
            let validated = validated_backtrace(&cpu, masking).expect("intact chain verifies");
            assert_eq!(validated, plain, "{scheme}");
        }
    }

    #[test]
    fn validated_backtrace_detects_what_debugger_backtrace_misses() {
        let mut cpu = suspended_cpu(Scheme::PacStack);
        // Corrupt the *chain slot* of the middle frame: the frame records
        // (and hence the debugger view) are untouched.
        let fp = cpu.reg(Reg::FP);
        let level1_record = cpu.mem().read_u64(fp).unwrap();
        let level1_chain = level1_record - frame::FP_SLOT as u64 + frame::CHAIN_SLOT as u64;
        let original = cpu.mem().read_u64(level1_chain).unwrap();
        cpu.mem_mut()
            .write_u64(level1_chain, original ^ 0x8)
            .unwrap();

        assert_eq!(backtrace(&cpu).len(), 3, "debugger view unchanged");
        let violation = validated_backtrace(&cpu, Masking::Masked).unwrap_err();
        assert_eq!(violation.frame_index, 1);
    }

    #[test]
    fn tampered_frame_record_fools_debugger_but_not_the_chain() {
        let mut cpu = suspended_cpu(Scheme::PacStack);
        let fp = cpu.reg(Reg::FP);
        cpu.mem_mut().write_u64(fp + 8, 0x41_4141).unwrap(); // fake LR in record
        let plain = backtrace(&cpu);
        assert_eq!(plain[0], 0x41_4141, "debugger believes the forgery");
        // The validated walk ignores frame-record LRs entirely.
        let validated = validated_backtrace(&cpu, Masking::Masked).unwrap();
        assert_ne!(validated[0], 0x41_4141);
    }

    #[test]
    fn masking_of_maps_schemes() {
        assert_eq!(masking_of(Scheme::PacStack), Some(Masking::Masked));
        assert_eq!(masking_of(Scheme::PacStackNomask), Some(Masking::Unmasked));
        assert_eq!(masking_of(Scheme::Baseline), None);
    }
}
