//! A miniature compiler that plays the role of the paper's modified LLVM.
//!
//! PACStack is implemented in the paper as changes to LLVM's
//! `AArch64FrameLowering` (emit the chain-update sequences during
//! `FrameSetup`/`FrameDestroy`) and `AArch64RegisterInfo` (reserve X28 as
//! the chain register). This crate reproduces that structure over a small
//! call-graph IR:
//!
//! * [`Module`]/[`FuncDef`]/[`Stmt`] — the IR: functions whose bodies mix
//!   compute, memory traffic, direct/indirect/tail calls and loops. Enough
//!   to express the synthetic SPEC-profile workloads and every control-flow
//!   corner case the evaluation needs.
//! * [`Scheme`] — the six return-address protections the paper measures
//!   against each other: no protection, stack canaries
//!   (`-mstack-protector-strong`), PA-based return-address signing
//!   (`-mbranch-protection`), LLVM ShadowCallStack, PACStack without
//!   masking, and full PACStack.
//! * [`lower`] — frame lowering: emits each scheme's exact prologue and
//!   epilogue instruction sequences (paper Listings 1–3), applying the
//!   paper's leaf-function heuristic (leaf functions that spill neither LR
//!   nor CR are left uninstrumented).
//!
//! # Examples
//!
//! ```
//! use pacstack_compiler::{lower, FuncDef, Module, Scheme, Stmt};
//! use pacstack_aarch64::Cpu;
//!
//! let mut module = Module::new();
//! module.push(FuncDef::new("main", vec![Stmt::Call("work".into()), Stmt::Return]));
//! module.push(FuncDef::new("work", vec![Stmt::Compute(8), Stmt::Return]));
//!
//! let program = lower(&module, Scheme::PacStack);
//! let mut cpu = Cpu::with_seed(program, 0);
//! assert!(cpu.run(10_000).is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ir;
mod lower;
mod scheme;
pub mod unwind;

pub use ir::{FuncDef, Module, Stmt};
pub use lower::{
    frame, jmp_buf_addr, lower, lower_mixed, lower_mixed_with_options, lower_with_options,
    LowerOptions, CANARY, CANARY_FAIL_EXIT, JMP_BUF_BASE, JMP_BUF_SIZE,
};
pub use scheme::Scheme;
