//! The six return-address protection schemes the paper compares.

use std::fmt;

/// A return-address protection scheme, matching the paper's §7 evaluation
/// matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Scheme {
    /// No protection — the baseline every overhead is measured against.
    Baseline,
    /// `-mstack-protector-strong`: a stack canary checked before return.
    /// Weakest protection, cheapest instrumentation.
    StackProtector,
    /// `-mbranch-protection` (pac-ret): `paciasp`/`retaa` with `SP` as the
    /// modifier — vulnerable to reuse of signed return addresses across
    /// coinciding `SP` values (paper §2.2.1).
    PacRet,
    /// LLVM ShadowCallStack: return addresses duplicated on a shadow stack
    /// addressed through the reserved `X18` — secure only while the shadow
    /// stack's location stays secret.
    ShadowCallStack,
    /// PACStack without PAC masking (paper "PACStack-nomask").
    PacStackNomask,
    /// Full PACStack: chained MACs with masked authentication tokens.
    PacStack,
}

impl Scheme {
    /// All schemes in the order the paper's figures list them.
    pub const ALL: [Scheme; 6] = [
        Scheme::Baseline,
        Scheme::StackProtector,
        Scheme::PacRet,
        Scheme::ShadowCallStack,
        Scheme::PacStackNomask,
        Scheme::PacStack,
    ];

    /// Whether the scheme reserves a general-purpose register
    /// (`X18` for ShadowCallStack, `X28` for the PACStack variants).
    pub fn reserves_register(self) -> bool {
        matches!(
            self,
            Scheme::ShadowCallStack | Scheme::PacStackNomask | Scheme::PacStack
        )
    }

    /// Whether the scheme uses pointer-authentication instructions.
    pub fn uses_pointer_auth(self) -> bool {
        matches!(
            self,
            Scheme::PacRet | Scheme::PacStackNomask | Scheme::PacStack
        )
    }
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Scheme::Baseline => "baseline",
            Scheme::StackProtector => "-mstack-protector-strong",
            Scheme::PacRet => "-mbranch-protection",
            Scheme::ShadowCallStack => "ShadowCallStack",
            Scheme::PacStackNomask => "PACStack-nomask",
            Scheme::PacStack => "PACStack",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_lists_six_schemes() {
        assert_eq!(Scheme::ALL.len(), 6);
        assert_eq!(Scheme::ALL[0], Scheme::Baseline);
        assert_eq!(Scheme::ALL[5], Scheme::PacStack);
    }

    #[test]
    fn register_reservation_matches_paper() {
        assert!(Scheme::PacStack.reserves_register());
        assert!(Scheme::ShadowCallStack.reserves_register());
        assert!(!Scheme::PacRet.reserves_register());
        assert!(!Scheme::Baseline.reserves_register());
    }

    #[test]
    fn pa_usage_matches_paper() {
        assert!(Scheme::PacRet.uses_pointer_auth());
        assert!(Scheme::PacStack.uses_pointer_auth());
        assert!(!Scheme::ShadowCallStack.uses_pointer_auth());
        assert!(!Scheme::StackProtector.uses_pointer_auth());
    }

    #[test]
    fn display_uses_paper_names() {
        assert_eq!(Scheme::PacStackNomask.to_string(), "PACStack-nomask");
        assert_eq!(Scheme::PacRet.to_string(), "-mbranch-protection");
    }
}
