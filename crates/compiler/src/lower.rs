//! Frame lowering: IR → AArch64-subset programs, per protection scheme.
//!
//! The prologue/epilogue sequences are taken directly from the paper:
//! Listing 1 (`-mbranch-protection`), Listing 2 (PACStack-nomask, described
//! in §5), Listing 3 (PACStack with masking), plus LLVM's documented
//! ShadowCallStack and stack-protector sequences.

use crate::{FuncDef, Module, Scheme, Stmt};
use pacstack_aarch64::program::Op;
use pacstack_aarch64::{Instruction as I, Program, Reg};
use std::collections::HashMap;

/// Frame slot offsets (fixed across schemes so the attack harness can find
/// them):
///
/// ```text
/// [sp + 0]   chain-register spill (PACStack) / canary (stack protector)
/// [sp + 8]   local scratch slot (MemAccess)
/// [sp + 16]  saved FP          ┐ the conventional frame record
/// [sp + 24]  saved LR          ┘
/// [sp + 32+] loop counters
/// ```
pub mod frame {
    /// Offset of the spilled chain register (PACStack schemes).
    pub const CHAIN_SLOT: i64 = 0;
    /// Offset of the local scratch slot (the canary scheme swaps this with
    /// [`CANARY_SLOT`] so the canary sits between locals and the frame
    /// record).
    pub const LOCAL_SLOT: i64 = 8;
    /// Offset of the canary under `-mstack-protector-strong`.
    pub const CANARY_SLOT: i64 = 8;
    /// Offset of the local slot under `-mstack-protector-strong`.
    pub const SP_LOCAL_SLOT: i64 = 0;
    /// Offset of the saved frame pointer.
    pub const FP_SLOT: i64 = 16;
    /// Offset of the saved link register (the classic ROP target).
    pub const LR_SLOT: i64 = 24;
    /// Offset of the register-pressure spill slot used by schemes that
    /// reserve a general-purpose register (X18/X28) — the displaced value
    /// has to live somewhere.
    pub const PRESSURE_SLOT: i64 = 32;
    /// Offset of the first loop-counter slot.
    pub const LOOP_SLOTS: i64 = 40;
}

/// The canary value `-mstack-protector-strong` plants. A real deployment
/// draws it per-process; a constant preserves the cost profile and the
/// paper's point that canaries are the weakest of the measured protections.
pub const CANARY: u64 = 0x5A5A_C3C3_0F0F_A5A5;

/// Exit code of `__stack_chk_fail` (SIGABRT-style).
pub const CANARY_FAIL_EXIT: u64 = 134;

/// Base address of the static `jmp_buf` array in the data segment
/// (attacker-writable, like a real process's `jmp_buf`s).
pub const JMP_BUF_BASE: u64 = pacstack_aarch64::LAYOUT.data_base + 0x2000;

/// Size of one `jmp_buf` slot: resume/bound address, SP, CR, X18.
pub const JMP_BUF_SIZE: u64 = 32;

/// Address of static `jmp_buf` number `buf`.
pub fn jmp_buf_addr(buf: u16) -> u64 {
    JMP_BUF_BASE + u64::from(buf) * JMP_BUF_SIZE
}

/// Lowering options.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LowerOptions {
    /// Instrument leaf functions too (off by default — the paper's
    /// heuristic skips leaves that spill neither LR nor CR).
    pub instrument_leaves: bool,
}

/// Lowers a module under a scheme with default options.
///
/// # Panics
///
/// Panics if the module fails [`Module::check`] or contains `Return` /
/// `TailCall` inside a loop body.
pub fn lower(module: &Module, scheme: Scheme) -> Program {
    lower_with_options(module, scheme, LowerOptions::default())
}

/// Lowers a module under a scheme.
///
/// # Panics
///
/// Panics if the module fails [`Module::check`] or contains `Return` /
/// `TailCall` inside a loop body.
pub fn lower_with_options(module: &Module, scheme: Scheme, options: LowerOptions) -> Program {
    lower_mixed_with_options(module, scheme, &HashMap::new(), options)
}

/// Lowers a module with per-function scheme overrides — the paper's §9.2
/// interoperability scenario: a PACStack-protected application linking
/// against unprotected libraries, or the reverse.
///
/// Mixing is sound because every scheme's reserved state lives in
/// callee-saved registers (`X28` for PACStack, `X18` for ShadowCallStack):
/// uninstrumented functions preserve them by convention, so protection
/// resumes intact when control returns to instrumented code. What mixing
/// *costs* is coverage: returns from unprotected functions are fair game,
/// which the attack experiments quantify.
///
/// # Panics
///
/// Panics if the module fails [`Module::check`], contains `Return` /
/// `TailCall` inside a loop body, or an override names an unknown function.
pub fn lower_mixed(
    module: &Module,
    default: Scheme,
    overrides: &HashMap<String, Scheme>,
) -> Program {
    lower_mixed_with_options(module, default, overrides, LowerOptions::default())
}

/// [`lower_mixed`] with explicit [`LowerOptions`].
///
/// # Panics
///
/// As for [`lower_mixed`].
pub fn lower_mixed_with_options(
    module: &Module,
    default: Scheme,
    overrides: &HashMap<String, Scheme>,
    options: LowerOptions,
) -> Program {
    if let Err(msg) = module.check() {
        panic!("invalid module: {msg}");
    }
    for name in overrides.keys() {
        assert!(
            module.get(name).is_some(),
            "override names unknown function {name:?}"
        );
    }
    let mut program = Program::new();
    let mut any_canary = false;
    for func in module.functions() {
        let scheme = overrides.get(func.name()).copied().unwrap_or(default);
        any_canary |= scheme == Scheme::StackProtector;
        let ops = FunctionLowering::new(func, scheme, options).lower();
        program.function_ops(func.name(), ops);
    }
    if any_canary {
        program.function(
            "__stack_chk_fail",
            vec![I::MovImm(Reg::X0, CANARY_FAIL_EXIT), I::Svc(0)],
        );
    }
    program
}

struct FunctionLowering<'a> {
    func: &'a FuncDef,
    scheme: Scheme,
    instrumented: bool,
    frame_size: i64,
    ops: Vec<Op>,
    label_counter: usize,
    loop_depth: i64,
}

impl<'a> FunctionLowering<'a> {
    fn new(func: &'a FuncDef, scheme: Scheme, options: LowerOptions) -> Self {
        let instrumented = !func.is_leaf() || options.instrument_leaves;
        let loop_slots = Self::max_loop_depth(func.body()) as i64;
        // 40 fixed bytes + loop counters, 16-byte aligned.
        let frame_size = (40 + loop_slots * 8 + 15) & !15;
        Self {
            func,
            scheme,
            instrumented,
            frame_size,
            ops: Vec::new(),
            label_counter: 0,
            loop_depth: 0,
        }
    }

    fn max_loop_depth(body: &[Stmt]) -> u32 {
        body.iter()
            .map(|stmt| match stmt {
                Stmt::Loop(_, inner) => 1 + Self::max_loop_depth(inner),
                Stmt::TryCatch { body, handler, .. } => {
                    Self::max_loop_depth(body).max(Self::max_loop_depth(handler))
                }
                Stmt::IfEven(a, b) => Self::max_loop_depth(a).max(Self::max_loop_depth(b)),
                _ => 0,
            })
            .max()
            .unwrap_or(0)
    }

    fn fresh_label(&mut self, stem: &str) -> String {
        self.label_counter += 1;
        format!("{stem}_{}", self.label_counter)
    }

    fn emit(&mut self, insn: I) {
        self.ops.push(Op::I(insn));
    }

    /// Whether the function needs any frame at all.
    fn needs_frame(&self) -> bool {
        self.instrumented || self.func.uses_frame() || Self::max_loop_depth(self.func.body()) > 0
    }

    /// Register-pressure model: reserving X18/X28 displaces one value that
    /// would otherwise stay in a register across this activation (the paper
    /// attributes the PACStack-vs-pac-ret gap to exactly this, §7.1).
    fn pressure_spill(&mut self) {
        if self.scheme.reserves_register() && self.instrumented {
            self.emit(I::Str(Reg::X19, Reg::Sp, frame::PRESSURE_SLOT));
        }
    }

    fn pressure_reload(&mut self) {
        if self.scheme.reserves_register() && self.instrumented {
            self.emit(I::Ldr(Reg::X19, Reg::Sp, frame::PRESSURE_SLOT));
        }
    }

    fn prologue_with_pressure(&mut self) {
        self.prologue();
        self.pressure_spill();
    }

    fn prologue(&mut self) {
        if !self.needs_frame() {
            return;
        }
        let frame = self.frame_size;
        if !self.instrumented {
            // Uninstrumented leaf: allocate locals only.
            self.emit(I::AddImm(Reg::Sp, Reg::Sp, -frame));
            if self.scheme == Scheme::StackProtector && self.func.uses_frame() {
                self.emit(I::MovImm(Reg::X9, CANARY));
                self.emit(I::Str(Reg::X9, Reg::Sp, frame::CANARY_SLOT));
            }
            return;
        }
        match self.scheme {
            Scheme::Baseline => {
                self.emit(I::AddImm(Reg::Sp, Reg::Sp, -frame));
                self.emit(I::Stp(Reg::FP, Reg::LR, Reg::Sp, frame::FP_SLOT));
                self.emit(I::AddImm(Reg::FP, Reg::Sp, frame::FP_SLOT));
            }
            Scheme::StackProtector => {
                self.emit(I::AddImm(Reg::Sp, Reg::Sp, -frame));
                self.emit(I::Stp(Reg::FP, Reg::LR, Reg::Sp, frame::FP_SLOT));
                self.emit(I::AddImm(Reg::FP, Reg::Sp, frame::FP_SLOT));
                // -strong only plants canaries in functions with local
                // buffers -- the reason it is the cheapest scheme measured.
                if self.func.uses_frame() {
                    self.emit(I::MovImm(Reg::X9, CANARY));
                    self.emit(I::Str(Reg::X9, Reg::Sp, frame::CANARY_SLOT));
                }
            }
            Scheme::PacRet => {
                // Listing 1: sign LR before spilling it.
                self.emit(I::Paciasp);
                self.emit(I::AddImm(Reg::Sp, Reg::Sp, -frame));
                self.emit(I::Stp(Reg::FP, Reg::LR, Reg::Sp, frame::FP_SLOT));
                self.emit(I::AddImm(Reg::FP, Reg::Sp, frame::FP_SLOT));
            }
            Scheme::ShadowCallStack => {
                // str lr, [x18], #8 — push the return address to the shadow
                // stack, then the conventional spill (kept for unwinders).
                self.emit(I::StrPost(Reg::LR, Reg::SCS, 8));
                self.emit(I::AddImm(Reg::Sp, Reg::Sp, -frame));
                self.emit(I::Stp(Reg::FP, Reg::LR, Reg::Sp, frame::FP_SLOT));
                self.emit(I::AddImm(Reg::FP, Reg::Sp, frame::FP_SLOT));
            }
            Scheme::PacStackNomask => {
                // §5 / Listing 2: spill aret_{i-1}, keep a plain frame
                // record, chain-sign LR, move it to CR.
                self.emit(I::StrPre(Reg::CR, Reg::Sp, -frame));
                self.emit(I::Stp(Reg::FP, Reg::LR, Reg::Sp, frame::FP_SLOT));
                self.emit(I::AddImm(Reg::FP, Reg::Sp, frame::FP_SLOT));
                self.emit(I::Pacia(Reg::LR, Reg::CR));
                self.emit(I::Mov(Reg::CR, Reg::LR));
            }
            Scheme::PacStack => {
                // Listing 3: as above plus mask generation and application.
                self.emit(I::StrPre(Reg::CR, Reg::Sp, -frame));
                self.emit(I::Stp(Reg::FP, Reg::LR, Reg::Sp, frame::FP_SLOT));
                self.emit(I::AddImm(Reg::FP, Reg::Sp, frame::FP_SLOT));
                self.emit(I::Mov(Reg::X15, Reg::Xzr));
                self.emit(I::Pacia(Reg::LR, Reg::CR));
                self.emit(I::Pacia(Reg::X15, Reg::CR));
                self.emit(I::Eor(Reg::LR, Reg::LR, Reg::X15));
                self.emit(I::Mov(Reg::X15, Reg::Xzr));
                self.emit(I::Mov(Reg::CR, Reg::LR));
            }
        }
    }

    /// Emits the epilogue up to but excluding the return transfer, then the
    /// terminator: `Ret`/`Retaa` when `tail_target` is `None`, otherwise a
    /// `b` to the tail-called function (paper Listing 8).
    fn epilogue(&mut self, tail_target: Option<&str>) {
        self.pressure_reload();
        let frame = self.frame_size;
        if !self.needs_frame() {
            self.terminator(tail_target, false);
            return;
        }
        if !self.instrumented {
            if self.scheme == Scheme::StackProtector && self.func.uses_frame() {
                self.check_canary();
            }
            self.emit(I::AddImm(Reg::Sp, Reg::Sp, frame));
            self.terminator(tail_target, false);
            return;
        }
        match self.scheme {
            Scheme::Baseline => {
                self.emit(I::Ldp(Reg::FP, Reg::LR, Reg::Sp, frame::FP_SLOT));
                self.emit(I::AddImm(Reg::Sp, Reg::Sp, frame));
                self.terminator(tail_target, false);
            }
            Scheme::StackProtector => {
                if self.func.uses_frame() {
                    self.check_canary();
                }
                self.emit(I::Ldp(Reg::FP, Reg::LR, Reg::Sp, frame::FP_SLOT));
                self.emit(I::AddImm(Reg::Sp, Reg::Sp, frame));
                self.terminator(tail_target, false);
            }
            Scheme::PacRet => {
                self.emit(I::Ldp(Reg::FP, Reg::LR, Reg::Sp, frame::FP_SLOT));
                self.emit(I::AddImm(Reg::Sp, Reg::Sp, frame));
                self.terminator(tail_target, true);
            }
            Scheme::ShadowCallStack => {
                self.emit(I::Ldp(Reg::FP, Reg::LR, Reg::Sp, frame::FP_SLOT));
                self.emit(I::AddImm(Reg::Sp, Reg::Sp, frame));
                // ldr lr, [x18, #-8]! — the authoritative return address
                // comes from the shadow stack, overriding the stack copy.
                self.emit(I::LdrPre(Reg::LR, Reg::SCS, -8));
                self.terminator(tail_target, false);
            }
            Scheme::PacStackNomask => {
                self.emit(I::Mov(Reg::LR, Reg::CR));
                self.emit(I::Ldr(Reg::FP, Reg::Sp, frame::FP_SLOT));
                self.emit(I::LdrPost(Reg::CR, Reg::Sp, frame));
                self.emit(I::Autia(Reg::LR, Reg::CR));
                self.terminator(tail_target, false);
            }
            Scheme::PacStack => {
                self.emit(I::Mov(Reg::LR, Reg::CR));
                self.emit(I::Ldr(Reg::FP, Reg::Sp, frame::FP_SLOT));
                self.emit(I::LdrPost(Reg::CR, Reg::Sp, frame));
                self.emit(I::Mov(Reg::X15, Reg::Xzr));
                self.emit(I::Pacia(Reg::X15, Reg::CR));
                self.emit(I::Eor(Reg::LR, Reg::LR, Reg::X15));
                self.emit(I::Mov(Reg::X15, Reg::Xzr));
                self.emit(I::Autia(Reg::LR, Reg::CR));
                self.terminator(tail_target, false);
            }
        }
    }

    fn terminator(&mut self, tail_target: Option<&str>, pac_ret: bool) {
        match (tail_target, pac_ret) {
            (Some(target), true) => {
                // pac-ret tail call: authenticate, then branch.
                self.emit(I::Autiasp);
                self.ops.push(Op::TailCall(target.to_owned()));
            }
            (Some(target), false) => self.ops.push(Op::TailCall(target.to_owned())),
            (None, true) => self.emit(I::Retaa),
            (None, false) => self.emit(I::Ret),
        }
    }

    fn check_canary(&mut self) {
        let ok = self.fresh_label("canary_ok");
        self.emit(I::Ldr(Reg::X10, Reg::Sp, frame::CANARY_SLOT));
        self.emit(I::MovImm(Reg::X9, CANARY));
        self.emit(I::Cmp(Reg::X9, Reg::X10));
        self.ops
            .push(Op::JumpCond(pacstack_aarch64::Cond::Eq, ok.clone()));
        self.ops.push(Op::TailCall("__stack_chk_fail".to_owned()));
        self.ops.push(Op::Label(ok));
    }

    fn stmt(&mut self, stmt: &Stmt, is_last: bool) {
        match stmt {
            Stmt::Compute(n) => {
                for i in 0..*n {
                    if i % 2 == 0 {
                        self.emit(I::AddImm(Reg::X0, Reg::X0, 0x11 + i as i64));
                    } else {
                        self.emit(I::EorImm(Reg::X0, Reg::X0, 0x2400 + u64::from(i)));
                    }
                }
            }
            Stmt::MemAccess(n) => {
                let slot = if self.scheme == Scheme::StackProtector {
                    frame::SP_LOCAL_SLOT
                } else {
                    frame::LOCAL_SLOT
                };
                for _ in 0..*n {
                    self.emit(I::Str(Reg::X0, Reg::Sp, slot));
                    self.emit(I::Ldr(Reg::X0, Reg::Sp, slot));
                }
            }
            Stmt::Call(name) => self.ops.push(Op::Call(name.clone())),
            Stmt::CallIndirect(name) => {
                self.ops.push(Op::FnAddr(Reg::X9, name.clone()));
                self.emit(I::Blr(Reg::X9));
            }
            Stmt::TailCall(name) => {
                assert!(
                    is_last,
                    "TailCall must terminate the body in {}",
                    self.func.name()
                );
                let name = name.clone();
                self.epilogue(Some(&name));
            }
            Stmt::Loop(count, body) => {
                assert!(
                    *count > 0,
                    "Loop(0) would underflow the counter in {}; omit the loop instead",
                    self.func.name()
                );
                assert!(
                    !body
                        .iter()
                        .any(|s| matches!(s, Stmt::Return | Stmt::TailCall(_))),
                    "Return/TailCall inside a loop in {}",
                    self.func.name()
                );
                let slot = frame::LOOP_SLOTS + self.loop_depth * 8;
                self.loop_depth += 1;
                let head = self.fresh_label("loop");
                self.emit(I::MovImm(Reg::X9, u64::from(*count)));
                self.emit(I::Str(Reg::X9, Reg::Sp, slot));
                self.ops.push(Op::Label(head.clone()));
                for inner in body {
                    self.stmt(inner, false);
                }
                self.emit(I::Ldr(Reg::X9, Reg::Sp, slot));
                self.emit(I::AddImm(Reg::X9, Reg::X9, -1));
                self.emit(I::Str(Reg::X9, Reg::Sp, slot));
                self.ops.push(Op::JumpNonZero(Reg::X9, head));
                self.loop_depth -= 1;
            }
            Stmt::IfEven(then_body, else_body) => {
                assert!(
                    !then_body
                        .iter()
                        .chain(else_body)
                        .any(|s| matches!(s, Stmt::Return | Stmt::TailCall(_))),
                    "Return/TailCall inside IfEven in {}",
                    self.func.name()
                );
                let odd = self.fresh_label("odd");
                let done = self.fresh_label("ifdone");
                self.emit(I::AndImm(Reg::X9, Reg::X0, 1));
                self.ops.push(Op::JumpNonZero(Reg::X9, odd.clone()));
                for stmt in then_body {
                    self.stmt(stmt, false);
                }
                self.ops.push(Op::Jump(done.clone()));
                self.ops.push(Op::Label(odd));
                for stmt in else_body {
                    self.stmt(stmt, false);
                }
                self.ops.push(Op::Label(done));
            }
            Stmt::TryCatch { buf, body, handler } => self.try_catch(*buf, body, handler),
            Stmt::Throw { buf, value } => self.throw(*buf, *value),
            Stmt::Emit => self.emit(I::Svc(1)),
            Stmt::Sigreturn => self.emit(I::Svc(9)),
            Stmt::Checkpoint(imm) => {
                assert!(
                    *imm >= 10,
                    "checkpoint numbers below 10 collide with built-in syscalls"
                );
                self.emit(I::Svc(*imm));
            }
            Stmt::Return => {
                assert!(
                    is_last,
                    "Return must terminate the body in {}",
                    self.func.name()
                );
                self.epilogue(None);
            }
        }
    }

    /// Lowers `if (setjmp(buf)) { handler } else { body }`.
    ///
    /// The PACStack schemes follow the paper's `setjmp_wrapper`
    /// (Listing 4): the resume address is bound to both the chain head and
    /// the captured SP, `bound = pacia(ret_b, aret_i) ⊕ pacia(SP_b,
    /// aret_i)`, before it is stored in the (attacker-writable) buffer.
    /// The other schemes store the resume address and SP raw, as plain
    /// `setjmp` does; ShadowCallStack additionally saves its X18 so the
    /// shadow stack realigns after the non-local jump.
    fn try_catch(&mut self, buf: u16, body: &[Stmt], handler: &[Stmt]) {
        let landing = self.fresh_label("setjmp_landing");
        let catch = self.fresh_label("catch");
        let done = self.fresh_label("try_done");
        let buf_addr = jmp_buf_addr(buf);
        let pacstack = matches!(self.scheme, Scheme::PacStack | Scheme::PacStackNomask);

        // --- setjmp ---------------------------------------------------
        self.ops.push(Op::LabelAddr(Reg::X9, landing.clone()));
        self.emit(I::MovImm(Reg::X10, buf_addr));
        self.emit(I::Mov(Reg::X11, Reg::Sp));
        if pacstack {
            // Listing 4: bind ret_b and SP_b to aret_i.
            self.emit(I::Mov(Reg::X15, Reg::Sp));
            self.emit(I::Pacia(Reg::X15, Reg::CR));
            self.emit(I::Pacia(Reg::X9, Reg::CR));
            self.emit(I::Eor(Reg::X9, Reg::X9, Reg::X15));
            self.emit(I::Mov(Reg::X15, Reg::Xzr));
        }
        self.emit(I::Str(Reg::X9, Reg::X10, 0));
        self.emit(I::Str(Reg::X11, Reg::X10, 8));
        self.emit(I::Str(Reg::CR, Reg::X10, 16));
        self.emit(I::Str(Reg::SCS, Reg::X10, 24));
        self.emit(I::MovImm(Reg::X0, 0));
        self.ops.push(Op::Label(landing));
        self.ops.push(Op::JumpNonZero(Reg::X0, catch.clone()));
        for stmt in body {
            self.stmt(stmt, false);
        }
        self.ops.push(Op::Jump(done.clone()));
        self.ops.push(Op::Label(catch));
        for stmt in handler {
            self.stmt(stmt, false);
        }
        self.ops.push(Op::Label(done));
    }

    /// Lowers `longjmp(buf, value)`.
    ///
    /// The PACStack schemes follow the paper's `longjmp_wrapper`
    /// (Listing 5): restore CR from the buffer, regenerate the SP binding,
    /// strip it from the bound return address and authenticate before
    /// transferring control — a forged buffer faults instead of jumping.
    fn throw(&mut self, buf: u16, value: u16) {
        assert!(
            value != 0,
            "Throw value must be non-zero (0 means direct setjmp return)"
        );
        let buf_addr = jmp_buf_addr(buf);
        let pacstack = matches!(self.scheme, Scheme::PacStack | Scheme::PacStackNomask);

        self.emit(I::MovImm(Reg::X10, buf_addr));
        self.emit(I::Ldr(Reg::X9, Reg::X10, 0)); // resume / bound
        self.emit(I::Ldr(Reg::X11, Reg::X10, 8)); // SP_b
        if pacstack {
            self.emit(I::Ldr(Reg::CR, Reg::X10, 16)); // CR ← aret_b
            self.emit(I::Mov(Reg::X15, Reg::X11));
            self.emit(I::Pacia(Reg::X15, Reg::CR));
            self.emit(I::Eor(Reg::X9, Reg::X9, Reg::X15)); // → pacia(ret_b, aret)
            self.emit(I::Mov(Reg::X15, Reg::Xzr));
            self.emit(I::Autia(Reg::X9, Reg::CR)); // → ret_b or fault
        }
        if self.scheme == Scheme::ShadowCallStack {
            self.emit(I::Ldr(Reg::SCS, Reg::X10, 24)); // realign shadow stack
        }
        self.emit(I::Mov(Reg::Sp, Reg::X11));
        self.emit(I::MovImm(Reg::X0, u64::from(value)));
        self.emit(I::Br(Reg::X9));
    }

    fn lower(mut self) -> Vec<Op> {
        // Loops with zero iterations would underflow the counter; the IR
        // constructors use u32 counts so `count == 0` simply runs once
        // through and exits on the cbnz — acceptable for workloads, but we
        // guard anyway in stmt(). Nothing to do here.
        self.prologue_with_pressure();
        let body = self.func.body();
        for (i, stmt) in body.iter().enumerate() {
            self.stmt(stmt, i + 1 == body.len());
        }
        self.ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacstack_aarch64::Cpu;

    /// A module with direct, indirect and nested calls, loops, memory
    /// traffic and an emit — the behaviours must match across schemes.
    fn rich_module() -> Module {
        let mut m = Module::new();
        m.push(FuncDef::new(
            "main",
            vec![
                Stmt::Compute(3),
                Stmt::Call("middle".into()),
                Stmt::Loop(4, vec![Stmt::Call("leafy".into()), Stmt::MemAccess(2)]),
                Stmt::Emit,
                Stmt::Return,
            ],
        ));
        m.push(FuncDef::new(
            "middle",
            vec![
                Stmt::MemAccess(1),
                Stmt::CallIndirect("leafy".into()),
                Stmt::Call("deep".into()),
                Stmt::Return,
            ],
        ));
        m.push(FuncDef::new(
            "deep",
            vec![Stmt::Compute(2), Stmt::TailCall("leafy".into())],
        ));
        m.push(FuncDef::new("leafy", vec![Stmt::Compute(5), Stmt::Return]));
        m
    }

    fn run(scheme: Scheme) -> (u64, Vec<u64>, u64) {
        let program = lower(&rich_module(), scheme);
        let mut cpu = Cpu::with_seed(program, 42);
        let out = cpu.run(1_000_000).expect("program must run clean");
        (out.exit_code, cpu.output().to_vec(), out.cycles)
    }

    #[test]
    fn all_schemes_compute_the_same_result() {
        let (baseline_exit, baseline_out, _) = run(Scheme::Baseline);
        for scheme in Scheme::ALL {
            let (exit, out, _) = run(scheme);
            assert_eq!(exit, baseline_exit, "{scheme} diverged");
            assert_eq!(out, baseline_out, "{scheme} diverged in output");
        }
    }

    #[test]
    fn overhead_ordering_matches_the_paper() {
        // baseline < canary/pac-ret/shadow < nomask < full PACStack.
        let cycles: Vec<u64> = Scheme::ALL.iter().map(|s| run(*s).2).collect();
        let [base, canary, pacret, scs, nomask, full] = cycles[..] else {
            unreachable!()
        };
        assert!(base < canary, "canary must cost more than baseline");
        assert!(base < pacret);
        assert!(base < scs);
        assert!(pacret < nomask, "nomask reserves CR and adds a store");
        assert!(
            scs < nomask || scs < full,
            "shadow stack is cheaper than full PACStack"
        );
        assert!(nomask < full, "masking adds two PACs per activation");
    }

    #[test]
    fn leaf_functions_are_skipped_by_default() {
        let m = rich_module();
        let program = lower(&m, Scheme::PacStack);
        let text = format!("{program}");
        // "leafy" must not contain pacia; "middle" must.
        let leafy = text
            .split("leafy:")
            .nth(1)
            .unwrap()
            .split("\nmain")
            .next()
            .unwrap();
        assert!(!leafy.contains("pacia"), "leaf was instrumented: {leafy}");
    }

    #[test]
    fn instrument_leaves_option_covers_leaves() {
        let m = rich_module();
        let program = lower_with_options(
            &m,
            Scheme::PacStack,
            LowerOptions {
                instrument_leaves: true,
            },
        );
        let mut cpu = Cpu::with_seed(program, 42);
        let out = cpu.run(1_000_000).unwrap();
        assert_eq!(out.exit_code, run(Scheme::Baseline).0);
    }

    #[test]
    fn deep_recursion_chain_survives() {
        // 64 nested activations exercise the chained MAC across depth.
        let mut m = Module::new();
        m.push(FuncDef::new(
            "main",
            vec![Stmt::Call("r0".into()), Stmt::Return],
        ));
        for i in 0..64 {
            let body = if i == 63 {
                vec![Stmt::Compute(1), Stmt::Return]
            } else {
                vec![Stmt::Call(format!("r{}", i + 1)), Stmt::Return]
            };
            m.push(FuncDef::new(&format!("r{i}"), body));
        }
        for scheme in [Scheme::Baseline, Scheme::PacStack, Scheme::PacStackNomask] {
            let mut cpu = Cpu::with_seed(lower(&m, scheme), 1);
            assert!(cpu.run(1_000_000).is_ok(), "{scheme} failed at depth 64");
        }
    }

    #[test]
    fn pacstack_cycles_exceed_nomask_by_two_pacs_per_activation() {
        // Masking costs exactly 2 extra PACs + 4 moves + 2 eors per
        // activation (Listing 3 vs Listing 2).
        let mut m = Module::new();
        m.push(FuncDef::new(
            "main",
            vec![Stmt::Call("f".into()), Stmt::Return],
        ));
        m.push(FuncDef::new(
            "f",
            vec![Stmt::Call("g".into()), Stmt::Return],
        ));
        m.push(FuncDef::new("g", vec![Stmt::Compute(1), Stmt::Return]));
        let nomask = {
            let mut cpu = Cpu::with_seed(lower(&m, Scheme::PacStackNomask), 1);
            cpu.run(100_000).unwrap().cycles
        };
        let full = {
            let mut cpu = Cpu::with_seed(lower(&m, Scheme::PacStack), 1);
            cpu.run(100_000).unwrap().cycles
        };
        // Two instrumented activations (main, f): per activation the masked
        // variant adds 2 pacia (4 cycles each) + 2 eor + 4 mov = 14 cycles.
        assert_eq!(full - nomask, 2 * 14);
    }

    #[test]
    fn canary_catches_linear_overflow_into_lr() {
        // A canary sits between locals and the frame record; the check must
        // trip before the corrupted LR is used... in our fixed layout the
        // canary occupies the CHAIN_SLOT below the frame record, so a
        // linear overwrite from the local slot hits it first.
        let mut m = Module::new();
        m.push(FuncDef::new(
            "main",
            vec![Stmt::Call("victim".into()), Stmt::Return],
        ));
        m.push(FuncDef::new(
            "victim",
            vec![Stmt::MemAccess(1), Stmt::Call("noop".into()), Stmt::Return],
        ));
        m.push(FuncDef::new("noop", vec![Stmt::Return]));
        let program = lower(&m, Scheme::StackProtector);
        let text = format!("{program}");
        assert!(text.contains("__stack_chk_fail"));
    }
}
