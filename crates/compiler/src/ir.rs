//! The call-graph IR.
//!
//! Programs are modelled at the granularity the PACStack evaluation cares
//! about: function activations, the calls between them, and the rough mix
//! of compute and memory work inside each body. A single implicit
//! accumulator (`X0`) flows through calls as argument and return value, so
//! every lowered program produces a deterministic, scheme-independent exit
//! value — the property the compatibility tests check.

use std::collections::BTreeSet;

/// A statement in a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `n` ALU operations on the accumulator (data dependency chain).
    Compute(u32),
    /// `n` store/load pairs against the function's stack frame.
    MemAccess(u32),
    /// Direct call; the accumulator is passed and updated.
    Call(String),
    /// Indirect call through a function pointer (satisfies assumption A2:
    /// it can only target a function entry).
    CallIndirect(String),
    /// Tail call: the epilogue runs, then control transfers with `b`
    /// (paper §6.3.1, Listing 8).
    TailCall(String),
    /// Repeat the body `n` times.
    Loop(u32, Vec<Stmt>),
    /// Branch on the accumulator's low bit: `if (acc & 1) == 0 { then }
    /// else { otherwise }` — enough data-dependent control flow to express
    /// interpreter-style dispatch.
    IfEven(Vec<Stmt>, Vec<Stmt>),
    /// Emit the accumulator via `svc #1` (observable output).
    Emit,
    /// Suspend to the harness via `svc #imm` (imm ≥ 10) — the hook attack
    /// simulations use to act "mid-execution" with the process paused,
    /// modelling a concurrent adversary thread.
    Checkpoint(u16),
    /// `if (setjmp(buf)) { handler } else { body }` — the C idiom the
    /// paper's §4.4/§5.3 wrappers protect. `buf` selects one of the static
    /// `jmp_buf`s in the data segment.
    TryCatch {
        /// Which static `jmp_buf` to use.
        buf: u16,
        /// Statements executed on the direct (setjmp-returned-0) path.
        body: Vec<Stmt>,
        /// Statements executed when a [`Stmt::Throw`] lands here.
        handler: Vec<Stmt>,
    },
    /// `svc #9` — request `sigreturn` from the kernel model; the statement
    /// a signal handler's tail must execute (anything after it is dead
    /// code, the kernel transfers control back to the interrupted point).
    Sigreturn,
    /// `longjmp(buf, value)` — non-local jump to the matching
    /// [`Stmt::TryCatch`]; `value` (non-zero) becomes the accumulator in
    /// the handler.
    Throw {
        /// Which static `jmp_buf` to jump through.
        buf: u16,
        /// The non-zero value delivered to the handler.
        value: u16,
    },
    /// Return from the function. Every body must end with `Return` or
    /// `TailCall`; `Return` elsewhere is not supported by the lowering.
    Return,
}

impl Stmt {
    fn collect_callees<'a>(&'a self, out: &mut BTreeSet<&'a str>) {
        match self {
            Stmt::Call(name) | Stmt::CallIndirect(name) | Stmt::TailCall(name) => {
                out.insert(name);
            }
            Stmt::Loop(_, body) => {
                for stmt in body {
                    stmt.collect_callees(out);
                }
            }
            Stmt::TryCatch { body, handler, .. } => {
                for stmt in body.iter().chain(handler) {
                    stmt.collect_callees(out);
                }
            }
            Stmt::IfEven(a, b) => {
                for stmt in a.iter().chain(b) {
                    stmt.collect_callees(out);
                }
            }
            _ => {}
        }
    }

    fn contains_call(&self) -> bool {
        match self {
            Stmt::Call(_) | Stmt::CallIndirect(_) | Stmt::TailCall(_) => true,
            Stmt::Loop(_, body) => body.iter().any(Stmt::contains_call),
            Stmt::TryCatch { body, handler, .. } => {
                body.iter().chain(handler).any(Stmt::contains_call)
            }
            Stmt::IfEven(a, b) => a.iter().chain(b).any(Stmt::contains_call),
            _ => false,
        }
    }

    fn contains_mem_access(&self) -> bool {
        match self {
            Stmt::MemAccess(_) => true,
            Stmt::Loop(_, body) => body.iter().any(Stmt::contains_mem_access),
            Stmt::TryCatch { body, handler, .. } => {
                body.iter().chain(handler).any(Stmt::contains_mem_access)
            }
            Stmt::IfEven(a, b) => a.iter().chain(b).any(Stmt::contains_mem_access),
            _ => false,
        }
    }
}

/// A function definition.
///
/// # Examples
///
/// ```
/// use pacstack_compiler::{FuncDef, Stmt};
///
/// let leaf = FuncDef::new("leaf", vec![Stmt::Compute(4), Stmt::Return]);
/// assert!(leaf.is_leaf());
/// let caller = FuncDef::new("caller", vec![Stmt::Call("leaf".into()), Stmt::Return]);
/// assert!(!caller.is_leaf());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncDef {
    name: String,
    body: Vec<Stmt>,
}

impl FuncDef {
    /// Creates a function.
    ///
    /// # Panics
    ///
    /// Panics if the body does not end with [`Stmt::Return`] or
    /// [`Stmt::TailCall`].
    pub fn new(name: &str, body: Vec<Stmt>) -> Self {
        assert!(
            matches!(body.last(), Some(Stmt::Return) | Some(Stmt::TailCall(_))),
            "function {name:?} must end with Return or TailCall"
        );
        Self {
            name: name.to_owned(),
            body,
        }
    }

    /// The function's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The function's body.
    pub fn body(&self) -> &[Stmt] {
        &self.body
    }

    /// Whether this function makes no calls — the paper's leaf heuristic
    /// skips instrumentation for leaf functions that never spill LR/CR.
    pub fn is_leaf(&self) -> bool {
        !self.body.iter().any(Stmt::contains_call)
    }

    /// Whether the body touches its stack frame.
    pub fn uses_frame(&self) -> bool {
        self.body.iter().any(Stmt::contains_mem_access)
    }

    /// Names of every function this one calls (directly, indirectly or via
    /// tail call), deduplicated.
    pub fn callees(&self) -> Vec<&str> {
        let mut out = BTreeSet::new();
        for stmt in &self.body {
            stmt.collect_callees(&mut out);
        }
        out.into_iter().collect()
    }
}

/// A whole program: an ordered collection of functions.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Module {
    functions: Vec<FuncDef>,
}

impl Module {
    /// Creates an empty module.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a function.
    ///
    /// # Panics
    ///
    /// Panics on duplicate names.
    pub fn push(&mut self, func: FuncDef) -> &mut Self {
        assert!(
            self.get(func.name()).is_none(),
            "duplicate function {:?}",
            func.name()
        );
        self.functions.push(func);
        self
    }

    /// Looks up a function by name.
    pub fn get(&self, name: &str) -> Option<&FuncDef> {
        self.functions.iter().find(|f| f.name() == name)
    }

    /// All functions in insertion order.
    pub fn functions(&self) -> &[FuncDef] {
        &self.functions
    }

    /// Validates that every callee exists.
    ///
    /// # Errors
    ///
    /// Returns the first missing callee name.
    pub fn check(&self) -> Result<(), String> {
        for f in &self.functions {
            for callee in f.callees() {
                if self.get(callee).is_none() {
                    return Err(format!("{} calls undefined function {callee:?}", f.name()));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_detection_sees_through_loops() {
        let f = FuncDef::new(
            "f",
            vec![
                Stmt::Loop(4, vec![Stmt::Compute(1), Stmt::Call("g".into())]),
                Stmt::Return,
            ],
        );
        assert!(!f.is_leaf());
        assert_eq!(f.callees(), vec!["g"]);
    }

    #[test]
    fn tail_call_terminated_body_is_accepted() {
        let f = FuncDef::new("f", vec![Stmt::Compute(1), Stmt::TailCall("g".into())]);
        assert!(!f.is_leaf());
    }

    #[test]
    #[should_panic(expected = "must end with Return")]
    fn unterminated_body_panics() {
        let _ = FuncDef::new("f", vec![Stmt::Compute(1)]);
    }

    #[test]
    fn module_check_finds_missing_callee() {
        let mut m = Module::new();
        m.push(FuncDef::new(
            "main",
            vec![Stmt::Call("ghost".into()), Stmt::Return],
        ));
        assert!(m.check().unwrap_err().contains("ghost"));
        m.push(FuncDef::new("ghost", vec![Stmt::Return]));
        assert!(m.check().is_ok());
    }

    #[test]
    #[should_panic(expected = "duplicate function")]
    fn duplicate_names_panic() {
        let mut m = Module::new();
        m.push(FuncDef::new("f", vec![Stmt::Return]));
        m.push(FuncDef::new("f", vec![Stmt::Return]));
    }

    #[test]
    fn frame_usage_detection() {
        let f = FuncDef::new("f", vec![Stmt::MemAccess(2), Stmt::Return]);
        assert!(f.uses_frame());
        let g = FuncDef::new("g", vec![Stmt::Compute(2), Stmt::Return]);
        assert!(!g.uses_frame());
    }
}
