//! Property-based tests: randomly generated programs must behave
//! identically under every protection scheme — the strongest form of the
//! paper's compatibility requirement (R3).

use pacstack_aarch64::{Cpu, RunStatus};
use pacstack_compiler::{lower_with_options, FuncDef, LowerOptions, Module, Scheme, Stmt};
use proptest::prelude::*;

/// A recipe for one generated function body.
#[derive(Debug, Clone)]
enum BodyPiece {
    Compute(u32),
    Mem(u32),
    CallNext,
    CallNextIndirect,
    Emit,
    LoopCallNext(u32),
}

fn arb_piece() -> impl Strategy<Value = BodyPiece> {
    prop_oneof![
        (1u32..12).prop_map(BodyPiece::Compute),
        (1u32..5).prop_map(BodyPiece::Mem),
        Just(BodyPiece::CallNext),
        Just(BodyPiece::CallNextIndirect),
        Just(BodyPiece::Emit),
        (1u32..4).prop_map(BodyPiece::LoopCallNext),
    ]
}

/// Builds a module as a layered call DAG: function `i` may only call
/// function `i + 1`, guaranteeing termination.
fn build_module(layers: &[Vec<BodyPiece>], tail_call_last: bool) -> Module {
    let mut m = Module::new();
    let name = |i: usize| {
        if i == 0 {
            "main".to_owned()
        } else {
            format!("f{i}")
        }
    };
    for (i, pieces) in layers.iter().enumerate() {
        let next = name(i + 1);
        let has_next = i + 1 < layers.len();
        let mut body = Vec::new();
        for piece in pieces {
            match piece {
                BodyPiece::Compute(n) => body.push(Stmt::Compute(*n)),
                BodyPiece::Mem(n) => body.push(Stmt::MemAccess(*n)),
                BodyPiece::CallNext if has_next => body.push(Stmt::Call(next.clone())),
                BodyPiece::CallNextIndirect if has_next => {
                    body.push(Stmt::CallIndirect(next.clone()))
                }
                BodyPiece::LoopCallNext(n) if has_next => body.push(Stmt::Loop(
                    *n,
                    vec![Stmt::Call(next.clone()), Stmt::Compute(1)],
                )),
                BodyPiece::Emit => body.push(Stmt::Emit),
                // Callish pieces in the last layer degrade to compute.
                _ => body.push(Stmt::Compute(1)),
            }
        }
        if tail_call_last && has_next && i == 0 {
            body.push(Stmt::TailCall(next));
        } else {
            body.push(Stmt::Return);
        }
        m.push(FuncDef::new(&name(i), body));
    }
    m
}

fn run(module: &Module, scheme: Scheme, leaves: bool) -> (u64, Vec<u64>, u64) {
    let program = lower_with_options(
        module,
        scheme,
        LowerOptions {
            instrument_leaves: leaves,
        },
    );
    let mut cpu = Cpu::with_seed(program, 1);
    let out = cpu
        .run(50_000_000)
        .expect("generated program must run clean");
    match out.status {
        RunStatus::Exited(code) => (code, cpu.output().to_vec(), out.cycles),
        RunStatus::Syscall(n) => panic!("unexpected syscall {n}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_programs_are_scheme_invariant(
        layers in prop::collection::vec(prop::collection::vec(arb_piece(), 1..6), 1..5),
        tail in any::<bool>(),
    ) {
        let module = build_module(&layers, tail);
        let (exit, output, base_cycles) = run(&module, Scheme::Baseline, false);
        for scheme in Scheme::ALL {
            let (e, o, c) = run(&module, scheme, false);
            prop_assert_eq!(e, exit, "{} exit", scheme);
            prop_assert_eq!(o.clone(), output.clone(), "{} output", scheme);
            prop_assert!(c >= base_cycles, "{} ran faster than baseline", scheme);
        }
    }

    #[test]
    fn leaf_instrumentation_preserves_behaviour(
        layers in prop::collection::vec(prop::collection::vec(arb_piece(), 1..5), 1..4),
    ) {
        let module = build_module(&layers, false);
        let (exit, output, _) = run(&module, Scheme::PacStack, false);
        let (e, o, c_leaves) = run(&module, Scheme::PacStack, true);
        prop_assert_eq!(e, exit);
        prop_assert_eq!(o, output);
        let (_, _, c_heuristic) = run(&module, Scheme::PacStack, false);
        prop_assert!(c_leaves >= c_heuristic, "heuristic should never cost more");
    }

    #[test]
    fn random_programs_support_exceptions(
        pre in prop::collection::vec(arb_piece(), 0..4),
        deep in any::<bool>(),
    ) {
        // Wrap a thrower in TryCatch at random nesting.
        let thrower: Vec<Stmt> = vec![Stmt::Throw { buf: 0, value: 9 }, Stmt::Return];
        let mut m = Module::new();
        let mut body: Vec<Stmt> = pre.iter().map(|p| match p {
            BodyPiece::Compute(n) => Stmt::Compute(*n),
            BodyPiece::Mem(n) => Stmt::MemAccess(*n),
            BodyPiece::Emit => Stmt::Emit,
            _ => Stmt::Compute(1),
        }).collect();
        body.push(Stmt::TryCatch {
            buf: 0,
            body: vec![Stmt::Call(if deep { "mid" } else { "thrower" }.into())],
            handler: vec![Stmt::Emit],
        });
        body.push(Stmt::Return);
        m.push(FuncDef::new("main", body));
        m.push(FuncDef::new("mid", vec![Stmt::Call("thrower".into()), Stmt::Return]));
        m.push(FuncDef::new("thrower", thrower));

        let (exit, output, _) = run(&m, Scheme::Baseline, false);
        for scheme in [Scheme::PacStack, Scheme::PacStackNomask, Scheme::ShadowCallStack] {
            let (e, o, _) = run(&m, scheme, false);
            prop_assert_eq!(e, exit, "{}", scheme);
            prop_assert_eq!(o.clone(), output.clone(), "{}", scheme);
        }
    }
}
