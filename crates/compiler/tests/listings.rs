//! Golden tests: the emitted prologue/epilogue sequences must match the
//! paper's listings instruction for instruction.
//!
//! Listing 1 (`-mbranch-protection`), the §5 nomask sequence, and
//! Listing 3 (full PACStack with masking) are the normative artifacts the
//! whole reproduction hangs off — these tests pin them.

use pacstack_compiler::{lower, FuncDef, Module, Scheme, Stmt};

/// Lowers a minimal non-leaf function and returns its listing text.
fn listing_of(scheme: Scheme) -> String {
    let mut m = Module::new();
    m.push(FuncDef::new(
        "main",
        vec![Stmt::Call("subject".into()), Stmt::Return],
    ));
    m.push(FuncDef::new(
        "subject",
        vec![Stmt::Call("callee".into()), Stmt::Return],
    ));
    m.push(FuncDef::new("callee", vec![Stmt::Compute(1), Stmt::Return]));
    let program = lower(&m, scheme);
    let text = format!("{program}");
    text.split("subject:")
        .nth(1)
        .expect("subject present")
        .split("callee:")
        .next()
        .expect("subject body")
        .to_owned()
}

/// Extracts the non-empty instruction lines.
fn lines(listing: &str) -> Vec<String> {
    listing
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty())
        .map(str::to_owned)
        .collect()
}

#[test]
fn pacstack_sequence_matches_listing_3() {
    let lines = lines(&listing_of(Scheme::PacStack));
    let expected = [
        // prologue (Listing 3 lines 2–9, plus FP-chain setup and the
        // register-pressure spill this lowering models)
        "str x28, [sp, #-48]!",  // stack ← aret_{i-1}
        "stp fp, lr, [sp, #16]", // frame record (plain ret — §5 compat)
        "add fp, sp, #16",
        "mov x15, xzr",
        "pacia lr, x28",  // LR ← aret_i (unmasked)
        "pacia x15, x28", // X15 ← mask_i
        "eor lr, lr, x15",
        "mov x15, xzr",
        "mov x28, lr", // CR ← aret_i
        "str x19, [sp, #32]",
        // body
        "bl",
        // epilogue (Listing 3 lines 12–20)
        "ldr x19, [sp, #32]",
        "mov lr, x28",
        "ldr fp, [sp, #16]",  // skip ret in frame record
        "ldr x28, [sp], #48", // CR ← aret_{i-1}
        "mov x15, xzr",
        "pacia x15, x28", // recreate mask
        "eor lr, lr, x15",
        "mov x15, xzr",
        "autia lr, x28", // verify
        "ret",
    ];
    assert_eq!(lines.len(), expected.len(), "sequence length: {lines:#?}");
    for (got, want) in lines.iter().zip(expected.iter()) {
        assert!(
            got.starts_with(want),
            "mismatch: got {got:?}, expected prefix {want:?}"
        );
    }
}

#[test]
fn nomask_sequence_matches_section_5() {
    let lines = lines(&listing_of(Scheme::PacStackNomask));
    let expected = [
        "str x28, [sp, #-48]!",
        "stp fp, lr, [sp, #16]",
        "add fp, sp, #16",
        "pacia lr, x28",
        "mov x28, lr",
        "str x19, [sp, #32]",
        "bl",
        "ldr x19, [sp, #32]",
        "mov lr, x28",
        "ldr fp, [sp, #16]",
        "ldr x28, [sp], #48",
        "autia lr, x28",
        "ret",
    ];
    assert_eq!(lines.len(), expected.len(), "sequence length: {lines:#?}");
    for (got, want) in lines.iter().zip(expected.iter()) {
        assert!(
            got.starts_with(want),
            "mismatch: got {got:?}, expected prefix {want:?}"
        );
    }
}

#[test]
fn pac_ret_sequence_matches_listing_1() {
    let lines = lines(&listing_of(Scheme::PacRet));
    // Listing 1: paciasp signs, conventional spill, retaa verifies+returns.
    assert_eq!(lines.first().map(String::as_str), Some("paciasp"));
    assert_eq!(lines.last().map(String::as_str), Some("retaa"));
    assert!(lines.iter().any(|l| l.starts_with("stp fp, lr")));
    assert!(
        !lines.iter().any(|l| l.contains("x28")),
        "pac-ret must not touch CR"
    );
}

#[test]
fn shadow_call_stack_uses_x18_push_pop() {
    let lines = lines(&listing_of(Scheme::ShadowCallStack));
    assert_eq!(lines.first().map(String::as_str), Some("str lr, [x18], #8"));
    assert!(lines.iter().any(|l| l == "ldr lr, [x18, #-8]!"));
    assert_eq!(lines.last().map(String::as_str), Some("ret"));
}

#[test]
fn baseline_has_no_protection_instructions() {
    let text = listing_of(Scheme::Baseline);
    for forbidden in ["pacia", "autia", "paciasp", "retaa", "x18", "x28"] {
        assert!(
            !text.contains(forbidden),
            "baseline contains {forbidden}: {text}"
        );
    }
}

#[test]
fn pacstack_never_stores_the_unmasked_aret() {
    // The security argument requires that only *masked* tokens ever reach
    // memory: between `pacia lr, x28` and the store of CR...  in Listing 3
    // the store happens *before* signing (the spilled value is the
    // previous, already-masked link). Verify no str of LR appears between
    // pacia and the eor.
    let listing = listing_of(Scheme::PacStack);
    let lines = lines(&listing);
    let pacia_idx = lines
        .iter()
        .position(|l| l.starts_with("pacia lr"))
        .unwrap();
    let eor_idx = lines.iter().position(|l| l.starts_with("eor lr")).unwrap();
    for line in &lines[pacia_idx..eor_idx] {
        assert!(!line.starts_with("str lr"), "unmasked aret stored: {line}");
        assert!(!line.starts_with("stp"), "unmasked aret stored: {line}");
    }
}
