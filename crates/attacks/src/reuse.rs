//! The signed-return-address *reuse* attack (paper §2.2.1, Listing 6).
//!
//! `-mbranch-protection` signs return addresses with `SP` as the modifier.
//! Two calls made from the same function at the same stack depth produce
//! interchangeable signed return addresses: the adversary harvests the
//! signed value spilled during the first call and substitutes it into the
//! second call's frame. Verification passes, and control returns to the
//! *first* call site — a control-flow bend no stateless PA scheme detects.
//!
//! PACStack binds each return address to the entire call path, so the same
//! substitution has nothing to substitute: the chain slot holds identical
//! values for both calls, and the authoritative token sits in CR.

use crate::rop::AttackOutcome;
use pacstack_aarch64::{Cpu, Fault, Reg, RunStatus};
use pacstack_compiler::{frame, lower, FuncDef, Module, Scheme, Stmt};

/// Checkpoint raised in `first` (the harvest window).
pub const HARVEST_CHECKPOINT: u16 = 43;
/// Checkpoint raised in `second` (the substitution window).
pub const SUBSTITUTE_CHECKPOINT: u16 = 44;

/// Listing 6's shape: `func` calls `first` then `second` from the same
/// frame; their spilled (signed) return addresses share the SP modifier.
fn reuse_module(extra_depth: bool) -> Module {
    let mut m = Module::new();
    m.push(FuncDef::new(
        "main",
        vec![
            if extra_depth {
                // Route the first call through a wrapper so its SP differs.
                Stmt::Call("wrapper".into())
            } else {
                Stmt::Call("first".into())
            },
            Stmt::Emit,
            Stmt::Call("second".into()),
            Stmt::Emit,
            Stmt::Return,
        ],
    ));
    m.push(FuncDef::new(
        "wrapper",
        vec![Stmt::Call("first".into()), Stmt::Return],
    ));
    m.push(FuncDef::new(
        "first",
        vec![
            Stmt::Checkpoint(HARVEST_CHECKPOINT),
            Stmt::Call("noop".into()),
            Stmt::Return,
        ],
    ));
    m.push(FuncDef::new(
        "second",
        vec![
            Stmt::Checkpoint(SUBSTITUTE_CHECKPOINT),
            Stmt::Call("noop".into()),
            Stmt::Return,
        ],
    ));
    m.push(FuncDef::new("noop", vec![Stmt::Compute(1), Stmt::Return]));
    m
}

/// The result of one reuse attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReuseResult {
    /// Outcome classification.
    pub outcome: AttackOutcome,
    /// Number of `Emit` events observed — a successful reuse replays part
    /// of `main` and emits more than the benign two.
    pub emits: usize,
}

/// Runs the reuse attack against a scheme.
///
/// `same_depth` selects whether the harvested address comes from a call at
/// the same stack depth (the exploitable case) or through a wrapper
/// (differing SP — the case `-mbranch-protection` *does* catch).
///
/// The substituted slot is the saved-LR slot for pac-ret-style schemes and
/// the chain slot for PACStack (the only slot it consumes).
///
/// # Panics
///
/// Panics if the victim misses its checkpoints (harness bug).
pub fn run_reuse(scheme: Scheme, same_depth: bool) -> ReuseResult {
    let program = lower(&reuse_module(!same_depth), scheme);
    let mut cpu = Cpu::with_seed(program, 77);

    let slot = if scheme.reserves_register() && scheme.uses_pointer_auth() {
        frame::CHAIN_SLOT as u64
    } else {
        frame::LR_SLOT as u64
    };

    // Harvest inside `first`.
    let out = cpu.run(1_000_000).expect("must reach harvest checkpoint");
    assert_eq!(out.status, RunStatus::Syscall(HARVEST_CHECKPOINT));
    let harvested = cpu
        .mem()
        .read_u64(cpu.reg(Reg::Sp) + slot)
        .expect("harvest slot readable");

    // Advance to the substitution window inside `second`.
    let out = cpu
        .run(1_000_000)
        .expect("must reach substitution checkpoint");
    assert_eq!(out.status, RunStatus::Syscall(SUBSTITUTE_CHECKPOINT));
    let substitution_addr = cpu.reg(Reg::Sp) + slot;
    cpu.mem_mut()
        .write_u64(substitution_addr, harvested)
        .expect("substitution slot writable");

    // Resume; if the reuse bent control flow back to after-first, `second`
    // runs twice and we see an extra checkpoint + emit.
    let mut re_entered = false;
    loop {
        match cpu.run(1_000_000) {
            Ok(out) => match out.status {
                RunStatus::Syscall(SUBSTITUTE_CHECKPOINT)
                | RunStatus::Syscall(HARVEST_CHECKPOINT) => {
                    re_entered = true;
                    continue;
                }
                RunStatus::Syscall(_) => continue,
                RunStatus::Exited(_) => {
                    let emits = cpu.output().len();
                    let outcome = if re_entered || emits > 2 {
                        AttackOutcome::Hijacked
                    } else {
                        AttackOutcome::Ineffective
                    };
                    return ReuseResult { outcome, emits };
                }
            },
            Err(Fault::Timeout) => {
                return ReuseResult {
                    outcome: AttackOutcome::Ineffective,
                    emits: cpu.output().len(),
                }
            }
            Err(_) => {
                return ReuseResult {
                    outcome: AttackOutcome::Crashed,
                    emits: cpu.output().len(),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pac_ret_is_bent_by_same_depth_reuse() {
        let result = run_reuse(Scheme::PacRet, true);
        assert_eq!(result.outcome, AttackOutcome::Hijacked);
        assert!(
            result.emits > 2,
            "control flow was not bent: {} emits",
            result.emits
        );
    }

    #[test]
    fn pac_ret_catches_cross_depth_reuse() {
        // Harvested under a different SP, the signed address fails to
        // verify — the case SP-as-modifier does narrow.
        let result = run_reuse(Scheme::PacRet, false);
        assert_eq!(result.outcome, AttackOutcome::Crashed);
    }

    #[test]
    fn baseline_is_trivially_bent() {
        let result = run_reuse(Scheme::Baseline, true);
        assert_eq!(result.outcome, AttackOutcome::Hijacked);
    }

    #[test]
    fn pacstack_resists_same_depth_reuse() {
        // Both frames spill the *same* chain value (the caller's CR), so
        // the substitution is a no-op; the authoritative aret lives in CR
        // and is never on the stack.
        for scheme in [Scheme::PacStack, Scheme::PacStackNomask] {
            let result = run_reuse(scheme, true);
            assert_eq!(result.outcome, AttackOutcome::Ineffective, "{scheme}");
            assert_eq!(result.emits, 2, "{scheme}");
        }
    }

    #[test]
    fn pacstack_detects_cross_depth_chain_substitution() {
        // Harvested from a different depth the chain values differ, and the
        // substituted link breaks the MAC chain.
        for scheme in [Scheme::PacStack, Scheme::PacStackNomask] {
            let result = run_reuse(scheme, false);
            assert_eq!(result.outcome, AttackOutcome::Crashed, "{scheme}");
        }
    }
}
