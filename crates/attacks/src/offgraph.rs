//! Off-graph violations (paper §6.2.2, Table 1 rows 2–3).
//!
//! The adversary substitutes into a live chain a value the instrumentation
//! has never chained at this position:
//!
//! * **To a call site**: a *valid* authenticated return address harvested
//!   from elsewhere in the program. The load-time check
//!   `H(ret_C, aret_B) = H(ret_C, aret_A)` has never been computed, so it
//!   passes with probability 2⁻ᵇ; the jump itself then succeeds because
//!   the harvested value is genuinely valid.
//! * **To an arbitrary address**: a forged `aret_B` with a guessed token.
//!   Both the load (2⁻ᵇ) and the jump (2⁻ᵇ) must pass: 2⁻²ᵇ overall.

use crate::collision::MonteCarlo;
use crate::layout_with_pac_bits;
use pacstack_acs::{AcsConfig, AuthenticatedCallStack, Masking};
use pacstack_exec as exec;
use pacstack_pauth::{PaKeys, PointerAuth};
use rand::Rng;

/// RNG-stream tag for [`to_call_site`] trials.
const STREAM_CALL_SITE: u64 = 0x0FF6_CA11_517E_0001;
/// RNG-stream tag for [`to_arbitrary_address`] trials.
const STREAM_ARBITRARY: u64 = 0x0FF6_A4B1_74A4_0002;

const RET_MAIN: u64 = 0x40_0100;
const RET_X: u64 = 0x40_0200;
const RET_C: u64 = 0x40_0300;
const RET_B: u64 = 0x40_0400;
/// An address that has never been a return address in the program.
const RET_EVIL: u64 = 0x43_0000;

fn acs_for(b: u32, masking: Masking, seed: u64) -> AuthenticatedCallStack {
    AuthenticatedCallStack::new(
        PointerAuth::new(layout_with_pac_bits(b)),
        PaKeys::from_seed(seed),
        AcsConfig::default().masking(masking),
    )
}

/// Row 2: off-graph violation targeting a valid call-site return address.
///
/// Each trial is one process (fresh keys): the adversary harvests a valid
/// `aret_B` from a context where `B`'s activation spills it, then
/// substitutes it as the chain-head of `C`'s frame and lets `C` return.
pub fn to_call_site(b: u32, masking: Masking, trials: u64, seed: u64) -> MonteCarlo {
    let (successes, stats) = exec::count_trials(seed ^ STREAM_CALL_SITE, trials, |_, rng| {
        let process_seed = rng.gen();

        // Harvest a valid aret_B: drive main → B → (callee), spilling
        // aret_B when B calls onward.
        let mut probe = acs_for(b, masking, process_seed);
        probe.call(RET_MAIN);
        probe.call(RET_B);
        probe.call(0x40_0500); // B calls something; aret_B hits the stack
        let aret_b = probe.frames()[2].stored_chain;

        // The victim path: main → X → C. The pair (ret_C, aret_B) has
        // never been chained.
        let mut acs = acs_for(b, masking, process_seed);
        acs.call(RET_MAIN);
        acs.call(RET_X);
        acs.call(RET_C);
        acs.frames_mut()[2].stored_chain = aret_b;
        acs.ret().is_ok()
    });
    exec::stats::record(format!("off-graph call-site b={b} {masking}"), stats);
    MonteCarlo { trials, successes }
}

/// Row 3: off-graph violation to an arbitrary address.
///
/// The adversary forges `aret_EVIL` with a guessed token (AG-Jump) and
/// substitutes it as `C`'s chain head (AG-Load). Success requires both the
/// load-time verification of `C`'s return *and* the subsequent return to
/// actually land on the forged address.
pub fn to_arbitrary_address(b: u32, masking: Masking, trials: u64, seed: u64) -> MonteCarlo {
    let layout = layout_with_pac_bits(b);
    let (successes, stats) = exec::count_trials(seed ^ STREAM_ARBITRARY, trials, |_, rng| {
        let process_seed = rng.gen();
        let mut acs = acs_for(b, masking, process_seed);
        acs.call(RET_MAIN);
        acs.call(RET_X);
        acs.call(RET_C);

        // Forge aret_EVIL: guessed token in the PAC field.
        let guessed_token: u64 = rng.gen::<u64>() & ((1 << b) - 1);
        let forged = layout.insert_pac(RET_EVIL, guessed_token);

        // AG-Load: make C's frame hand the forged value to the verifier.
        acs.frames_mut()[2].stored_chain = forged;
        // On load failure the process crashed — the common case.
        if acs.ret().is_ok() {
            // AG-Jump: the forged value is now the chain head; the next
            // return must authenticate it against an adversary-chosen
            // stored link and land on RET_EVIL.
            acs.frames_mut()[1].stored_chain = rng.gen::<u64>();
            acs.ret() == Ok(RET_EVIL)
        } else {
            false
        }
    });
    exec::stats::record(format!("off-graph arbitrary b={b} {masking}"), stats);
    MonteCarlo { trials, successes }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn call_site_violations_succeed_at_two_to_minus_b() {
        let b = 4;
        for masking in [Masking::Masked, Masking::Unmasked] {
            let result = to_call_site(b, masking, 8_000, 11);
            let expected = 2f64.powi(-(b as i32)); // 1/16
            let rate = result.rate();
            assert!(
                rate > expected * 0.5 && rate < expected * 1.7,
                "{masking}: rate {rate} vs expected {expected}"
            );
        }
    }

    #[test]
    fn arbitrary_address_violations_succeed_at_two_to_minus_2b() {
        let b = 3;
        let result = to_arbitrary_address(b, Masking::Masked, 60_000, 13);
        let expected = 2f64.powi(-(2 * b as i32)); // 1/64
        let rate = result.rate();
        assert!(
            rate > expected * 0.4 && rate < expected * 2.0,
            "rate {rate} vs expected {expected}"
        );
    }

    #[test]
    fn arbitrary_is_much_harder_than_call_site() {
        let b = 4;
        let call_site = to_call_site(b, Masking::Masked, 5_000, 17).rate();
        let arbitrary = to_arbitrary_address(b, Masking::Masked, 5_000, 17).rate();
        assert!(
            arbitrary < call_site,
            "arbitrary ({arbitrary}) should be rarer than call-site ({call_site})"
        );
    }
}
