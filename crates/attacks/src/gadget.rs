//! The PA signing gadget and PACStack's tail-call resistance
//! (paper §6.3.1, Listings 7–8).
//!
//! A failed `aut*` corrupts a well-known bit; a subsequent `pac*` of the
//! corrupted pointer produces the *correct* PAC with bit *p* flipped. Code
//! that authenticates a pointer and later re-signs it without using it in
//! between is therefore an oracle for forging PACs (Listing 7).
//!
//! PACStack's only aut→pac window is a tail call (Listing 8): function `A`
//! authenticates into `LR` and branches to `B`, whose prologue re-signs
//! `LR`. The would-be gadget is harmless because the poisoned bit lives in
//! `LR`/`CR` — registers the adversary cannot touch — so the forgery is
//! carried to `B`'s return, where it fails to authenticate.

use crate::rop::AttackOutcome;
use pacstack_aarch64::{Cpu, Fault, Reg, RunStatus};
use pacstack_compiler::{frame, lower, FuncDef, Module, Scheme, Stmt};

/// Checkpoint raised in `alpha` before its tail-call epilogue.
pub const PRE_TAIL_CHECKPOINT: u16 = 45;
/// Checkpoint raised by the adversary's target if reached.
pub const EVIL_CHECKPOINT: u16 = 98;

fn tail_call_module() -> Module {
    let mut m = Module::new();
    m.push(FuncDef::new(
        "main",
        vec![Stmt::Call("alpha".into()), Stmt::Return],
    ));
    m.push(FuncDef::new(
        "alpha",
        vec![
            Stmt::Call("noop".into()), // make alpha non-leaf regardless
            Stmt::Checkpoint(PRE_TAIL_CHECKPOINT),
            Stmt::TailCall("beta".into()),
        ],
    ));
    m.push(FuncDef::new(
        "beta",
        vec![Stmt::Call("noop".into()), Stmt::Return],
    ));
    m.push(FuncDef::new("noop", vec![Stmt::Compute(1), Stmt::Return]));
    m.push(FuncDef::new(
        "evil",
        vec![Stmt::Checkpoint(EVIL_CHECKPOINT), Stmt::Return],
    ));
    m
}

/// Attempts the Listing-8 attack: inject a forged chain value into
/// `alpha`'s frame just before its tail-call epilogue, hoping the
/// aut→(tail call)→pac sequence launders it into a valid chain head.
///
/// # Panics
///
/// Panics if the victim never reaches the pre-tail-call checkpoint.
pub fn tail_call_gadget_attack(scheme: Scheme) -> AttackOutcome {
    let program = lower(&tail_call_module(), scheme);
    let mut cpu = Cpu::with_seed(program, 4242);

    let out = cpu
        .run(1_000_000)
        .expect("must reach the pre-tail checkpoint");
    assert_eq!(out.status, RunStatus::Syscall(PRE_TAIL_CHECKPOINT));

    // Forge: point the spilled chain value at `evil` with a zero token.
    let evil = cpu.symbol("evil").expect("evil exists");
    let sp = cpu.reg(Reg::Sp);
    cpu.mem_mut()
        .write_u64(sp + frame::CHAIN_SLOT as u64, evil)
        .expect("chain slot writable");

    loop {
        match cpu.run(1_000_000) {
            Ok(out) => match out.status {
                RunStatus::Syscall(EVIL_CHECKPOINT) => return AttackOutcome::Hijacked,
                RunStatus::Syscall(_) => continue,
                RunStatus::Exited(_) => return AttackOutcome::Ineffective,
            },
            Err(Fault::Timeout) => return AttackOutcome::Ineffective,
            Err(_) => return AttackOutcome::Crashed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pacstack_detects_the_tail_call_gadget() {
        // The forged chain value fails authentication in alpha's epilogue;
        // the poisoned result rides through beta's pacia and is caught at
        // beta's return. Either way: a crash, never a hijack.
        for scheme in [Scheme::PacStack, Scheme::PacStackNomask] {
            assert_eq!(
                tail_call_gadget_attack(scheme),
                AttackOutcome::Crashed,
                "{scheme}"
            );
        }
    }

    #[test]
    fn baseline_tail_calls_run_clean_without_attack() {
        // Control: the tail-call module itself behaves under every scheme.
        for scheme in Scheme::ALL {
            let program = lower(&tail_call_module(), scheme);
            let mut cpu = Cpu::with_seed(program, 1);
            loop {
                match cpu.run(1_000_000).expect("clean run") {
                    out if matches!(out.status, RunStatus::Exited(_)) => break,
                    _ => continue,
                }
            }
        }
    }
}
