//! Brute-force guessing against forked siblings (paper §4.3).
//!
//! A failed token guess crashes the guessed-at process. Three regimes:
//!
//! * **Single process**: each crash re-keys (`exec` restarts), so every
//!   guess is independent — geometric with mean 2ᵇ, and the paper's
//!   `log(1−p)/log(1−2⁻ᵇ)` guess count for target probability `p`.
//! * **Shared-key siblings (divide-and-conquer)**: a pre-forking server's
//!   children share the key, so the unknown token is *fixed* across
//!   guesses. Enumerating it takes 2ᵇ⁻¹ guesses on average, and the two
//!   stages (forge a modifier, then forge the jump) are separable:
//!   2ᵇ total.
//! * **Re-seeded siblings**: each child's chain is re-seeded with a unique
//!   value, so the target re-randomises every guess; the stages cost 2ᵇ
//!   each and cannot share work: 2ᵇ⁺¹ total.

use crate::layout_with_pac_bits;
use pacstack_pauth::{PaKey, PaKeys, PointerAuth};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// RNG-stream tag for [`mean_cost`] campaigns (unused for randomness —
/// campaigns derive everything from their seed — but labels the stream).
const STREAM_MEAN_COST: u64 = 0x63E5_5C05_7000_0003;

const TARGET_ADDR: u64 = 0x43_0000;
const PIVOT_ADDR: u64 = 0x40_0500;
const FIXED_MODIFIER: u64 = 0x7fff_1000;

/// Guesses spent in each stage of a two-stage attack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GuessCost {
    /// Guesses to obtain a valid intermediate (modifier-forging) pair.
    pub stage_one: u64,
    /// Guesses to land the final jump.
    pub stage_two: u64,
}

impl GuessCost {
    /// Total guesses across both stages.
    pub fn total(&self) -> u64 {
        self.stage_one + self.stage_two
    }
}

/// Single-process guessing: every failed guess restarts the process with a
/// fresh key. Returns the number of guesses until one lands.
pub fn single_process(b: u32, seed: u64) -> u64 {
    let pa = PointerAuth::new(layout_with_pac_bits(b));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut guesses = 0;
    loop {
        guesses += 1;
        let keys = PaKeys::generate(&mut rng); // fresh key per attempt
        let guess: u64 = rng.gen::<u64>() & ((1 << b) - 1);
        if pa.compute_pac(&keys, PaKey::Ia, TARGET_ADDR, FIXED_MODIFIER) == guess {
            return guesses;
        }
    }
}

/// Divide-and-conquer against shared-key siblings: the PA key survives
/// each crashed child, so both stages reduce to enumerating a fixed b-bit
/// unknown (mean 2ᵇ⁻¹ each, 2ᵇ total).
pub fn divide_and_conquer(b: u32, seed: u64) -> GuessCost {
    let pa = PointerAuth::new(layout_with_pac_bits(b));
    let keys = PaKeys::from_seed(seed); // one key for the whole process tree
    let layout = layout_with_pac_bits(b);

    // Stage 1: enumerate the token of (PIVOT_ADDR, FIXED_MODIFIER). Each
    // wrong enumeration kills one sibling; the key does not change.
    let stage1_target = pa.compute_pac(&keys, PaKey::Ia, PIVOT_ADDR, FIXED_MODIFIER);
    let stage_one = stage1_target + 1; // guesses 0..=target

    // The accepted authenticated pointer becomes the next modifier...
    let pivot_aret = layout.insert_pac(PIVOT_ADDR, stage1_target);

    // Stage 2: enumerate the token of (TARGET_ADDR, pivot_aret).
    let stage2_target = pa.compute_pac(&keys, PaKey::Ia, TARGET_ADDR, pivot_aret);
    let stage_two = stage2_target + 1;

    GuessCost {
        stage_one,
        stage_two,
    }
}

/// Re-seeded siblings: each child gets a unique chain seed, so the value
/// under attack is re-randomised on every guess — enumeration degenerates
/// to geometric trials with mean 2ᵇ per stage (2ᵇ⁺¹ total).
pub fn reseeded(b: u32, seed: u64) -> GuessCost {
    let pa = PointerAuth::new(layout_with_pac_bits(b));
    let keys = PaKeys::from_seed(seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
    let mask = (1u64 << b) - 1;

    let mut stage = |addr: u64| -> u64 {
        let mut guesses = 0u64;
        loop {
            guesses += 1;
            // Each sibling re-seeds its chain: the modifier the token is
            // computed under differs per guess.
            let sibling_modifier: u64 = rng.gen();
            let guess: u64 = rng.gen::<u64>() & mask;
            if pa.compute_pac(&keys, PaKey::Ia, addr, sibling_modifier) == guess {
                return guesses;
            }
        }
    };

    GuessCost {
        stage_one: stage(PIVOT_ADDR),
        stage_two: stage(TARGET_ADDR),
    }
}

/// Averages a per-seed cost function over seeds `0..runs`, fanning the
/// campaigns across the [`pacstack_exec`] worker pool (each campaign is a
/// pure function of its seed, so the mean is identical at any thread
/// count).
pub fn mean_cost<F: Fn(u64) -> u64 + Sync>(runs: u64, f: F) -> f64 {
    use pacstack_exec as exec;
    let run = exec::run_trials(STREAM_MEAN_COST, runs, |i, _rng| f(i));
    exec::stats::record(format!("guessing mean-cost runs={runs}"), run.stats);
    run.results.iter().sum::<u64>() as f64 / runs as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacstack_acs::security;

    #[test]
    fn divide_and_conquer_costs_about_2_to_b() {
        let b = 10;
        let mean = mean_cost(200, |s| divide_and_conquer(b, s).total());
        let expected = security::expected_guesses_shared_key(b); // 2^b
        assert!(
            mean > expected * 0.8 && mean < expected * 1.2,
            "mean {mean} vs expected {expected}"
        );
    }

    #[test]
    fn reseeding_doubles_the_cost() {
        let b = 8;
        let dc = mean_cost(300, |s| divide_and_conquer(b, s).total());
        let rs = mean_cost(300, |s| reseeded(b, s).total());
        let ratio = rs / dc;
        assert!(
            ratio > 1.5 && ratio < 2.6,
            "re-seeding should roughly double the cost: ratio {ratio}"
        );
    }

    #[test]
    fn reseeded_cost_matches_2_to_b_plus_1() {
        let b = 8;
        let mean = mean_cost(400, |s| reseeded(b, s).total());
        let expected = security::expected_guesses_reseeded(b); // 2^(b+1)
        assert!(
            mean > expected * 0.8 && mean < expected * 1.25,
            "mean {mean} vs expected {expected}"
        );
    }

    #[test]
    fn single_process_guessing_is_geometric() {
        let b = 6;
        let mean = mean_cost(400, |s| single_process(b, s));
        let expected = 2f64.powi(b as i32); // geometric mean 2^b
        assert!(
            mean > expected * 0.75 && mean < expected * 1.3,
            "mean {mean} vs expected {expected}"
        );
    }

    #[test]
    fn stages_are_individually_half_the_shared_key_cost() {
        let b = 9;
        let runs = 300;
        let s1 = mean_cost(runs, |s| divide_and_conquer(b, s).stage_one);
        let expected = 2f64.powi(b as i32 - 1); // 2^(b-1)
        assert!(
            s1 > expected * 0.8 && s1 < expected * 1.2,
            "stage one mean {s1} vs expected {expected}"
        );
    }
}
