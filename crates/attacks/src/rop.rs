//! Classic return-oriented-programming attacks on the simulator (paper §2.1).
//!
//! The adversary suspends the victim at a checkpoint inside a function whose
//! frame is live, overwrites a return-address slot (on the main stack or —
//! for the ShadowCallStack variant — on the shadow stack, whose location the
//! paper assumes can leak), and resumes. The outcome classifies how each
//! protection scheme responds.

use pacstack_aarch64::{Cpu, Fault, Reg, RunStatus};
use pacstack_compiler::{frame, lower, FuncDef, Module, Scheme, Stmt};
use std::fmt;

/// Checkpoint number raised inside the victim function.
pub const VICTIM_CHECKPOINT: u16 = 42;
/// Checkpoint number raised by the gadget — observing it means the attack
/// redirected control flow.
pub const GADGET_CHECKPOINT: u16 = 99;

/// What happened after the adversary's write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttackOutcome {
    /// Control flow reached the adversary's gadget.
    Hijacked,
    /// The process crashed (fault) — the protection detected the attack.
    Crashed,
    /// Execution completed normally — the write had no effect.
    Ineffective,
}

impl fmt::Display for AttackOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttackOutcome::Hijacked => f.write_str("hijacked"),
            AttackOutcome::Crashed => f.write_str("crashed"),
            AttackOutcome::Ineffective => f.write_str("ineffective"),
        }
    }
}

/// Where the adversary writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WriteTarget {
    /// The saved-LR slot in the victim's stack frame — the classic ROP
    /// target.
    SavedReturnAddress,
    /// A linear overflow from the local buffer upward through the frame
    /// (clobbers the canary on its way to LR).
    LinearOverflow,
    /// The top entry of the shadow stack (requires knowing its location —
    /// the paper's criticism of software shadow stacks).
    ShadowStackTop,
    /// The spilled chain-register slot in the victim's frame (the only
    /// stack slot PACStack actually consumes).
    ChainSlot,
}

/// The victim: `main` calls `victim`, which pauses at a checkpoint with its
/// frame live. `gadget` is never called legitimately.
fn victim_module() -> Module {
    let mut m = Module::new();
    m.push(FuncDef::new(
        "main",
        vec![
            Stmt::Compute(2),
            Stmt::Call("victim".into()),
            Stmt::Compute(2),
            Stmt::Return,
        ],
    ));
    m.push(FuncDef::new(
        "victim",
        vec![
            Stmt::MemAccess(1),
            Stmt::Checkpoint(VICTIM_CHECKPOINT),
            // A nested call so `victim` is a non-leaf under every heuristic.
            Stmt::Call("helper".into()),
            Stmt::Return,
        ],
    ));
    m.push(FuncDef::new("helper", vec![Stmt::Compute(1), Stmt::Return]));
    m.push(FuncDef::new(
        "gadget",
        vec![Stmt::Checkpoint(GADGET_CHECKPOINT), Stmt::Return],
    ));
    m
}

/// Runs the ROP attack against `scheme` with the given write target.
///
/// # Panics
///
/// Panics if the victim fails to reach its checkpoint (harness bug).
pub fn run_attack(scheme: Scheme, target: WriteTarget) -> AttackOutcome {
    let program = lower(&victim_module(), scheme);
    let mut cpu = Cpu::with_seed(program, 1234);

    // Run to the victim checkpoint.
    let out = cpu
        .run(1_000_000)
        .expect("victim must reach its checkpoint");
    assert_eq!(
        out.status,
        RunStatus::Syscall(VICTIM_CHECKPOINT),
        "missed checkpoint"
    );

    let gadget = cpu.symbol("gadget").expect("gadget exists");
    let sp = cpu.reg(Reg::Sp);
    match target {
        WriteTarget::SavedReturnAddress => {
            cpu.mem_mut()
                .write_u64(sp.wrapping_add(frame::LR_SLOT as u64), gadget)
                .expect("stack is writable");
        }
        WriteTarget::LinearOverflow => {
            // Overwrite every slot from the frame base up to and including LR.
            for off in (0..=frame::LR_SLOT).step_by(8) {
                cpu.mem_mut()
                    .write_u64(sp.wrapping_add(off as u64), gadget)
                    .expect("stack is writable");
            }
        }
        WriteTarget::ShadowStackTop => {
            let shadow_top = cpu.reg(Reg::SCS).wrapping_sub(8);
            if !cpu.mem().is_writable(shadow_top) {
                return AttackOutcome::Ineffective;
            }
            cpu.mem_mut()
                .write_u64(shadow_top, gadget)
                .expect("shadow stack is writable");
        }
        WriteTarget::ChainSlot => {
            cpu.mem_mut()
                .write_u64(sp.wrapping_add(frame::CHAIN_SLOT as u64), gadget)
                .expect("stack is writable");
        }
    }

    // Resume and classify.
    loop {
        match cpu.run(1_000_000) {
            Ok(out) => match out.status {
                RunStatus::Syscall(GADGET_CHECKPOINT) => return AttackOutcome::Hijacked,
                RunStatus::Syscall(_) => continue, // later benign checkpoints
                RunStatus::Exited(code) if code == pacstack_compiler::CANARY_FAIL_EXIT => {
                    return AttackOutcome::Crashed
                }
                RunStatus::Exited(_) => return AttackOutcome::Ineffective,
            },
            Err(Fault::Timeout) => return AttackOutcome::Ineffective,
            Err(_) => return AttackOutcome::Crashed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_is_hijacked_by_lr_overwrite() {
        assert_eq!(
            run_attack(Scheme::Baseline, WriteTarget::SavedReturnAddress),
            AttackOutcome::Hijacked
        );
    }

    #[test]
    fn canary_misses_a_targeted_lr_overwrite() {
        // -mstack-protector-strong only catches *linear* overflows; a
        // precise write past the canary is invisible to it.
        assert_eq!(
            run_attack(Scheme::StackProtector, WriteTarget::SavedReturnAddress),
            AttackOutcome::Hijacked
        );
    }

    #[test]
    fn canary_catches_linear_overflow() {
        assert_eq!(
            run_attack(Scheme::StackProtector, WriteTarget::LinearOverflow),
            AttackOutcome::Crashed
        );
    }

    #[test]
    fn pac_ret_crashes_on_lr_overwrite() {
        assert_eq!(
            run_attack(Scheme::PacRet, WriteTarget::SavedReturnAddress),
            AttackOutcome::Crashed
        );
    }

    #[test]
    fn shadow_stack_ignores_main_stack_overwrite() {
        // The return address authority is the shadow copy; the main-stack
        // write is dead.
        assert_eq!(
            run_attack(Scheme::ShadowCallStack, WriteTarget::SavedReturnAddress),
            AttackOutcome::Ineffective
        );
    }

    #[test]
    fn shadow_stack_is_hijacked_once_its_location_leaks() {
        // The paper's argument for ACS over software shadow stacks: an
        // adversary who learns the shadow stack's address owns the returns.
        assert_eq!(
            run_attack(Scheme::ShadowCallStack, WriteTarget::ShadowStackTop),
            AttackOutcome::Hijacked
        );
    }

    #[test]
    fn pacstack_ignores_frame_record_overwrite() {
        // PACStack never loads the frame-record return address.
        for scheme in [Scheme::PacStack, Scheme::PacStackNomask] {
            assert_eq!(
                run_attack(scheme, WriteTarget::SavedReturnAddress),
                AttackOutcome::Ineffective,
                "{scheme}"
            );
        }
    }

    #[test]
    fn pacstack_crashes_on_chain_slot_tamper() {
        for scheme in [Scheme::PacStack, Scheme::PacStackNomask] {
            assert_eq!(
                run_attack(scheme, WriteTarget::ChainSlot),
                AttackOutcome::Crashed,
                "{scheme}"
            );
        }
    }

    #[test]
    fn baseline_linear_overflow_hijacks() {
        assert_eq!(
            run_attack(Scheme::Baseline, WriteTarget::LinearOverflow),
            AttackOutcome::Hijacked
        );
    }
}
