//! Adversary simulations for the PACStack security evaluation.
//!
//! Each module reproduces one of the attack classes the paper analyses,
//! under the paper's adversary model: arbitrary read/write of data memory,
//! no access to code pages (W⊕X), registers or PA keys.
//!
//! | Module | Paper section | What it shows |
//! |---|---|---|
//! | [`rop`] | §2.1 | Plain return-address overwrites succeed on unprotected binaries and how each scheme responds |
//! | [`reuse`] | §2.2.1, Listing 6 | Signed-return-address *reuse* defeats `-mbranch-protection` but not PACStack |
//! | [`collision`] | §6.2.1 | On-graph collision harvesting: birthday-bound success without masking, 2⁻ᵇ with masking |
//! | [`offgraph`] | §6.2.2 | Off-graph violations: 2⁻ᵇ to a call site, 2⁻²ᵇ to an arbitrary address |
//! | [`guessing`] | §4.3 | Brute force against forked siblings: divide-and-conquer (2ᵇ) vs re-seeded chains (2ᵇ⁺¹) |
//! | [`gadget`] | §6.3.1, Listings 7–8 | The Project-Zero signing gadget and why PACStack's tail calls resist it |
//! | [`online`] | §4.3 + §6.2.2 | End-to-end brute force against the full simulated system |
//!
//! Monte Carlo experiments run at reduced PAC widths (`b` ∈ 3..8) so
//! success probabilities of order 2⁻ᵇ and 2⁻²ᵇ are measurable in sensible
//! trial counts; the analytic bounds in [`pacstack_acs::security`] scale
//! the results back to the deployed `b = 16`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collision;
pub mod gadget;
pub mod guessing;
pub mod offgraph;
pub mod online;
pub mod reuse;
pub mod rop;

use pacstack_pauth::VaLayout;

/// Returns a [`VaLayout`] whose PAC field is exactly `b` bits wide, used to
/// scale Monte Carlo experiments.
///
/// # Panics
///
/// Panics for `b` outside `3..=19` (the range reachable with tagged
/// layouts).
///
/// # Examples
///
/// ```
/// use pacstack_attacks::layout_with_pac_bits;
///
/// assert_eq!(layout_with_pac_bits(8).pac_bits(), 8);
/// assert_eq!(layout_with_pac_bits(16).pac_bits(), 16);
/// ```
pub fn layout_with_pac_bits(b: u32) -> VaLayout {
    assert!((3..=19).contains(&b), "b must be within 3..=19, got {b}");
    // Tagged layouts give pac_bits = 55 - va_size.
    VaLayout::new(55 - b, true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pac_width_scaling_covers_experiment_range() {
        for b in 3..=19 {
            assert_eq!(layout_with_pac_bits(b).pac_bits(), b);
        }
    }

    #[test]
    #[should_panic(expected = "b must be within")]
    fn rejects_unreachable_width() {
        let _ = layout_with_pac_bits(2);
    }
}
