//! End-to-end online brute force against the *simulated system* (§4.3 meets
//! §6.2.2): the adversary repeatedly crashes and restarts the victim
//! process, guessing forged chain values, until a return lands on their
//! gadget.
//!
//! Unlike [`crate::guessing`] (which works against the MAC primitive
//! directly), this module drives the full stack — compiler-emitted
//! instrumentation on the CPU model — so the measured costs include every
//! systems detail: masking, the error-bit fault path and key regeneration
//! on restart.

use crate::layout_with_pac_bits;
use pacstack_aarch64::{CostModel, Cpu, Fault, Reg, RunStatus};
use pacstack_compiler::{frame, lower, FuncDef, Module, Scheme, Stmt};
use pacstack_pauth::{PaKeys, PointerAuth};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const VICTIM_CHECKPOINT: u16 = 42;
const GADGET_CHECKPOINT: u16 = 99;

fn victim_module() -> Module {
    let mut m = Module::new();
    m.push(FuncDef::new(
        "main",
        vec![Stmt::Call("victim".into()), Stmt::Return],
    ));
    m.push(FuncDef::new(
        "victim",
        vec![
            Stmt::Checkpoint(VICTIM_CHECKPOINT),
            Stmt::Call("noop".into()),
            Stmt::Return,
        ],
    ));
    m.push(FuncDef::new("noop", vec![Stmt::Compute(1), Stmt::Return]));
    m.push(FuncDef::new(
        "gadget",
        vec![Stmt::Checkpoint(GADGET_CHECKPOINT), Stmt::Return],
    ));
    m
}

/// Result of a brute-force campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BruteForceResult {
    /// Process launches (= crashes + the final success, if any).
    pub attempts: u64,
    /// Whether the gadget was reached within the attempt budget.
    pub succeeded: bool,
}

/// Runs the online attack at PAC width `b` under `scheme` (a PACStack
/// variant): per process launch, forge the victim's chain slot *and*
/// main's chain slot with guessed tokens aimed at the gadget, resume, and
/// observe. Every failure crashes the process; the restart draws fresh PA
/// keys (the §4.3 single-process setting, expected cost 2²ᵇ launches).
pub fn bruteforce_to_gadget(
    scheme: Scheme,
    b: u32,
    max_attempts: u64,
    seed: u64,
) -> BruteForceResult {
    let mut rng = StdRng::seed_from_u64(seed);
    let program = lower(&victim_module(), scheme);
    let layout = layout_with_pac_bits(b);
    let pa = PointerAuth::new(layout);
    let mask = (1u64 << b) - 1;

    for attempt in 1..=max_attempts {
        // Fresh process: new keys on exec.
        let keys = PaKeys::from_seed(rng.gen());
        let mut cpu = Cpu::with_parts(program.clone(), keys, pa, CostModel::default());
        let out = cpu.run(100_000).expect("victim reaches checkpoint");
        assert_eq!(out.status, RunStatus::Syscall(VICTIM_CHECKPOINT));

        let gadget = cpu.symbol("gadget").expect("gadget exists");
        let sp = cpu.reg(Reg::Sp);
        // Stage guesses: victim's chain slot becomes a forged authenticated
        // pointer at the gadget; main's chain slot gets an arbitrary value
        // the second verification is guessed against.
        let forged = layout.insert_pac(gadget, rng.gen::<u64>() & mask);
        cpu.mem_mut()
            .write_u64(sp + frame::CHAIN_SLOT as u64, forged)
            .expect("stack writable");

        loop {
            match cpu.run(100_000) {
                Ok(out) => match out.status {
                    RunStatus::Syscall(GADGET_CHECKPOINT) => {
                        return BruteForceResult {
                            attempts: attempt,
                            succeeded: true,
                        }
                    }
                    RunStatus::Syscall(_) => continue,
                    RunStatus::Exited(_) => break, // forgery diverted nothing
                },
                Err(Fault::Timeout) => break,
                Err(_) => break, // crash: one spent attempt
            }
        }
    }
    BruteForceResult {
        attempts: max_attempts,
        succeeded: false,
    }
}

/// Mean launches until success across `campaigns` independent campaigns,
/// run across the [`pacstack_exec`] worker pool (each campaign's seed is a
/// pure function of its index, so the mean is thread-count independent).
pub fn mean_attempts(scheme: Scheme, b: u32, campaigns: u64, seed: u64) -> f64 {
    use pacstack_exec as exec;
    let run = exec::run_trials(seed ^ 0x0911_11E5_B4F0_0004, campaigns, |i, _rng| {
        bruteforce_to_gadget(scheme, b, u64::MAX, seed ^ (i * 0x9E37_79B9)).attempts
    });
    exec::stats::record(format!("online brute-force {scheme} b={b}"), run.stats);
    run.results.iter().sum::<u64>() as f64 / campaigns as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_attack_succeeds_eventually_at_tiny_pac_width() {
        // b = 3: the full attack needs two correct guesses ⇒ mean 2^6 = 64
        // launches. The chain slot forgery only controls the first hop; the
        // second verification happens against main's genuine seed chain, so
        // success requires H(gadget, seed)(fresh key) to match the guessed
        // token — still 2^-b.
        let result = bruteforce_to_gadget(Scheme::PacStack, 3, 20_000, 7);
        assert!(
            result.succeeded,
            "no success in {} attempts",
            result.attempts
        );
        assert!(result.attempts > 1, "first-try success is suspicious");
    }

    #[test]
    fn mean_attempts_scale_with_two_to_2b() {
        let b = 3;
        let mean = mean_attempts(Scheme::PacStack, b, 12, 99);
        let expected = 4f64.powi(b as i32); // 2^(2b) = 64
        assert!(
            mean > expected * 0.3 && mean < expected * 3.0,
            "mean {mean} vs expected ~{expected}"
        );
    }

    #[test]
    fn deployed_width_resists_a_realistic_budget() {
        // At b = 16 the expected cost is 2^32 launches; a 300-launch
        // campaign must fail.
        let result = bruteforce_to_gadget(Scheme::PacStack, 16, 300, 5);
        assert!(!result.succeeded);
        assert_eq!(result.attempts, 300);
    }
}
