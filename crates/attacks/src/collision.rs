//! On-graph collision attacks against the ACS chain (paper §6.2.1).
//!
//! The adversary drives the victim through many distinct call paths to the
//! same function `C`; each path `i` leaves a chain head `h_i` on the stack
//! and — once `C` calls a further "loader" function — also spills `C`'s own
//! authenticated return address `aret_C^i = pac(ret_C, h_i)`. Two paths
//! whose *unmasked* tokens collide give the adversary a substitution that
//! always verifies. Masking hides which spills collide, forcing a blind
//! guess that succeeds with probability 2⁻ᵇ.

use crate::layout_with_pac_bits;
use pacstack_acs::{AcsConfig, AuthenticatedCallStack, Masking};
use pacstack_exec as exec;
use pacstack_pauth::{PaKeys, PointerAuth};
use rand::Rng;
use std::collections::HashMap;

/// RNG-stream tag for [`on_graph_attack`] trials.
const STREAM_ON_GRAPH: u64 = 0x0C01_1151_04C4_2A71;

/// Return address of the target function `C` (a call site in the victim).
const RET_C: u64 = 0x40_1000;
/// Return address of the loader call inside `C`.
const RET_LOADER: u64 = 0x40_2000;
/// Base of the per-path return addresses.
const PATH_BASE: u64 = 0x41_0000;

/// Aggregate result of a Monte Carlo attack run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonteCarlo {
    /// Number of attack attempts.
    pub trials: u64,
    /// Number of successful call-stack integrity violations.
    pub successes: u64,
}

impl MonteCarlo {
    /// Empirical success rate.
    pub fn rate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.successes as f64 / self.trials as f64
        }
    }

    /// 95% Wilson score interval for the success rate — robust for the
    /// small rates (2⁻ᵇ, 2⁻²ᵇ) these experiments estimate.
    pub fn wilson_interval(&self) -> (f64, f64) {
        if self.trials == 0 {
            return (0.0, 1.0);
        }
        let n = self.trials as f64;
        let p = self.rate();
        let z = 1.96f64;
        let z2 = z * z;
        let denom = 1.0 + z2 / n;
        let centre = (p + z2 / (2.0 * n)) / denom;
        let margin = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
        ((centre - margin).max(0.0), (centre + margin).min(1.0))
    }

    /// Whether `value` lies within the 95% Wilson interval.
    pub fn consistent_with(&self, value: f64) -> bool {
        let (lo, hi) = self.wilson_interval();
        (lo..=hi).contains(&value)
    }
}

/// Result of one collision harvest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Harvest {
    /// Tokens observed before the first collision (∞-free: capped by the
    /// caller's budget).
    pub tokens: u64,
    /// The two path indices whose spilled tokens matched.
    pub pair: (u64, u64),
}

fn acs_for(b: u32, masking: Masking, seed: u64) -> AuthenticatedCallStack {
    AuthenticatedCallStack::new(
        PointerAuth::new(layout_with_pac_bits(b)),
        PaKeys::from_seed(seed),
        AcsConfig::default().masking(masking),
    )
}

/// Drives path `i` up to the point where `C`'s token is spilled, returning
/// the observable stack state: (`h_i`, spilled `aret_C^i`).
fn drive_path(acs: &mut AuthenticatedCallStack, path: u64) -> (u64, u64) {
    acs.call(PATH_BASE + path * 4); // the path-distinguishing activation
    acs.call(RET_C); // enter C
    acs.call(RET_LOADER); // C calls the loader → CR (aret_C) is spilled
    let h = acs.frames()[1].stored_chain;
    let spilled = acs.frames()[2].stored_chain;
    (h, spilled)
}

/// Unwinds a fully-driven path (inverse of [`drive_path`]).
fn unwind_path(acs: &mut AuthenticatedCallStack) {
    for _ in 0..3 {
        acs.ret().expect("benign unwind must verify");
    }
}

/// Harvests spilled tokens over distinct paths until two collide, as the
/// §6.2.1 adversary does against the *unmasked* scheme.
///
/// Returns `None` if no collision shows up within `budget` paths.
pub fn harvest_until_collision(
    b: u32,
    masking: Masking,
    seed: u64,
    budget: u64,
) -> Option<Harvest> {
    let mut acs = acs_for(b, masking, seed);
    let mut seen: HashMap<u64, (u64, u64)> = HashMap::new();
    for path in 0..budget {
        let (h, spilled) = drive_path(&mut acs, path);
        unwind_path(&mut acs);
        if let Some(&(prev_path, prev_h)) = seen.get(&spilled) {
            if prev_h != h {
                return Some(Harvest {
                    tokens: path + 1,
                    pair: (prev_path, path),
                });
            }
        } else {
            seen.insert(spilled, (path, h));
        }
    }
    None
}

/// The full on-graph attack:
///
/// * **Unmasked**: harvest until a collision, then substitute the colliding
///   chain head — verification passes deterministically.
/// * **Masked**: collisions are invisible; the adversary substitutes the
///   chain head of a random other path and hopes (2⁻ᵇ).
///
/// Each trial uses a fresh key (a fresh victim process). Trials fan out
/// across the [`pacstack_exec`] worker pool; every trial's randomness comes
/// from its own `(experiment, index)` stream, so the result is identical at
/// any thread count.
pub fn on_graph_attack(b: u32, masking: Masking, trials: u64, seed: u64) -> MonteCarlo {
    // Pool of paths the adversary may harvest per process.
    let pool: u64 = 4 * (1u64 << (b / 2 + 2));

    let (successes, stats) = exec::count_trials(seed ^ STREAM_ON_GRAPH, trials, |trial, rng| {
        let process_seed = rng.gen();
        match masking {
            Masking::Unmasked => {
                if let Some(harvest) = harvest_until_collision(b, masking, process_seed, pool) {
                    // Replay the first colliding path, substitute the second's
                    // chain head, and return through C.
                    let mut acs = acs_for(b, masking, process_seed);
                    let (_, _) = drive_path(&mut acs, harvest.pair.0);
                    let (h_other, _) = {
                        // Recompute the other path's chain head without
                        // disturbing the live chain.
                        let mut probe = acs_for(b, masking, process_seed);
                        let (h, _) = drive_path(&mut probe, harvest.pair.1);
                        (h, ())
                    };
                    acs.ret().expect("loader returns cleanly");
                    acs.frames_mut()[1].stored_chain = h_other;
                    acs.ret().is_ok()
                } else {
                    false
                }
            }
            Masking::Masked => {
                let mut acs = acs_for(b, masking, process_seed);
                // Harvest a victim path and one decoy path the adversary
                // hopes collides.
                let decoy = trial % 16 + 1;
                let mut probe = acs_for(b, masking, process_seed);
                let (h_decoy, _) = drive_path(&mut probe, 1000 + decoy);
                drive_path(&mut acs, 0);
                acs.ret().expect("loader returns cleanly");
                acs.frames_mut()[1].stored_chain = h_decoy;
                acs.ret().is_ok()
            }
        }
    });
    exec::stats::record(format!("on-graph b={b} {masking}"), stats);
    MonteCarlo { trials, successes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacstack_acs::security;

    #[test]
    fn unmasked_collisions_appear_near_the_birthday_bound() {
        let b = 8;
        let expected = security::expected_tokens_until_collision(b); // ≈ 20
        let mut total = 0u64;
        let runs = 40;
        for seed in 0..runs {
            let harvest = harvest_until_collision(b, Masking::Unmasked, seed, 10_000)
                .expect("collision must appear well before 10k paths");
            total += harvest.tokens;
        }
        let mean = total as f64 / runs as f64;
        assert!(
            mean > expected * 0.6 && mean < expected * 1.6,
            "mean {mean} vs birthday bound {expected}"
        );
    }

    #[test]
    fn unmasked_on_graph_attack_always_succeeds_after_collision() {
        let result = on_graph_attack(6, Masking::Unmasked, 30, 99);
        // Table 1: probability 1 once a collision is found; every trial
        // that found a collision within the pool must succeed.
        assert!(
            result.rate() > 0.9,
            "unmasked on-graph success rate only {}",
            result.rate()
        );
    }

    #[test]
    fn masked_on_graph_attack_succeeds_at_two_to_minus_b() {
        let b = 4;
        let result = on_graph_attack(b, Masking::Masked, 4_000, 7);
        let expected = 2f64.powi(-(b as i32));
        assert!(
            result.rate() < expected * 3.0 + 0.01,
            "masked rate {} far exceeds 2^-{b} = {expected}",
            result.rate()
        );
        // And it is not identically zero at this width / trial count...
        // (probabilistic; 4000 trials at 1/16 ⇒ ~250 expected successes).
        assert!(
            result.successes > 50,
            "suspiciously few successes: {}",
            result.successes
        );
    }

    #[test]
    fn masked_spills_hide_collisions() {
        // Even when unmasked tokens collide, the masked spills differ.
        let b = 6;
        let harvest = harvest_until_collision(b, Masking::Unmasked, 5, 10_000).unwrap();
        let mut unmasked = acs_for(b, Masking::Unmasked, 5);
        let mut masked = acs_for(b, Masking::Masked, 5);
        let (_, spill_a_unmasked) = drive_path(&mut unmasked, harvest.pair.0);
        let (_, spill_a_masked) = drive_path(&mut masked, harvest.pair.0);
        unwind_path(&mut unmasked);
        unwind_path(&mut masked);
        let (_, spill_b_unmasked) = drive_path(&mut unmasked, harvest.pair.1);
        let (_, spill_b_masked) = drive_path(&mut masked, harvest.pair.1);
        assert_eq!(
            spill_a_unmasked, spill_b_unmasked,
            "harvest said these collide"
        );
        assert_ne!(
            spill_a_masked, spill_b_masked,
            "masking failed to hide the collision"
        );
    }
}
