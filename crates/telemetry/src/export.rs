//! Exporters: Prometheus text dump, Chrome `trace.json`, collapsed-stack
//! flamegraph text.
//!
//! Every exporter is a pure function of a [`Merged`] snapshot, iterates
//! only sorted collections, and formats with exact integer arithmetic —
//! so equal snapshots always render to byte-identical artifacts, which is
//! what the CI golden-diff and the jobs-1-vs-4 determinism tests rely on.

use std::fmt::Write as _;

use crate::recorder::Merged;

/// Renders counters and histograms in Prometheus text exposition format.
///
/// Counter names may carry inline label sets (`cpu_insns_total{class="x"}`)
/// which pass through verbatim. Histograms render as cumulative `_bucket`
/// rows with log2 `le` edges, plus `_sum` and `_count`.
pub fn prometheus(merged: &Merged) -> String {
    let mut out = String::new();
    for (name, value) in &merged.counters {
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, hist) in &merged.histograms {
        for (edge, cumulative) in hist.cumulative() {
            let _ = writeln!(out, "{name}_bucket{{le=\"{edge}\"}} {cumulative}");
        }
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", hist.count());
        let _ = writeln!(out, "{name}_sum {}", hist.sum());
        let _ = writeln!(out, "{name}_count {}", hist.count());
    }
    out
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders spans as a Chrome trace-event JSON document (open with
/// `chrome://tracing` or Perfetto). Each distinct track becomes a thread
/// row: a `thread_name` metadata event plus `ph:"X"` complete events whose
/// `ts`/`dur` are simulated cycles presented as microseconds.
pub fn chrome_json(merged: &Merged) -> String {
    let mut tracks: Vec<&str> = merged.spans.iter().map(|s| s.track.as_str()).collect();
    tracks.sort_unstable();
    tracks.dedup();

    let tid = |track: &str| -> usize {
        tracks
            .binary_search(&track)
            .map(|i| i + 1)
            .unwrap_or(usize::MAX)
    };

    let mut events = Vec::with_capacity(tracks.len() + merged.spans.len());
    for (i, track) in tracks.iter().enumerate() {
        events.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\"args\":{{\"name\":\"{}\"}}}}",
            i + 1,
            json_escape(track)
        ));
    }
    for span in &merged.spans {
        events.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{}}}",
            json_escape(&span.name),
            json_escape(span.cat),
            tid(&span.track),
            span.start,
            span.dur
        ));
    }

    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    for (i, event) in events.iter().enumerate() {
        out.push_str(event);
        if i + 1 < events.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]}\n");
    out
}

/// Renders collapsed call stacks in flamegraph.pl input format: one
/// `frame;frame;frame count` line per stack, sorted by stack.
pub fn flame(merged: &Merged) -> String {
    let mut out = String::new();
    for (stack, cycles) in &merged.stacks {
        let _ = writeln!(out, "{stack} {cycles}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::CycleHistogram;
    use crate::span::SpanEvent;

    fn sample() -> Merged {
        let mut merged = Merged::default();
        merged.counters.insert("b_total".into(), 2);
        merged.counters.insert("a_total{k=\"v\"}".into(), 1);
        let mut h = CycleHistogram::new();
        h.observe(3);
        h.observe(200);
        merged.histograms.insert("lat_cycles".into(), h);
        merged.stacks.insert("t;main;f".into(), 40);
        merged.stacks.insert("t;main".into(), 10);
        merged
            .spans
            .push(SpanEvent::new("t", "main", "test", 0, 50));
        merged.spans.push(SpanEvent::new("t", "f", "test", 5, 40));
        merged
    }

    #[test]
    fn prometheus_is_sorted_and_complete() {
        let text = prometheus(&sample());
        let a = text.find("a_total").unwrap_or(usize::MAX);
        let b = text.find("b_total").unwrap_or(usize::MAX);
        assert!(a < b, "{text}");
        assert!(text.contains("lat_cycles_bucket{le=\"+Inf\"} 2"), "{text}");
        assert!(text.contains("lat_cycles_sum 203"), "{text}");
        assert!(text.contains("lat_cycles_count 2"), "{text}");
    }

    #[test]
    fn chrome_json_has_thread_metadata_and_events() {
        let json = chrome_json(&sample());
        assert!(json.contains("\"thread_name\""), "{json}");
        assert!(json.contains("\"ph\":\"X\""), "{json}");
        assert!(json.contains("\"ts\":5"), "{json}");
        assert!(json.ends_with("]}\n"), "{json}");
    }

    #[test]
    fn flame_lines_are_stack_then_cycles() {
        let text = flame(&sample());
        assert_eq!(text, "t;main 10\nt;main;f 40\n");
    }

    #[test]
    fn json_escaping_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
    }
}
