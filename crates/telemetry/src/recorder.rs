//! The [`Sink`] trait, the per-task [`Recorder`], and the merged view.

use std::collections::BTreeMap;

use crate::metrics::CycleHistogram;
use crate::span::SpanEvent;

/// Destination for telemetry records. Instrumentation sites are written
/// against this trait so tests can capture into a local recorder while
/// production code records through the thread-local scope machinery in the
/// crate root.
pub trait Sink {
    /// Adds `delta` to the named monotonic counter.
    fn counter(&mut self, name: &str, delta: u64);
    /// Records one observation into the named cycle-domain histogram.
    fn observe_cycles(&mut self, name: &str, cycles: u64);
    /// Records a completed span.
    fn span(&mut self, event: SpanEvent);
    /// Adds `self_cycles` to a semicolon-collapsed call-stack line.
    fn stack(&mut self, frames: &str, self_cycles: u64);
}

/// A single task's (or thread's) private record buffer. Never shared:
/// each trial gets a fresh one, so recording takes no locks; the engine
/// merges it into the global store when the trial completes.
#[derive(Default, Debug)]
pub struct Recorder {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, CycleHistogram>,
    stacks: BTreeMap<String, u64>,
    spans: Vec<SpanEvent>,
}

impl Recorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// True when nothing has been recorded (skips a store lock on merge).
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.histograms.is_empty()
            && self.stacks.is_empty()
            && self.spans.is_empty()
    }

    /// Decomposes the recorder for merging into the global store.
    #[allow(clippy::type_complexity)]
    pub fn into_parts(
        self,
    ) -> (
        BTreeMap<String, u64>,
        BTreeMap<String, CycleHistogram>,
        BTreeMap<String, u64>,
        Vec<SpanEvent>,
    ) {
        (self.counters, self.histograms, self.stacks, self.spans)
    }
}

impl Sink for Recorder {
    fn counter(&mut self, name: &str, delta: u64) {
        if let Some(v) = self.counters.get_mut(name) {
            *v += delta;
        } else {
            self.counters.insert(name.to_owned(), delta);
        }
    }

    fn observe_cycles(&mut self, name: &str, cycles: u64) {
        if let Some(h) = self.histograms.get_mut(name) {
            h.observe(cycles);
        } else {
            let mut h = CycleHistogram::new();
            h.observe(cycles);
            self.histograms.insert(name.to_owned(), h);
        }
    }

    fn span(&mut self, event: SpanEvent) {
        self.spans.push(event);
    }

    fn stack(&mut self, frames: &str, self_cycles: u64) {
        if let Some(v) = self.stacks.get_mut(frames) {
            *v += self_cycles;
        } else {
            self.stacks.insert(frames.to_owned(), self_cycles);
        }
    }
}

/// The deterministic merged view returned by [`crate::snapshot`]: sorted
/// maps for all commutative aggregates, spans in task-key order. The
/// exporters in [`crate::export`] render this and nothing else, so two
/// equal `Merged` values always produce byte-identical artifacts.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Merged {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Cycle histograms by name.
    pub histograms: BTreeMap<String, CycleHistogram>,
    /// Collapsed call stacks (`track;f;g`) to self-cycles.
    pub stacks: BTreeMap<String, u64>,
    /// Spans in `(invocation, task)` order.
    pub spans: Vec<SpanEvent>,
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    #[test]
    fn recorder_accumulates() {
        let mut r = Recorder::new();
        assert!(r.is_empty());
        r.counter("a_total", 1);
        r.counter("a_total", 2);
        r.observe_cycles("lat", 9);
        r.stack("t;f", 4);
        r.stack("t;f", 6);
        r.span(SpanEvent::new("t", "f", "test", 0, 10));
        assert!(!r.is_empty());
        let (counters, histograms, stacks, spans) = r.into_parts();
        assert_eq!(counters["a_total"], 3);
        assert_eq!(histograms["lat"].count(), 1);
        assert_eq!(stacks["t;f"], 10);
        assert_eq!(spans.len(), 1);
    }
}
