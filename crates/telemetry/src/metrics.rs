//! Cycle-domain histograms.
//!
//! The histogram is the only aggregate in the subsystem that is not a plain
//! sum, so it is built to merge commutatively: fixed power-of-two buckets,
//! a count and a cycle sum. Merging two histograms in either order yields
//! identical bytes in every exporter, which is what lets worker threads
//! record independently and still produce deterministic output.

/// Number of buckets: one per possible bit-length of a `u64` value, plus
/// one for zero.
pub const BUCKETS: usize = 65;

/// A histogram over simulated-cycle observations with log2 bucket edges.
///
/// Bucket `i` holds observations whose bit length is `i` (bucket 0 holds
/// exactly the value 0, bucket 1 holds 1, bucket 2 holds 2..=3, and so on).
/// All operations are exact integer arithmetic; merge is commutative and
/// associative.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CycleHistogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
}

impl Default for CycleHistogram {
    fn default() -> Self {
        Self {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl CycleHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bucket index for a cycle value: its bit length.
    #[inline]
    pub fn bucket_index(cycles: u64) -> usize {
        (64 - cycles.leading_zeros()) as usize
    }

    /// Inclusive upper edge of bucket `i` (`u64::MAX` for the last bucket).
    pub fn bucket_edge(i: usize) -> u64 {
        if i == 0 {
            0
        } else if i >= 64 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, cycles: u64) {
        self.buckets[Self::bucket_index(cycles)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(cycles);
    }

    /// Adds every observation of `other` into `self`.
    pub fn merge(&mut self, other: &Self) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observed cycle values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Raw bucket counts, lowest edge first.
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.buckets
    }

    /// True when nothing has been observed.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Iterates `(inclusive_upper_edge, cumulative_count)` over the buckets
    /// that are needed to describe the data: every bucket up to and
    /// including the highest non-empty one. Exporters render these as
    /// Prometheus `le`-style cumulative buckets.
    pub fn cumulative(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        let highest = self.buckets.iter().rposition(|&c| c > 0).unwrap_or(0);
        self.buckets[..=highest]
            .iter()
            .enumerate()
            .scan(0u64, |acc, (i, &c)| {
                *acc += c;
                Some((Self::bucket_edge(i), *acc))
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_indexing() {
        assert_eq!(CycleHistogram::bucket_index(0), 0);
        assert_eq!(CycleHistogram::bucket_index(1), 1);
        assert_eq!(CycleHistogram::bucket_index(2), 2);
        assert_eq!(CycleHistogram::bucket_index(3), 2);
        assert_eq!(CycleHistogram::bucket_index(4), 3);
        assert_eq!(CycleHistogram::bucket_index(u64::MAX), 64);
    }

    #[test]
    fn merge_is_commutative() {
        let mut a = CycleHistogram::new();
        let mut b = CycleHistogram::new();
        for v in [0u64, 1, 5, 200, 4096] {
            a.observe(v);
        }
        for v in [3u64, 3, 7, 1_000_000] {
            b.observe(v);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.count(), 9);
    }

    #[test]
    fn cumulative_covers_through_highest_bucket() {
        let mut h = CycleHistogram::new();
        h.observe(0);
        h.observe(6); // bucket 3 (edge 7)
        let rows: Vec<(u64, u64)> = h.cumulative().collect();
        assert_eq!(rows, vec![(0, 1), (1, 1), (3, 1), (7, 2)]);
    }
}
