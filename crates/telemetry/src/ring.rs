//! A bounded, generic most-recent-entries ring buffer.
//!
//! Generalises the CPU execution-trace buffer that used to live in
//! `pacstack_aarch64::trace`: any `Display`-able entry type gets the same
//! keep-the-tail semantics and the same "... N earlier entries elided ..."
//! rendering. Entries are stored contiguously so `entries()` can hand out
//! a plain slice, which keeps the migrated `Trace` API source-compatible.

use std::fmt;

/// A bounded buffer keeping the most recent `capacity` entries.
///
/// # Examples
///
/// ```
/// use pacstack_telemetry::Ring;
///
/// let mut ring: Ring<u64> = Ring::new(2);
/// for i in 0..4 {
///     ring.record(i);
/// }
/// assert_eq!(ring.entries(), &[2, 3]);
/// assert_eq!(ring.dropped(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Ring<T> {
    entries: Vec<T>,
    capacity: usize,
    dropped: u64,
}

impl<T> Ring<T> {
    /// Creates a ring holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        Self {
            entries: Vec::new(),
            capacity,
            dropped: 0,
        }
    }

    /// Records one entry, evicting the oldest if full.
    pub fn record(&mut self, entry: T) {
        if self.entries.len() == self.capacity {
            self.entries.remove(0);
            self.dropped += 1;
        }
        self.entries.push(entry);
    }

    /// The retained entries, oldest first.
    pub fn entries(&self) -> &[T] {
        &self.entries
    }

    /// How many entries were evicted.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl<T: fmt::Display> fmt::Display for Ring<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.dropped > 0 {
            writeln!(f, "... {} earlier instructions elided ...", self.dropped)?;
        }
        for entry in &self.entries {
            writeln!(f, "{entry}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_oldest_and_counts_drops() {
        let mut ring: Ring<u32> = Ring::new(3);
        for i in 0..10 {
            ring.record(i);
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 7);
        assert_eq!(ring.entries(), &[7, 8, 9]);
    }

    #[test]
    fn display_elides_dropped_entries() {
        let mut ring: Ring<u32> = Ring::new(1);
        ring.record(1);
        ring.record(2);
        let text = ring.to_string();
        assert!(
            text.contains("... 1 earlier instructions elided ..."),
            "{text}"
        );
        assert!(text.contains('2'), "{text}");
    }
}
