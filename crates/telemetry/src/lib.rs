//! Deterministic cycle-domain telemetry.
//!
//! Every other crate in the workspace emits observability data through this
//! one: retired-instruction mixes and PAC-memo statistics from the CPU
//! model, per-key PAC computes from the PA unit, injection-window occupancy
//! and outcome latencies from the chaos engine, and per-function cycle
//! attribution from the workload models. Two properties make it usable in a
//! repository whose experiment outputs are byte-compared in CI:
//!
//! * **Zero overhead when disabled.** The subsystem is off by default;
//!   every hook guards on [`enabled`], a single relaxed atomic load, and
//!   records nothing (and allocates nothing) until a driver calls
//!   [`enable`].
//! * **Deterministic at any thread count.** All quantities are clocked on
//!   *simulated cycles*, never wall time, and recording is task-scoped:
//!   the experiment engine wraps each trial in [`in_task`], which gives the
//!   trial a fresh thread-local [`Recorder`] and merges it into the global
//!   store keyed by `(engine-invocation, trial-index)`. Counter, histogram
//!   and stack merges are commutative sums; span events are replayed in
//!   task-key order at [`snapshot`] time. The merged view — and therefore
//!   every exported artifact — is byte-identical whether the trials ran on
//!   one worker or sixteen.
//!
//! # Examples
//!
//! ```
//! use pacstack_telemetry as telemetry;
//!
//! telemetry::reset();
//! telemetry::enable();
//! telemetry::counter("demo_events_total", 2);
//! telemetry::observe_cycles("demo_latency_cycles", 17);
//! telemetry::disable();
//!
//! let merged = telemetry::snapshot();
//! assert_eq!(merged.counters["demo_events_total"], 2);
//! assert_eq!(merged.histograms["demo_latency_cycles"].count(), 1);
//! telemetry::reset();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// The fault-injection harness requires the whole observability path to be
// panic-free: telemetry must never be able to kill a host process.
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod export;
pub mod metrics;
pub mod recorder;
pub mod ring;
pub mod span;

pub use metrics::CycleHistogram;
pub use recorder::{Merged, Recorder, Sink};
pub use ring::Ring;
pub use span::SpanEvent;

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

// ---------------------------------------------------------------------------
// Global enablement
// ---------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether telemetry is currently recording. One relaxed atomic load — the
/// entire disabled-path cost of every instrumentation hook.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns recording on. Hooks throughout the workspace start feeding the
/// thread-local recorders.
pub fn enable() {
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turns recording off. Already-recorded data stays until [`reset`].
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

// ---------------------------------------------------------------------------
// Task ordering
// ---------------------------------------------------------------------------

/// Orders engine invocations and ambient flushes. Assigned on the driver
/// thread in call order, so the keys — and the span replay order derived
/// from them — are a pure function of the program, not of scheduling.
static ORDER: AtomicU64 = AtomicU64::new(0);

/// Key a merged task record is sorted by: `(invocation order, task index)`.
pub type TaskKey = (u64, u64);

/// Claims the next invocation-order slot for an engine call that is about
/// to fan tasks out. Returns `None` when telemetry is disabled, so the
/// disabled path performs no atomic writes.
pub fn begin_invocation() -> Option<u64> {
    if !enabled() {
        return None;
    }
    Some(ORDER.fetch_add(1, Ordering::SeqCst))
}

// ---------------------------------------------------------------------------
// Thread-local recorders and the global store
// ---------------------------------------------------------------------------

thread_local! {
    /// Scope stack: the innermost open task's recorder, over the thread's
    /// ambient recorder (index 0 conceptually; materialised lazily).
    static SCOPES: RefCell<Vec<Recorder>> = const { RefCell::new(Vec::new()) };
    /// Records made outside any task scope on this thread.
    static AMBIENT: RefCell<Recorder> = RefCell::new(Recorder::default());
}

/// The process-global merged store. Commutative data (counters, histograms,
/// collapsed stacks) merges eagerly; span batches keep their task key so
/// [`snapshot`] can replay them in deterministic order.
struct Store {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, CycleHistogram>,
    stacks: BTreeMap<String, u64>,
    spans: Vec<(TaskKey, Vec<SpanEvent>)>,
}

impl Store {
    const fn new() -> Self {
        Self {
            counters: BTreeMap::new(),
            histograms: BTreeMap::new(),
            stacks: BTreeMap::new(),
            spans: Vec::new(),
        }
    }

    fn absorb(&mut self, key: TaskKey, rec: Recorder) {
        let (counters, histograms, stacks, spans) = rec.into_parts();
        for (name, delta) in counters {
            *self.counters.entry(name).or_insert(0) += delta;
        }
        for (name, hist) in histograms {
            self.histograms.entry(name).or_default().merge(&hist);
        }
        for (stack, cycles) in stacks {
            *self.stacks.entry(stack).or_insert(0) += cycles;
        }
        if !spans.is_empty() {
            self.spans.push((key, spans));
        }
    }
}

static STORE: Mutex<Store> = Mutex::new(Store::new());

fn store() -> std::sync::MutexGuard<'static, Store> {
    STORE.lock().unwrap_or_else(|e| e.into_inner())
}

/// Runs `f` against the innermost active sink on this thread: the open task
/// recorder if one exists, the thread's ambient recorder otherwise.
/// No-op when telemetry is disabled.
pub fn with_sink(f: impl FnOnce(&mut Recorder)) {
    if !enabled() {
        return;
    }
    SCOPES.with(|scopes| {
        let mut scopes = scopes.borrow_mut();
        if let Some(top) = scopes.last_mut() {
            f(top);
        } else {
            drop(scopes);
            AMBIENT.with(|ambient| f(&mut ambient.borrow_mut()));
        }
    });
}

/// Runs `f` inside a fresh task scope: everything it records lands in a
/// recorder merged into the global store under `(invocation, index)`.
/// The engine wraps every trial body in this, which is what makes merged
/// telemetry independent of which worker ran the trial and when.
pub fn in_task<T>(invocation: u64, index: u64, f: impl FnOnce() -> T) -> T {
    SCOPES.with(|scopes| scopes.borrow_mut().push(Recorder::default()));
    let out = f();
    let rec = SCOPES.with(|scopes| scopes.borrow_mut().pop());
    if let Some(rec) = rec {
        if !rec.is_empty() {
            store().absorb((invocation, index), rec);
        }
    }
    out
}

/// Flushes this thread's ambient recorder into the global store under a
/// fresh order slot. Called by [`snapshot`] for the driver thread; worker
/// threads record exclusively inside task scopes and never need it.
pub fn flush_ambient() {
    let rec = AMBIENT.with(|ambient| std::mem::take(&mut *ambient.borrow_mut()));
    if !rec.is_empty() {
        let order = ORDER.fetch_add(1, Ordering::SeqCst);
        store().absorb((order, 0), rec);
    }
}

// ---------------------------------------------------------------------------
// Recording convenience
// ---------------------------------------------------------------------------

/// Adds `delta` to the named counter. Label pairs are embedded in the name
/// (`cpu_insns_total{class="memory"}`), Prometheus-style.
pub fn counter(name: &str, delta: u64) {
    with_sink(|s| s.counter(name, delta));
}

/// Records one observation into the named cycle-domain histogram.
pub fn observe_cycles(name: &str, cycles: u64) {
    with_sink(|s| s.observe_cycles(name, cycles));
}

/// Records a completed span event.
pub fn span(event: SpanEvent) {
    with_sink(|s| s.span(event));
}

/// Adds `self_cycles` to a collapsed call-stack line
/// (`track;main;f;g` — flamegraph format).
pub fn stack(frames: &str, self_cycles: u64) {
    with_sink(|s| s.stack(frames, self_cycles));
}

// ---------------------------------------------------------------------------
// Snapshot / reset
// ---------------------------------------------------------------------------

/// Flushes the calling thread's ambient recorder, then returns the merged,
/// deterministically ordered view of everything recorded so far. The store
/// is left intact; call [`reset`] to clear it.
pub fn snapshot() -> Merged {
    flush_ambient();
    let store = store();
    let mut batches: Vec<&(TaskKey, Vec<SpanEvent>)> = store.spans.iter().collect();
    batches.sort_by_key(|(key, _)| *key);
    let spans = batches
        .into_iter()
        .flat_map(|(_, batch)| batch.iter().cloned())
        .collect();
    Merged {
        counters: store.counters.clone(),
        histograms: store.histograms.clone(),
        stacks: store.stacks.clone(),
        spans,
    }
}

/// Clears the global store, the order counter and the calling thread's
/// ambient recorder. Drivers call this before a fresh capture.
pub fn reset() {
    let mut store = store();
    store.counters.clear();
    store.histograms.clear();
    store.stacks.clear();
    store.spans.clear();
    drop(store);
    ORDER.store(0, Ordering::SeqCst);
    AMBIENT.with(|ambient| *ambient.borrow_mut() = Recorder::default());
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use std::sync::Mutex as StdMutex;

    /// The global store is process-wide; tests touching it must not overlap.
    static TEST_LOCK: StdMutex<()> = StdMutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_recording_is_a_no_op() {
        let _guard = locked();
        reset();
        disable();
        counter("x_total", 5);
        observe_cycles("x_cycles", 9);
        let merged = snapshot();
        assert!(merged.counters.is_empty());
        assert!(merged.histograms.is_empty());
    }

    #[test]
    fn ambient_and_task_records_merge() {
        let _guard = locked();
        reset();
        enable();
        counter("ambient_total", 1);
        let inv = begin_invocation().unwrap();
        in_task(inv, 0, || counter("task_total", 2));
        in_task(inv, 1, || counter("task_total", 3));
        disable();
        let merged = snapshot();
        assert_eq!(merged.counters["ambient_total"], 1);
        assert_eq!(merged.counters["task_total"], 5);
        reset();
    }

    #[test]
    fn span_replay_order_follows_task_keys_not_completion_order() {
        let _guard = locked();
        reset();
        enable();
        let inv = begin_invocation().unwrap();
        // Simulate out-of-order completion: task 2 merges before task 0.
        for index in [2u64, 0, 1] {
            in_task(inv, index, || {
                span(SpanEvent::new(
                    "t",
                    format!("span{index}"),
                    "test",
                    index * 10,
                    5,
                ));
            });
        }
        disable();
        let merged = snapshot();
        let names: Vec<&str> = merged.spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["span0", "span1", "span2"]);
        reset();
    }

    #[test]
    fn reset_clears_everything() {
        let _guard = locked();
        reset();
        enable();
        counter("gone_total", 1);
        disable();
        reset();
        let merged = snapshot();
        assert!(merged.counters.is_empty());
        assert!(merged.spans.is_empty());
    }
}
