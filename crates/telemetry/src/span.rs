//! Completed span events on the simulated-cycle timeline.

/// A completed span: a named interval on a track, measured in simulated
/// cycles. Tracks map to rows in the Chrome trace viewer (one per workload
/// scheme, chaos target, …); `start` and `dur` are cycle counts, rendered
/// as microseconds by the Chrome exporter so the viewer's zoom and ruler
/// behave sensibly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanEvent {
    /// Timeline row this span belongs to (e.g. `nginx/full`).
    pub track: String,
    /// Human-readable name (usually a function symbol).
    pub name: String,
    /// Category tag grouping spans in the viewer (e.g. `workload`).
    pub cat: &'static str,
    /// Start, in simulated cycles from the start of the span's run.
    pub start: u64,
    /// Duration in simulated cycles (inclusive of callees).
    pub dur: u64,
}

impl SpanEvent {
    /// Builds a span event.
    pub fn new(
        track: impl Into<String>,
        name: impl Into<String>,
        cat: &'static str,
        start: u64,
        dur: u64,
    ) -> Self {
        Self {
            track: track.into(),
            name: name.into(),
            cat,
            start,
            dur,
        }
    }
}
