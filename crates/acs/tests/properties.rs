//! Property-based tests for the authenticated call stack.

use pacstack_acs::{AcsConfig, AuthenticatedCallStack, Masking};
use pacstack_pauth::{PaKeys, PointerAuth, VaLayout};
use proptest::prelude::*;

fn arb_masking() -> impl Strategy<Value = Masking> {
    prop_oneof![Just(Masking::Masked), Just(Masking::Unmasked)]
}

fn arb_rets() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(1u64..(1 << 39), 1..64)
}

fn build(seed: u64, masking: Masking, init: u64) -> AuthenticatedCallStack {
    AuthenticatedCallStack::new(
        PointerAuth::new(VaLayout::default()),
        PaKeys::from_seed(seed),
        AcsConfig::default().masking(masking).seed(init),
    )
}

proptest! {
    #[test]
    fn lifo_discipline_is_preserved(
        seed in any::<u64>(),
        masking in arb_masking(),
        rets in arb_rets(),
    ) {
        let mut acs = build(seed, masking, 0);
        for &ret in &rets {
            acs.call(ret);
        }
        for &ret in rets.iter().rev() {
            prop_assert_eq!(acs.ret().unwrap(), ret);
        }
        prop_assert_eq!(acs.depth(), 0);
    }

    #[test]
    fn verify_chain_agrees_with_unwinding(
        seed in any::<u64>(),
        masking in arb_masking(),
        rets in arb_rets(),
    ) {
        let mut acs = build(seed, masking, 0);
        for &ret in &rets {
            acs.call(ret);
        }
        let verified = acs.verify_chain().unwrap();
        let expected: Vec<u64> = rets.iter().rev().copied().collect();
        prop_assert_eq!(verified, expected);
    }

    #[test]
    fn any_single_slot_corruption_is_detected_or_collides(
        seed in any::<u64>(),
        masking in arb_masking(),
        rets in prop::collection::vec(1u64..(1 << 39), 2..32),
        slot_selector in any::<prop::sample::Index>(),
        delta in 1u64..u64::MAX,
    ) {
        let mut acs = build(seed, masking, 0);
        for &ret in &rets {
            acs.call(ret);
        }
        let slot = slot_selector.index(rets.len());
        acs.frames_mut()[slot].stored_chain ^= delta;
        // Unwinding must fail at or before the corrupted slot, except in the
        // 2^-16 event of a genuine MAC collision — in which case the chain
        // verifies but control flow may have been bent, which is exactly the
        // residual risk the paper quantifies.
        match acs.verify_chain() {
            Err(v) => prop_assert!(v.depth > slot, "detected too late: {} <= {}", v.depth, slot),
            Ok(_) => {
                // Collision: astronomically rare per case; accept.
            }
        }
    }

    #[test]
    fn chains_with_different_seeds_never_share_tokens(
        seed in any::<u64>(),
        masking in arb_masking(),
        rets in prop::collection::vec(1u64..(1 << 39), 1..16),
        init_a in any::<u64>(),
        init_b in any::<u64>(),
    ) {
        prop_assume!(init_a != init_b);
        let mut a = build(seed, masking, init_a);
        let mut b = build(seed, masking, init_b);
        for &ret in &rets {
            a.call(ret);
            b.call(ret);
        }
        // Same key, same calls, different seeds: the heads differ (collisions
        // aside), so harvested tokens from one sibling do not transfer.
        if a.chain_register() == b.chain_register() {
            // 2^-16 collision; tolerate.
        } else {
            prop_assert_ne!(a.chain_register(), b.chain_register());
        }
    }

    #[test]
    fn reseed_preserves_unwind_targets(
        seed in any::<u64>(),
        masking in arb_masking(),
        rets in arb_rets(),
        init in any::<u64>(),
    ) {
        let mut acs = build(seed, masking, 0);
        for &ret in &rets {
            acs.call(ret);
        }
        acs.reseed(init);
        let verified = acs.verify_chain().unwrap();
        let expected: Vec<u64> = rets.iter().rev().copied().collect();
        prop_assert_eq!(verified, expected);
    }

    #[test]
    fn longjmp_to_live_frame_restores_chain_register(
        seed in any::<u64>(),
        masking in arb_masking(),
        before in prop::collection::vec(1u64..(1 << 39), 1..16),
        after in prop::collection::vec(1u64..(1 << 39), 1..16),
        jmp_ret in 1u64..(1 << 39),
        sp in any::<u64>(),
    ) {
        let mut acs = build(seed, masking, 0);
        for &ret in &before {
            acs.call(ret);
        }
        let cr_at_setjmp = acs.chain_register();
        let buf = acs.setjmp(jmp_ret, sp);
        for &ret in &after {
            acs.call(ret);
        }
        // The frame the buffer points at is still live: the jump must land
        // on the bound return site and restore CR to the setjmp-time head,
        // leaving the remaining chain fully unwindable.
        prop_assert_eq!(acs.longjmp(&buf).unwrap(), jmp_ret);
        prop_assert_eq!(acs.chain_register(), cr_at_setjmp);
        prop_assert_eq!(acs.depth(), before.len());
        let verified = acs.verify_chain().unwrap();
        let expected: Vec<u64> = before.iter().rev().copied().collect();
        prop_assert_eq!(verified, expected);
    }

    #[test]
    fn longjmp_to_popped_frame_is_rejected(
        seed in any::<u64>(),
        masking in arb_masking(),
        outer in prop::collection::vec(1u64..(1 << 39), 1..8),
        inner in prop::collection::vec(1u64..(1 << 39), 1..8),
        jmp_ret in 1u64..(1 << 39),
        sp in any::<u64>(),
    ) {
        let mut acs = build(seed, masking, 0);
        for &ret in &outer {
            acs.call(ret);
        }
        for &ret in &inner {
            acs.call(ret);
        }
        // setjmp inside the inner activations, then let them all return:
        // the buffer's frame is popped and the buffer has expired.
        let buf = acs.setjmp(jmp_ret, sp);
        for _ in 0..inner.len() {
            acs.ret().unwrap();
        }
        // The validating unwinder must refuse the expired buffer (its depth
        // exceeds the live stack), leaving the stack untouched.
        prop_assert!(acs.longjmp_validating(&buf).is_err());
        prop_assert_eq!(acs.depth(), outer.len());
        let verified = acs.verify_chain().unwrap();
        let expected: Vec<u64> = outer.iter().rev().copied().collect();
        prop_assert_eq!(verified, expected);
    }

    #[test]
    fn verify_chain_round_trips_after_arbitrary_call_ret_sequences(
        seed in any::<u64>(),
        masking in arb_masking(),
        ops in prop::collection::vec((any::<bool>(), 1u64..(1 << 39)), 1..64),
    ) {
        let mut acs = build(seed, masking, 0);
        let mut shadow: Vec<u64> = Vec::new();
        for &(is_call, ret) in &ops {
            if is_call || shadow.is_empty() {
                acs.call(ret);
                shadow.push(ret);
            } else {
                let expected = shadow.pop().unwrap();
                prop_assert_eq!(acs.ret().unwrap(), expected);
            }
            // After every prefix of the op sequence the chain verifies and
            // reports exactly the live return addresses, innermost first.
            let verified = acs.verify_chain().unwrap();
            let expected: Vec<u64> = shadow.iter().rev().copied().collect();
            prop_assert_eq!(verified, expected);
        }
    }

    #[test]
    fn setjmp_longjmp_from_any_depth(
        seed in any::<u64>(),
        masking in arb_masking(),
        before in prop::collection::vec(1u64..(1 << 39), 1..16),
        after in prop::collection::vec(1u64..(1 << 39), 0..16),
        jmp_ret in 1u64..(1 << 39),
        sp in any::<u64>(),
    ) {
        let mut acs = build(seed, masking, 0);
        for &ret in &before {
            acs.call(ret);
        }
        let buf = acs.setjmp(jmp_ret, sp);
        for &ret in &after {
            acs.call(ret);
        }
        prop_assert_eq!(acs.longjmp_validating(&buf).unwrap(), jmp_ret);
        prop_assert_eq!(acs.depth(), before.len());
        for &ret in before.iter().rev() {
            prop_assert_eq!(acs.ret().unwrap(), ret);
        }
    }
}
