//! ACS configuration: masking variant, signing key and chain seed.

use pacstack_pauth::PaKey;
use std::fmt;

/// Whether stored authentication tokens are masked (full PACStack) or stored
/// in the clear (PACStack-nomask).
///
/// Masking closes the on-graph collision-harvesting attack at the cost of
/// two extra PAC computations per function activation (paper Table 1 /
/// §5.2); both variants are evaluated throughout the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Masking {
    /// Mask every stored token with `H_K(0, aret_{i-1})`.
    #[default]
    Masked,
    /// Store raw tokens — faster, but collisions are visible to a reader.
    Unmasked,
}

impl fmt::Display for Masking {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Masking::Masked => f.write_str("masked"),
            Masking::Unmasked => f.write_str("nomask"),
        }
    }
}

/// Configuration for an [`AuthenticatedCallStack`].
///
/// [`AuthenticatedCallStack`]: crate::AuthenticatedCallStack
///
/// # Examples
///
/// ```
/// use pacstack_acs::{AcsConfig, Masking};
///
/// let cfg = AcsConfig::default()
///     .masking(Masking::Unmasked)
///     .seed(0x1234); // e.g. a thread id, for re-seeded sibling chains
/// assert_eq!(cfg.initial_chain(), 0x1234);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AcsConfig {
    masking: Masking,
    key: PaKey,
    init: u64,
}

impl AcsConfig {
    /// The paper's default: masked tokens, instruction key A, zero seed.
    pub fn new() -> Self {
        Self {
            masking: Masking::Masked,
            key: PaKey::Ia,
            init: 0,
        }
    }

    /// Selects the masking variant.
    pub fn masking(mut self, masking: Masking) -> Self {
        self.masking = masking;
        self
    }

    /// Selects which PA key signs the chain (PACStack uses instruction key A).
    pub fn signing_key(mut self, key: PaKey) -> Self {
        self.key = key;
        self
    }

    /// Sets the initial chain value (`init` in the paper).
    ///
    /// Re-seeding with a process- or thread-unique value after `fork` or
    /// thread creation defeats the divide-and-conquer guessing strategy of
    /// paper §4.3: siblings' chains become disjoint.
    pub fn seed(mut self, init: u64) -> Self {
        self.init = init;
        self
    }

    /// The configured masking variant.
    pub fn masking_mode(&self) -> Masking {
        self.masking
    }

    /// The configured signing key.
    pub fn key(&self) -> PaKey {
        self.key
    }

    /// The configured initial chain value.
    pub fn initial_chain(&self) -> u64 {
        self.init
    }
}

impl Default for AcsConfig {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_masked_ia_zero_seed() {
        let cfg = AcsConfig::default();
        assert_eq!(cfg.masking_mode(), Masking::Masked);
        assert_eq!(cfg.key(), PaKey::Ia);
        assert_eq!(cfg.initial_chain(), 0);
    }

    #[test]
    fn builder_sets_fields() {
        let cfg = AcsConfig::new()
            .masking(Masking::Unmasked)
            .signing_key(PaKey::Ib)
            .seed(77);
        assert_eq!(cfg.masking_mode(), Masking::Unmasked);
        assert_eq!(cfg.key(), PaKey::Ib);
        assert_eq!(cfg.initial_chain(), 77);
    }

    #[test]
    fn masking_displays_paper_names() {
        assert_eq!(Masking::Masked.to_string(), "masked");
        assert_eq!(Masking::Unmasked.to_string(), "nomask");
    }
}
