//! The ACS integrity-violation error.

use std::error::Error;
use std::fmt;

/// Verification of the return-address chain failed.
///
/// In hardware this manifests as `autia` producing a non-canonical pointer
/// that faults at the subsequent `ret`; in the state-machine model it is
/// surfaced as an error. The PACStack security argument (paper §6.2) relies
/// on exactly this: a failed guess crashes the process, so the adversary has
/// one try per process lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AcsViolation {
    /// The invalid pointer the failed authentication produced (`ret*`).
    pub corrupted: u64,
    /// Call-stack depth at which the violation was detected.
    pub depth: usize,
}

impl fmt::Display for AcsViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "authenticated call stack violated at depth {}: return to {:#018x} would fault",
            self.depth, self.corrupted
        )
    }
}

impl Error for AcsViolation {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_depth_and_pointer() {
        let v = AcsViolation {
            corrupted: 0xdead,
            depth: 3,
        };
        let s = v.to_string();
        assert!(s.contains("depth 3"));
        assert!(s.contains("0x000000000000dead"));
    }
}
