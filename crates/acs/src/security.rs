//! Analytic security bounds from the PACStack paper.
//!
//! These closed forms are what the paper's Table 1 and the in-text §4.3 and
//! §6.2.1 numbers come from; the experiment harness compares Monte Carlo
//! attack simulations against them.
//!
//! # Examples
//!
//! ```
//! use pacstack_acs::security;
//!
//! // The paper: with a 16-bit PAC, an adversary expects a collision after
//! // harvesting ~321 tokens.
//! let expected = security::expected_tokens_until_collision(16);
//! assert!((320.0..322.0).contains(&expected));
//! ```

use crate::Masking;
use std::fmt;

/// The three classes of call-stack integrity violation the paper analyses
/// (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ViolationKind {
    /// The bogus return still follows the program's call graph — the
    /// adversary can harvest valid tokens for both sites.
    OnGraph,
    /// The return leaves the call graph but targets a valid call-site
    /// return address (a token for it exists somewhere).
    OffGraphToCallSite,
    /// The return targets an address that has never been a return address.
    OffGraphToArbitrary,
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ViolationKind::OnGraph => f.write_str("on-graph"),
            ViolationKind::OffGraphToCallSite => f.write_str("off-graph to call-site"),
            ViolationKind::OffGraphToArbitrary => f.write_str("off-graph to arbitrary address"),
        }
    }
}

/// Maximum success probability of a violation, per Table 1 of the paper.
///
/// `b` is the PAC width in bits.
///
/// # Examples
///
/// ```
/// use pacstack_acs::security::{max_success_probability, ViolationKind};
/// use pacstack_acs::Masking;
///
/// // Without masking, on-graph violations succeed with certainty once a
/// // collision is found; masking reduces that to a 2^-b guess.
/// assert_eq!(max_success_probability(ViolationKind::OnGraph, Masking::Unmasked, 16), 1.0);
/// assert_eq!(
///     max_success_probability(ViolationKind::OnGraph, Masking::Masked, 16),
///     2f64.powi(-16)
/// );
/// ```
pub fn max_success_probability(kind: ViolationKind, masking: Masking, b: u32) -> f64 {
    let p = 2f64.powi(-(b as i32));
    match (kind, masking) {
        (ViolationKind::OnGraph, Masking::Unmasked) => 1.0,
        (ViolationKind::OnGraph, Masking::Masked) => p,
        (ViolationKind::OffGraphToCallSite, _) => p,
        (ViolationKind::OffGraphToArbitrary, _) => p * p,
    }
}

/// Birthday bound: probability that at least two of `q` harvested `b`-bit
/// tokens collide (paper §6.2.1).
///
/// Computed as `1 − ∏_{i=0}^{q−1} (1 − i·2^{−b})`, numerically stable in
/// log space for large `q`.
pub fn collision_probability(q: u64, b: u32) -> f64 {
    let n = 2f64.powi(b as i32);
    if q as f64 > n {
        return 1.0;
    }
    let mut log_no_collision = 0f64;
    for i in 0..q {
        log_no_collision += (1.0 - i as f64 / n).ln();
        if log_no_collision < -745.0 {
            return 1.0;
        }
    }
    1.0 - log_no_collision.exp()
}

/// Expected number of harvested tokens before the first collision:
/// `sqrt(π·2^b / 2)` — 321 for `b = 16` (paper §6.2.1).
pub fn expected_tokens_until_collision(b: u32) -> f64 {
    (std::f64::consts::PI * 2f64.powi(b as i32) / 2.0).sqrt()
}

/// Number of guesses needed to succeed with probability `p` against a
/// `b`-bit token when every failed guess crashes the process and re-keys
/// (paper §4.3): `log(1−p) / log(1−2^{−b})`.
///
/// # Panics
///
/// Panics unless `0 < p < 1`.
pub fn guesses_for_success_probability(p: f64, b: u32) -> f64 {
    assert!(p > 0.0 && p < 1.0, "p must be in (0, 1), got {p}");
    (1.0 - p).ln() / (1.0 - 2f64.powi(-(b as i32))).ln()
}

/// Expected guesses for the divide-and-conquer strategy against sibling
/// processes that share a PA key (paper §4.3): `2^b` on average
/// (`2^{b−1}` per stage, two stages).
pub fn expected_guesses_shared_key(b: u32) -> f64 {
    2f64.powi(b as i32)
}

/// Expected guesses once sibling chains are re-seeded (paper §4.3):
/// `2^{b+1}` — re-seeding makes the two guesses non-separable.
pub fn expected_guesses_reseeded(b: u32) -> f64 {
    2f64.powi(b as i32 + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values_at_b16() {
        let b = 16;
        let p = 2f64.powi(-16);
        assert_eq!(
            max_success_probability(ViolationKind::OnGraph, Masking::Unmasked, b),
            1.0
        );
        assert_eq!(
            max_success_probability(ViolationKind::OnGraph, Masking::Masked, b),
            p
        );
        assert_eq!(
            max_success_probability(ViolationKind::OffGraphToCallSite, Masking::Unmasked, b),
            p
        );
        assert_eq!(
            max_success_probability(ViolationKind::OffGraphToCallSite, Masking::Masked, b),
            p
        );
        assert_eq!(
            max_success_probability(ViolationKind::OffGraphToArbitrary, Masking::Masked, b),
            p * p
        );
    }

    #[test]
    fn paper_321_tokens_at_b16() {
        let expected = expected_tokens_until_collision(16);
        assert!((expected - 321.0).abs() < 1.0, "{expected}");
    }

    #[test]
    fn collision_probability_is_monotone_in_q() {
        let mut last = 0.0;
        for q in [0u64, 10, 100, 321, 1000, 5000] {
            let p = collision_probability(q, 16);
            assert!(p >= last, "q={q}");
            last = p;
        }
    }

    #[test]
    fn collision_probability_near_half_at_birthday_point() {
        // At q ≈ 1.1774·sqrt(2^b) the collision probability crosses 1/2.
        let q = (1.1774 * 2f64.powi(8)).round() as u64;
        let p = collision_probability(q, 16);
        assert!((0.45..0.55).contains(&p), "p = {p}");
    }

    #[test]
    fn collision_probability_saturates() {
        assert_eq!(collision_probability(1 << 17, 16), 1.0);
    }

    #[test]
    fn guessing_cost_matches_geometric_intuition() {
        // Succeeding with p = 1/2 against a b-bit token needs ~ln(2)·2^b tries.
        let g = guesses_for_success_probability(0.5, 16);
        let expected = std::f64::consts::LN_2 * 65536.0;
        assert!((g - expected).abs() / expected < 0.01, "g = {g}");
    }

    #[test]
    fn reseeding_doubles_the_shared_key_cost() {
        assert_eq!(
            expected_guesses_reseeded(16),
            2.0 * expected_guesses_shared_key(16)
        );
    }

    #[test]
    #[should_panic(expected = "p must be in")]
    fn guessing_cost_rejects_p_one() {
        let _ = guesses_for_success_probability(1.0, 16);
    }

    #[test]
    fn violation_kinds_display() {
        assert_eq!(ViolationKind::OnGraph.to_string(), "on-graph");
        assert_eq!(
            ViolationKind::OffGraphToCallSite.to_string(),
            "off-graph to call-site"
        );
    }
}
