//! The ACS state machine: chained signing on call, verification on return.

use crate::{AcsConfig, AcsViolation, JmpBuf, Masking};
use pacstack_pauth::{PaKeys, PointerAuth};
use pacstack_telemetry as telemetry;

/// One activation frame as it appears in attacker-visible stack memory.
///
/// PACStack stores the previous chain link in a dedicated stack slot and
/// keeps the unmodified frame record (with the plain return address) for
/// debugger compatibility — but never *loads* the latter. Both fields are
/// writable by the modelled adversary; only `stored_chain` affects control
/// flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Frame {
    /// The spilled chain register: `aret_{i-1}` (masked if masking is on).
    pub stored_chain: u64,
    /// The plain return address in the conventional frame record (unused by
    /// PACStack; present for backtrace compatibility, paper §5).
    pub frame_record_ret: u64,
}

/// An authenticated call stack: the paper's ACS construction as a pure state
/// machine.
///
/// The chain register (`CR`) lives inside this struct and is *not* part of
/// the attacker-accessible surface; the per-frame stack slots are (see
/// [`AuthenticatedCallStack::frames_mut`]).
///
/// # Examples
///
/// Detecting a corrupted chain slot:
///
/// ```
/// use pacstack_acs::{AcsConfig, AuthenticatedCallStack};
/// use pacstack_pauth::{PaKeys, PointerAuth, VaLayout};
///
/// let pa = PointerAuth::new(VaLayout::default());
/// let mut acs = AuthenticatedCallStack::new(pa, PaKeys::from_seed(3), AcsConfig::default());
/// acs.call(0x40_1000);
/// acs.call(0x40_2000);
/// acs.frames_mut()[1].stored_chain ^= 0xFF; // adversary tampers the stack
/// assert!(acs.ret().is_err()); // detected on unwind
/// ```
#[derive(Debug, Clone)]
pub struct AuthenticatedCallStack {
    pa: PointerAuth,
    keys: PaKeys,
    config: AcsConfig,
    /// The chain register CR — holds `aret_n` (masked form when masking).
    cr: u64,
    frames: Vec<Frame>,
}

impl AuthenticatedCallStack {
    /// Creates an empty chain seeded with `config.initial_chain()`.
    pub fn new(pa: PointerAuth, keys: PaKeys, config: AcsConfig) -> Self {
        Self {
            pa,
            keys,
            config,
            cr: config.initial_chain(),
            frames: Vec::new(),
        }
    }

    /// Current call depth (`n + 1` active records, 0 when empty).
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// The configuration this chain was built with.
    pub fn config(&self) -> &AcsConfig {
        &self.config
    }

    /// The pointer-authentication unit in use.
    pub fn pa(&self) -> &PointerAuth {
        &self.pa
    }

    /// The PA keys in use (kernel-owned in the threat model; exposed for
    /// trusted harness code only).
    pub fn keys(&self) -> &PaKeys {
        &self.keys
    }

    /// The current chain-register value `aret_n`.
    ///
    /// **Threat-model note**: CR is a reserved register the adversary can
    /// neither read nor write; this accessor exists for trusted harnesses
    /// and tests, not for attack code.
    pub fn chain_register(&self) -> u64 {
        self.cr
    }

    /// The attacker-*readable* view of stack memory.
    pub fn frames(&self) -> &[Frame] {
        &self.frames
    }

    /// The attacker-*writable* view of stack memory: an adversary with a
    /// memory-corruption primitive may rewrite any slot.
    pub fn frames_mut(&mut self) -> &mut [Frame] {
        &mut self.frames
    }

    /// The masking pad `H_K(0, modifier)` embedded in a signed null pointer,
    /// or zero when masking is off.
    fn mask_for(&self, modifier: u64) -> u64 {
        match self.config.masking_mode() {
            Masking::Masked => self.pa.pac(&self.keys, self.config.key(), 0, modifier),
            Masking::Unmasked => 0,
        }
    }

    /// Computes the (possibly masked) authenticated return address for
    /// `ret` chained onto `prev` — the value CR holds after a call.
    ///
    /// Exposed so attack simulations can enumerate legitimately observable
    /// tokens without driving a full call sequence.
    pub fn aret(&self, ret: u64, prev: u64) -> u64 {
        let signed = self.pa.pac(&self.keys, self.config.key(), ret, prev);
        signed ^ self.mask_for(prev)
    }

    /// Function-entry instrumentation (paper Listing 2/3 prologue):
    /// spills `aret_{i-1}` to the stack and sets `CR ← aret_i`.
    pub fn call(&mut self, ret: u64) {
        if telemetry::enabled() {
            telemetry::counter("acs_calls_total", 1);
        }
        let prev = self.cr;
        self.frames.push(Frame {
            stored_chain: prev,
            frame_record_ret: ret,
        });
        self.cr = self.aret(ret, prev);
    }

    /// Function-exit instrumentation (paper Listing 2/3 epilogue): reloads
    /// `aret_{i-1}` from the (attacker-writable) stack, verifies `CR`
    /// against it, and returns the authenticated return target.
    ///
    /// # Errors
    ///
    /// Returns [`AcsViolation`] if the chain does not verify — the modelled
    /// equivalent of `autia` producing a faulting pointer. The frame is
    /// consumed either way (the process would have crashed).
    ///
    /// # Panics
    ///
    /// Panics if called on an empty chain (a return past `main`).
    pub fn ret(&mut self) -> Result<u64, AcsViolation> {
        let frame = self.frames.pop().expect("return from an empty call stack");
        if telemetry::enabled() {
            telemetry::counter("acs_rets_total", 1);
        }
        let prev = frame.stored_chain;
        let lr = self.cr ^ self.mask_for(prev);
        match self.pa.aut(&self.keys, self.config.key(), lr, prev) {
            Ok(ret) => {
                self.cr = prev;
                Ok(ret)
            }
            Err(err) => {
                if telemetry::enabled() {
                    telemetry::counter("acs_violations_total", 1);
                }
                Err(AcsViolation {
                    corrupted: err.corrupted,
                    depth: self.frames.len() + 1,
                })
            }
        }
    }

    /// `setjmp` (paper Listing 4): binds the setjmp return site and stack
    /// pointer to the current chain head.
    pub fn setjmp(&self, ret: u64, sp: u64) -> JmpBuf {
        let key = self.config.key();
        let bound =
            self.pa.pac(&self.keys, key, ret, self.cr) ^ self.pa.pac(&self.keys, key, sp, self.cr);
        JmpBuf {
            bound_ret: bound,
            sp,
            chain: self.cr,
            depth: self.depth(),
        }
    }

    /// `longjmp` (paper Listing 5): verifies the buffer and transfers
    /// control to the bound return site, restoring `CR` and unwinding the
    /// stack to the buffer's depth.
    ///
    /// As in the paper (§9.1), freshness is *not* checked: an expired buffer
    /// whose chain value and stack frames the adversary has fully restored
    /// will pass — use [`AuthenticatedCallStack::longjmp_validating`] for
    /// the proposed frame-by-frame unwinder.
    ///
    /// # Errors
    ///
    /// Returns [`AcsViolation`] if the buffer's binding does not verify.
    pub fn longjmp(&mut self, buf: &JmpBuf) -> Result<u64, AcsViolation> {
        if telemetry::enabled() {
            telemetry::counter("acs_longjmps_total", 1);
        }
        let key = self.config.key();
        let lr = buf.bound_ret ^ self.pa.pac(&self.keys, key, buf.sp, buf.chain);
        match self.pa.aut(&self.keys, key, lr, buf.chain) {
            Ok(ret) => {
                self.cr = buf.chain;
                self.frames.truncate(buf.depth);
                Ok(ret)
            }
            Err(err) => {
                if telemetry::enabled() {
                    telemetry::counter("acs_violations_total", 1);
                }
                Err(AcsViolation {
                    corrupted: err.corrupted,
                    depth: self.depth(),
                })
            }
        }
    }

    /// The paper's proposed libunwind-style `longjmp` (§9.1): conceptually
    /// performs returns frame by frame, verifying each link, until the
    /// buffer's depth is reached — preventing reuse of expired buffers.
    ///
    /// # Errors
    ///
    /// Returns [`AcsViolation`] if any intermediate link fails to verify, if
    /// the buffer's depth exceeds the current depth (the buffer expired), or
    /// if the buffer binding itself is invalid.
    pub fn longjmp_validating(&mut self, buf: &JmpBuf) -> Result<u64, AcsViolation> {
        if buf.depth > self.depth() {
            return Err(AcsViolation {
                corrupted: buf.bound_ret,
                depth: self.depth(),
            });
        }
        while self.depth() > buf.depth {
            self.ret()?;
        }
        if self.cr != buf.chain {
            return Err(AcsViolation {
                corrupted: buf.bound_ret,
                depth: self.depth(),
            });
        }
        self.longjmp(buf)
    }

    /// Re-seeds the chain after `fork`, rewriting every stored token so the
    /// child's chain is disjoint from the parent's (paper §4.3).
    ///
    /// The trusted runtime knows the genuine return addresses of its own
    /// frames (they are reachable through the frame records at fork time),
    /// so it can rebuild the chain bottom-up with the new `init`.
    pub fn reseed(&mut self, init: u64) {
        let rets: Vec<u64> = self.frames.iter().map(|f| f.frame_record_ret).collect();
        self.config = self.config.seed(init);
        self.cr = init;
        self.frames.clear();
        for ret in rets {
            self.call(ret);
        }
    }

    /// Walks the whole chain from `CR` down to the seed, verifying every
    /// link without mutating state — the validating unwinder a debugger or
    /// exception runtime would use.
    ///
    /// Returns the authenticated return addresses from innermost to
    /// outermost.
    ///
    /// # Errors
    ///
    /// Returns [`AcsViolation`] at the first broken link.
    pub fn verify_chain(&self) -> Result<Vec<u64>, AcsViolation> {
        let mut rets = Vec::with_capacity(self.depth());
        let mut cr = self.cr;
        for (depth, frame) in self.frames.iter().enumerate().rev() {
            let prev = frame.stored_chain;
            let lr = cr ^ self.mask_for(prev);
            match self.pa.aut(&self.keys, self.config.key(), lr, prev) {
                Ok(ret) => {
                    rets.push(ret);
                    cr = prev;
                }
                Err(err) => {
                    return Err(AcsViolation {
                        corrupted: err.corrupted,
                        depth: depth + 1,
                    })
                }
            }
        }
        Ok(rets)
    }
}

impl std::fmt::Display for AuthenticatedCallStack {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "ACS ({} links, {}): CR = {:#018x}",
            self.depth(),
            self.config.masking_mode(),
            self.cr
        )?;
        for (i, frame) in self.frames.iter().enumerate().rev() {
            writeln!(
                f,
                "  depth {i}: chain slot {:#018x}  frame-record ret {:#010x}",
                frame.stored_chain, frame.frame_record_ret
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Masking;
    use pacstack_pauth::VaLayout;

    fn acs(config: AcsConfig) -> AuthenticatedCallStack {
        AuthenticatedCallStack::new(
            PointerAuth::new(VaLayout::default()),
            PaKeys::from_seed(11),
            config,
        )
    }

    const RA: u64 = 0x40_1000;
    const RB: u64 = 0x40_2000;
    const RC: u64 = 0x40_3000;

    #[test]
    fn call_ret_round_trip_masked_and_unmasked() {
        for masking in [Masking::Masked, Masking::Unmasked] {
            let mut acs = acs(AcsConfig::default().masking(masking));
            acs.call(RA);
            acs.call(RB);
            acs.call(RC);
            assert_eq!(acs.depth(), 3);
            assert_eq!(acs.ret().unwrap(), RC);
            assert_eq!(acs.ret().unwrap(), RB);
            assert_eq!(acs.ret().unwrap(), RA);
            assert_eq!(acs.depth(), 0);
            assert_eq!(acs.chain_register(), 0);
        }
    }

    #[test]
    fn tampered_chain_slot_is_detected() {
        for masking in [Masking::Masked, Masking::Unmasked] {
            let mut acs = acs(AcsConfig::default().masking(masking));
            acs.call(RA);
            acs.call(RB);
            acs.frames_mut()[1].stored_chain ^= 1;
            let err = acs.ret().unwrap_err();
            assert_eq!(err.depth, 2);
        }
    }

    #[test]
    fn frame_record_tampering_is_irrelevant() {
        // PACStack never loads the plain return address from the frame
        // record, so corrupting it changes nothing.
        let mut acs = acs(AcsConfig::default());
        acs.call(RA);
        acs.frames_mut()[0].frame_record_ret = 0xBAD;
        assert_eq!(acs.ret().unwrap(), RA);
    }

    #[test]
    fn replayed_outdated_chain_value_is_detected() {
        // Control-flow bending via stale aret values (paper §6.3): replace
        // the stored aret_{i-1} with an older valid link.
        let mut acs = acs(AcsConfig::default());
        acs.call(RA);
        let old = acs.frames()[0].stored_chain; // aret_{-1} = seed
        acs.call(RB);
        acs.call(RC);
        acs.frames_mut()[2].stored_chain = old;
        assert!(acs.ret().is_err());
    }

    #[test]
    fn masked_tokens_differ_from_unmasked() {
        let mut masked = acs(AcsConfig::default());
        let mut unmasked = acs(AcsConfig::default().masking(Masking::Unmasked));
        masked.call(RA);
        unmasked.call(RA);
        masked.call(RB);
        unmasked.call(RB);
        assert_ne!(
            masked.frames()[1].stored_chain,
            unmasked.frames()[1].stored_chain
        );
        // But both verify.
        assert_eq!(masked.ret().unwrap(), RB);
        assert_eq!(unmasked.ret().unwrap(), RB);
    }

    #[test]
    fn setjmp_longjmp_unwinds_to_mark() {
        let mut acs = acs(AcsConfig::default());
        acs.call(RA);
        let buf = acs.setjmp(0x40_5000, 0x7fff_0000);
        acs.call(RB);
        acs.call(RC);
        assert_eq!(acs.longjmp(&buf).unwrap(), 0x40_5000);
        assert_eq!(acs.depth(), 1);
        // The chain still verifies after the non-local jump.
        assert_eq!(acs.ret().unwrap(), RA);
    }

    #[test]
    fn tampered_jmpbuf_is_detected() {
        let mut acs = acs(AcsConfig::default());
        acs.call(RA);
        let mut buf = acs.setjmp(0x40_5000, 0x7fff_0000);
        buf.bound_ret ^= 0x10; // redirect the bound return site
        assert!(acs.longjmp(&buf).is_err());

        let mut buf2 = acs.setjmp(0x40_5000, 0x7fff_0000);
        buf2.sp ^= 0x40; // move the stack pointer
        assert!(acs.longjmp(&buf2).is_err());
    }

    #[test]
    fn validating_longjmp_rejects_expired_buffer() {
        let mut acs = acs(AcsConfig::default());
        acs.call(RA);
        acs.call(RB);
        let buf = acs.setjmp(0x40_5000, 0x7fff_0000);
        acs.ret().unwrap(); // the setjmp caller returns — buffer expires
        assert!(acs.longjmp_validating(&buf).is_err());
    }

    #[test]
    fn validating_longjmp_accepts_live_buffer() {
        let mut acs = acs(AcsConfig::default());
        acs.call(RA);
        let buf = acs.setjmp(0x40_5000, 0x7fff_0000);
        acs.call(RB);
        acs.call(RC);
        assert_eq!(acs.longjmp_validating(&buf).unwrap(), 0x40_5000);
        assert_eq!(acs.depth(), 1);
    }

    #[test]
    fn reseed_rewrites_chain_disjointly() {
        let mut a = acs(AcsConfig::default());
        a.call(RA);
        a.call(RB);
        let mut child = a.clone();
        child.reseed(0x1234_5678);
        // Chains diverge...
        assert_ne!(child.chain_register(), a.chain_register());
        assert_ne!(child.frames()[1].stored_chain, a.frames()[1].stored_chain);
        // ...but both unwind correctly.
        assert_eq!(child.ret().unwrap(), RB);
        assert_eq!(child.ret().unwrap(), RA);
        assert_eq!(a.ret().unwrap(), RB);
        assert_eq!(a.ret().unwrap(), RA);
    }

    #[test]
    fn verify_chain_reports_all_returns() {
        let mut acs = acs(AcsConfig::default());
        acs.call(RA);
        acs.call(RB);
        acs.call(RC);
        assert_eq!(acs.verify_chain().unwrap(), vec![RC, RB, RA]);
        assert_eq!(acs.depth(), 3); // non-destructive
    }

    #[test]
    fn verify_chain_pinpoints_broken_link() {
        let mut acs = acs(AcsConfig::default());
        acs.call(RA);
        acs.call(RB);
        acs.call(RC);
        acs.frames_mut()[1].stored_chain ^= 2;
        let err = acs.verify_chain().unwrap_err();
        assert_eq!(err.depth, 2);
    }

    #[test]
    fn seeded_chains_are_disjoint_from_the_start() {
        let mut t1 = acs(AcsConfig::default().seed(1));
        let mut t2 = acs(AcsConfig::default().seed(2));
        t1.call(RA);
        t2.call(RA);
        assert_ne!(t1.chain_register(), t2.chain_register());
    }

    #[test]
    fn display_shows_chain_state() {
        let mut acs = acs(AcsConfig::default());
        acs.call(RA);
        acs.call(RB);
        let text = acs.to_string();
        assert!(text.contains("2 links"), "{text}");
        assert!(text.contains("CR ="), "{text}");
        assert!(text.contains("depth 1"), "{text}");
    }

    #[test]
    #[should_panic(expected = "empty call stack")]
    fn return_past_main_panics() {
        let mut acs = acs(AcsConfig::default());
        let _ = acs.ret();
    }
}
