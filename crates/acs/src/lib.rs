//! The **authenticated call stack** (ACS) — the PACStack paper's core idea.
//!
//! ACS protects function return addresses by binding them into a chain of
//! message authentication codes. Each *authenticated return address*
//! `aret_i = auth_i ∥ ret_i` carries a MAC computed over the return address
//! and the *previous* authenticated return address:
//!
//! ```text
//! auth_i = H_K(ret_i, aret_{i-1})        (auth_0 = H_K(ret_0, init))
//! ```
//!
//! Only the newest link `aret_n` must be kept out of the adversary's reach
//! (in a reserved register, the *chain register* CR); every older link can
//! sit in attacker-writable stack memory, because any modification breaks
//! the chain and is detected when the chain is unwound.
//!
//! Because a PAC-sized MAC is short (16 bits in the paper's configuration),
//! an adversary who can *read* the stack could harvest tokens and find
//! colliding links by the birthday bound. ACS therefore *masks* every stored
//! token with a pseudo-random pad derived from the previous link
//! (`auth_i ⊕= H_K(0, aret_{i-1})`), which provably hides collisions
//! (paper §6.2.1 and Appendix A).
//!
//! This crate implements ACS as a pure state machine over the
//! [`pacstack_pauth`] pointer-authentication model:
//!
//! * [`AuthenticatedCallStack`] — push/pop with verification, in masked or
//!   unmasked variants ([`Masking`]);
//! * [`JmpBuf`]-based irregular unwinding (`setjmp`/`longjmp`, paper §4.4);
//! * re-seeding for forked processes and threads (paper §4.3);
//! * [`security`] — the paper's analytic bounds (Table 1, birthday and
//!   brute-force guessing formulas), used by the experiment harness.
//!
//! The compiler/simulator crates lower exactly this state machine to
//! instruction sequences; the attack crate drives both against each other.
//!
//! # Examples
//!
//! ```
//! use pacstack_acs::{AcsConfig, AuthenticatedCallStack};
//! use pacstack_pauth::{PaKeys, PointerAuth, VaLayout};
//!
//! let pa = PointerAuth::new(VaLayout::default());
//! let keys = PaKeys::from_seed(1);
//! let mut acs = AuthenticatedCallStack::new(pa, keys, AcsConfig::default());
//!
//! acs.call(0x40_1000); // main calls f, return address 0x40_1000
//! acs.call(0x40_2000); // f calls g
//! assert_eq!(acs.ret()?, 0x40_2000); // g returns — verified
//! assert_eq!(acs.ret()?, 0x40_1000); // f returns — verified
//! # Ok::<(), pacstack_acs::AcsViolation>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod error;
pub mod games;
mod jmpbuf;
pub mod security;
mod stack;

pub use config::{AcsConfig, Masking};
pub use error::AcsViolation;
pub use jmpbuf::JmpBuf;
pub use stack::AuthenticatedCallStack;
