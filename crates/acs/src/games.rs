//! Executable versions of the Appendix A security games.
//!
//! The paper proves (Theorem 1) that PAC masking prevents collision
//! finding: an adversary who sees `q` *masked* authentication tokens can
//! identify a colliding input pair with advantage at most twice their
//! advantage in distinguishing the MAC from a random oracle. This module
//! turns the games into code: a challenger implementing
//! `G-PAC-Collision`, pluggable adversaries, and Monte Carlo estimation of
//! their advantage — so the theorem's *prediction* (advantage ≈ 0 with
//! masking, ≈ 1 without) is checked experimentally.
//!
//! # Examples
//!
//! ```
//! use pacstack_acs::games::{collision_game_advantage, BirthdayAdversary, Oracle};
//!
//! // Against masked tokens, the birthday strategy has no advantage.
//! let masked = collision_game_advantage(8, Oracle::Masked, 40, 1);
//! assert!(masked < 0.2);
//! ```

use crate::Masking;
use pacstack_pauth::{PaKey, PaKeys, PointerAuth, VaLayout};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Which token stream the challenger exposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Oracle {
    /// `T(x, y) = H_K(x, y) ⊕ H_K(0, y)` — the PACStack construction.
    Masked,
    /// `T(x, y) = H_K(x, y)` — the nomask construction, for contrast.
    Unmasked,
}

impl From<Masking> for Oracle {
    fn from(masking: Masking) -> Self {
        match masking {
            Masking::Masked => Oracle::Masked,
            Masking::Unmasked => Oracle::Unmasked,
        }
    }
}

/// The challenger for `G-PAC-Collision` (paper Figure 6).
///
/// Holds the keyed MAC; answers token queries; and judges the adversary's
/// final claim that `H_K(x̂, ŷ) = H_K(x̂, ŷ′)` for `ŷ ≠ ŷ′`.
#[derive(Debug)]
pub struct CollisionChallenger {
    pa: PointerAuth,
    keys: PaKeys,
    oracle: Oracle,
    queries: u64,
}

impl CollisionChallenger {
    /// Creates a challenger with a fresh key for PAC width `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b` is outside the range [`VaLayout`] can express (3–19).
    pub fn new(b: u32, oracle: Oracle, seed: u64) -> Self {
        assert!((3..=19).contains(&b), "b must be within 3..=19");
        Self {
            pa: PointerAuth::new(VaLayout::new(55 - b, true)),
            keys: PaKeys::from_seed(seed),
            oracle,
            queries: 0,
        }
    }

    /// The compact unmasked token `H_K(x, y)` (challenger-private).
    fn token(&self, x: u64, y: u64) -> u64 {
        self.pa.compute_pac(&self.keys, PaKey::Ia, x, y)
    }

    /// Answers one adversary query according to the configured oracle.
    pub fn query(&mut self, x: u64, y: u64) -> u64 {
        self.queries += 1;
        match self.oracle {
            Oracle::Masked => self.token(x, y) ^ self.token(0, y),
            Oracle::Unmasked => self.token(x, y),
        }
    }

    /// Number of oracle queries answered so far.
    pub fn queries(&self) -> u64 {
        self.queries
    }

    /// Judges the adversary's output: win iff `ŷ ≠ ŷ′` and the *unmasked*
    /// tokens collide.
    pub fn judge(&self, x: u64, y: u64, y_prime: u64) -> bool {
        y != y_prime && self.token(x, y) == self.token(x, y_prime)
    }
}

/// An adversary for `G-PAC-Collision`.
pub trait CollisionAdversary {
    /// Interacts with the challenger's oracle and outputs a collision
    /// claim `(x̂, ŷ, ŷ′)`.
    fn play(&mut self, challenger: &mut CollisionChallenger) -> (u64, u64, u64);
}

/// The birthday-attack strategy: query a fixed `x` under many modifiers,
/// claim the first pair of modifiers whose *observed* tokens match.
///
/// Against the unmasked oracle an observed match *is* a collision, so this
/// adversary wins with probability → 1 as its query budget passes
/// `sqrt(π·2^b/2)`. Against the masked oracle, observed matches are
/// uncorrelated with real collisions (Theorem 1), so it does no better
/// than chance.
#[derive(Debug, Clone, Copy)]
pub struct BirthdayAdversary {
    /// Oracle queries to spend.
    pub budget: u64,
}

impl CollisionAdversary for BirthdayAdversary {
    fn play(&mut self, challenger: &mut CollisionChallenger) -> (u64, u64, u64) {
        const X: u64 = 0x40_1000;
        let mut seen: HashMap<u64, u64> = HashMap::new();
        let mut fallback = (X, 1u64, 2u64);
        for i in 0..self.budget {
            let y = 0x100 + i * 8;
            let observed = challenger.query(X, y);
            if let Some(&prev_y) = seen.get(&observed) {
                return (X, prev_y, y);
            }
            seen.insert(observed, y);
            if i == 1 {
                fallback = (X, 0x100, 0x108);
            }
        }
        fallback
    }
}

/// The null strategy: output a random pair without querying.
#[derive(Debug, Clone, Copy)]
pub struct RandomAdversary {
    /// RNG seed.
    pub seed: u64,
}

impl CollisionAdversary for RandomAdversary {
    fn play(&mut self, _challenger: &mut CollisionChallenger) -> (u64, u64, u64) {
        let mut rng = StdRng::seed_from_u64(self.seed);
        (rng.gen(), rng.gen(), rng.gen())
    }
}

/// Runs `G-PAC-Collision` once.
pub fn collision_game<A: CollisionAdversary>(
    b: u32,
    oracle: Oracle,
    adversary: &mut A,
    seed: u64,
) -> bool {
    let mut challenger = CollisionChallenger::new(b, oracle, seed);
    let (x, y, y_prime) = adversary.play(&mut challenger);
    challenger.judge(x, y, y_prime)
}

/// Estimates the birthday adversary's win rate over `trials` independent
/// games (fresh key per game), with a query budget of `4·sqrt(2^b)`.
pub fn collision_game_advantage(b: u32, oracle: Oracle, trials: u64, seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let budget = 4 * (1u64 << (b / 2 + 1));
    let mut wins = 0u64;
    for _ in 0..trials {
        let mut adversary = BirthdayAdversary { budget };
        if collision_game(b, oracle, &mut adversary, rng.gen()) {
            wins += 1;
        }
    }
    wins as f64 / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn birthday_adversary_wins_against_unmasked_tokens() {
        let rate = collision_game_advantage(8, Oracle::Unmasked, 30, 42);
        assert!(rate > 0.8, "unmasked win rate only {rate}");
    }

    #[test]
    fn birthday_adversary_fails_against_masked_tokens() {
        // Theorem 1: masked tokens give (essentially) no advantage — the
        // claimed pair collides only with probability ≈ 2^-b ≈ 0.4%.
        let rate = collision_game_advantage(8, Oracle::Masked, 60, 42);
        assert!(rate < 0.15, "masked win rate {rate} — masking is leaking");
    }

    #[test]
    fn random_adversary_has_baseline_success() {
        // 2^-b chance per trial at b = 4: over 600 trials expect ~37 wins.
        let mut rng = StdRng::seed_from_u64(1);
        let mut wins = 0;
        for i in 0..600u64 {
            let mut adv = RandomAdversary { seed: i };
            if collision_game(4, Oracle::Masked, &mut adv, rng.gen()) {
                wins += 1;
            }
        }
        let rate = wins as f64 / 600.0;
        assert!(rate < 0.2, "random adversary rate {rate}");
    }

    #[test]
    fn challenger_counts_queries() {
        let mut challenger = CollisionChallenger::new(8, Oracle::Masked, 1);
        let _ = challenger.query(1, 2);
        let _ = challenger.query(1, 3);
        assert_eq!(challenger.queries(), 2);
    }

    #[test]
    fn judge_rejects_equal_modifiers() {
        let challenger = CollisionChallenger::new(8, Oracle::Masked, 1);
        assert!(!challenger.judge(1, 5, 5));
    }

    #[test]
    fn oracle_from_masking() {
        assert_eq!(Oracle::from(Masking::Masked), Oracle::Masked);
        assert_eq!(Oracle::from(Masking::Unmasked), Oracle::Unmasked);
    }
}
