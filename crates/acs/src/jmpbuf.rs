//! The ACS-bound `jmp_buf` (paper §4.4 and Listings 4–5).

/// A `setjmp` buffer with its return site cryptographically bound to the
/// chain head at the time of the call.
///
/// The buffer lives in ordinary (attacker-writable) memory — all fields are
/// public because the threat model lets the adversary rewrite them. Security
/// comes from the binding: `bound_ret = pac(ret, chain) ⊕ pac(sp, chain)`,
/// so a forged buffer must still pass authentication against a chain value
/// the adversary cannot produce tokens for.
///
/// # Examples
///
/// ```
/// use pacstack_acs::{AcsConfig, AuthenticatedCallStack};
/// use pacstack_pauth::{PaKeys, PointerAuth, VaLayout};
///
/// let pa = PointerAuth::new(VaLayout::default());
/// let mut acs = AuthenticatedCallStack::new(pa, PaKeys::from_seed(0), AcsConfig::default());
/// acs.call(0x40_1000);
/// let buf = acs.setjmp(0x40_9000, 0x7fff_f000);
/// acs.call(0x40_2000);
/// assert_eq!(acs.longjmp(&buf)?, 0x40_9000);
/// # Ok::<(), pacstack_acs::AcsViolation>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct JmpBuf {
    /// `pac(ret_b, aret_i) ⊕ pac(SP_b, aret_i)` — the bound return address.
    pub bound_ret: u64,
    /// The stack pointer captured at `setjmp`.
    pub sp: u64,
    /// The chain head `aret_i` captured at `setjmp` (the callee-saved CR
    /// slot of a real `jmp_buf`).
    pub chain: u64,
    /// Call depth at `setjmp` — stands in for the stack extent `SP` implies
    /// in a real address-space model.
    pub depth: usize,
}
