//! The `pac*` / `aut*` / `xpac` / `pacga` operations.

use crate::{PaKey, PaKeys, VaLayout};
use pacstack_qarma::{reference, Sigma};
use pacstack_telemetry as telemetry;
use std::error::Error;
use std::fmt;
use std::sync::OnceLock;

/// Telemetry counter name for PAC computations under one key register.
/// Static strings keep the hot path allocation-free when recording.
fn pac_compute_counter(key: PaKey) -> &'static str {
    match key {
        PaKey::Ia => "pauth_pac_computes_total{key=\"IA\"}",
        PaKey::Ib => "pauth_pac_computes_total{key=\"IB\"}",
        PaKey::Da => "pauth_pac_computes_total{key=\"DA\"}",
        PaKey::Db => "pauth_pac_computes_total{key=\"DB\"}",
        PaKey::Ga => "pauth_pac_computes_total{key=\"GA\"}",
    }
}

/// Whether the process is pinned to the pre-optimisation PAC pipeline: the
/// cell-based QARMA reference path with the key schedule re-derived per call,
/// and (honoured separately by the CPU model) no PAC memoisation.
///
/// Controlled by setting the `PACSTACK_REFERENCE_PAC` environment variable
/// before the first PAC computation; read once and latched. This is the
/// honest "before" arm of the `repro perf` harness — both arms produce
/// byte-identical experiment output, which the perf harness verifies.
pub fn reference_pac_forced() -> bool {
    static FORCED: OnceLock<bool> = OnceLock::new();
    *FORCED.get_or_init(|| std::env::var_os("PACSTACK_REFERENCE_PAC").is_some())
}

/// How `aut*` reports a verification failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AuthFailure {
    /// Pre-ARMv8.6 behaviour: strip the PAC, flip the error bit, and let the
    /// invalid pointer fault when it is eventually translated.
    #[default]
    ErrorBit,
    /// ARMv8.6-A `FPAC`: fault immediately inside `aut*`.
    Fault,
}

/// Verification failed.
///
/// Carries the *corrupted* pointer `aut*` produced (error-bit mode) so a CPU
/// model can continue executing until the pointer is used, exactly as real
/// hardware does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AuthError {
    /// The pointer with its PAC stripped and the key-specific error bit set.
    pub corrupted: u64,
    /// Which key the failed authentication used.
    pub key: PaKey,
}

impl fmt::Display for AuthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pointer authentication failed for key {}; corrupted pointer {:#018x}",
            self.key, self.corrupted
        )
    }
}

impl Error for AuthError {}

/// The PA functional unit: computes, inserts and verifies PACs for a given
/// address-space layout.
///
/// Stateless with respect to keys — the key set is passed per operation, as
/// the key registers belong to the (modelled) kernel.
///
/// # Examples
///
/// ```
/// use pacstack_pauth::{PaKey, PaKeys, PointerAuth, VaLayout};
///
/// let pa = PointerAuth::new(VaLayout::default());
/// let keys = PaKeys::from_seed(0);
/// let signed = pa.pac(&keys, PaKey::Ib, 0x40_0000, 0);
/// assert_eq!(pa.aut(&keys, PaKey::Ib, signed, 0), Ok(0x40_0000));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PointerAuth {
    layout: VaLayout,
    failure: AuthFailure,
}

impl PointerAuth {
    /// Creates a PA unit with pre-ARMv8.6 (error-bit) failure semantics.
    pub fn new(layout: VaLayout) -> Self {
        Self {
            layout,
            failure: AuthFailure::ErrorBit,
        }
    }

    /// Creates a PA unit with the given failure mode.
    pub fn with_failure(layout: VaLayout, failure: AuthFailure) -> Self {
        Self { layout, failure }
    }

    /// The pointer layout this unit was configured with.
    pub fn layout(&self) -> VaLayout {
        self.layout
    }

    /// The failure mode this unit was configured with.
    pub fn failure(&self) -> AuthFailure {
        self.failure
    }

    /// The PAC width in bits (`b` in the paper's analysis).
    pub fn pac_bits(&self) -> u32 {
        self.layout.pac_bits()
    }

    /// Computes the raw truncated MAC `H_K(pointer, modifier)` as a compact
    /// `pac_bits()`-wide value, without embedding it in a pointer.
    ///
    /// This is the function the paper's security analysis treats as a random
    /// oracle. The pointer's PAC field is ignored (the MAC is computed over
    /// the canonical address), so the result depends only on the address
    /// bits, tag and modifier.
    pub fn compute_pac(&self, keys: &PaKeys, key: PaKey, pointer: u64, modifier: u64) -> u64 {
        if telemetry::enabled() {
            telemetry::counter(pac_compute_counter(key), 1);
        }
        if reference_pac_forced() {
            return self.compute_pac_reference(keys, key, pointer, modifier);
        }
        let canonical = self.layout.canonical(pointer & !self.layout.pac_mask());
        let mac = keys.cipher(key).encrypt(canonical, modifier);
        mac & ((1u64 << self.layout.pac_bits()) - 1)
    }

    /// [`PointerAuth::compute_pac`] through the cell-based reference cipher,
    /// re-deriving the key schedule per call — the pre-optimisation cost
    /// profile, kept as the differential oracle and the perf harness's
    /// "before" arm. Always returns the same value as `compute_pac`.
    pub fn compute_pac_reference(
        &self,
        keys: &PaKeys,
        key: PaKey,
        pointer: u64,
        modifier: u64,
    ) -> u64 {
        let canonical = self.layout.canonical(pointer & !self.layout.pac_mask());
        let mac = reference::encrypt(keys.key(key), Sigma::Sigma1, 7, canonical, modifier);
        mac & ((1u64 << self.layout.pac_bits()) - 1)
    }

    /// `pacia`/`pacib`/... — inserts a PAC into the pointer's high bits.
    ///
    /// If the pointer's extension bits are already corrupt (for example the
    /// output of a failed `aut*`), the PAC is computed for the corrected
    /// pointer and the well-known bit *p* of the PAC is flipped, mirroring
    /// the architectural behaviour that the Project Zero signing gadget
    /// abuses (paper §6.3.1).
    pub fn pac(&self, keys: &PaKeys, key: PaKey, pointer: u64, modifier: u64) -> u64 {
        self.sign_with_pac(self.compute_pac(keys, key, pointer, modifier), pointer)
    }

    /// The insertion half of `pac*`, given an already computed PAC value —
    /// the entry point for callers (the CPU's PAC memo cache) that obtained
    /// the MAC elsewhere. `pac()` is exactly `sign_with_pac(compute_pac(..))`.
    pub fn sign_with_pac(&self, pac: u64, pointer: u64) -> u64 {
        let signed = self.layout.insert_pac(self.strip(pointer), pac);
        if self.layout.is_canonical(pointer) {
            signed
        } else {
            signed ^ self.layout.poison_bit()
        }
    }

    /// Whether everything outside the PAC field is canonical — the condition
    /// under which a correct PAC value makes `aut*` succeed.
    fn non_pac_bits_canonical(&self, pointer: u64) -> bool {
        (pointer & !self.layout.pac_mask()) == self.strip(pointer)
    }

    /// `xpaci`/`xpacd` — strips the PAC, restoring the canonical pointer.
    pub fn strip(&self, pointer: u64) -> u64 {
        self.layout.canonical(pointer & !self.layout.pac_mask())
    }

    /// `autia`/`autib`/... — verifies the PAC.
    ///
    /// On success, returns the stripped (usable) pointer.
    ///
    /// # Errors
    ///
    /// On failure returns [`AuthError`]. In [`AuthFailure::ErrorBit`] mode the
    /// error carries the corrupted pointer the instruction would produce; a
    /// CPU model should continue and fault only when that pointer is used. In
    /// [`AuthFailure::Fault`] mode the caller should fault immediately.
    pub fn aut(
        &self,
        keys: &PaKeys,
        key: PaKey,
        pointer: u64,
        modifier: u64,
    ) -> Result<u64, AuthError> {
        self.verify_with_pac(self.compute_pac(keys, key, pointer, modifier), pointer, key)
    }

    /// The comparison half of `aut*`, given the expected PAC value — the
    /// entry point for callers (the CPU's PAC memo cache) that obtained the
    /// MAC elsewhere. `aut()` is exactly `verify_with_pac(compute_pac(..))`.
    ///
    /// # Errors
    ///
    /// Returns [`AuthError`] exactly as [`PointerAuth::aut`] does.
    pub fn verify_with_pac(
        &self,
        expected: u64,
        pointer: u64,
        key: PaKey,
    ) -> Result<u64, AuthError> {
        if self.layout.extract_pac(pointer) == expected && self.non_pac_bits_canonical(pointer) {
            Ok(self.strip(pointer))
        } else {
            Err(AuthError {
                corrupted: self
                    .layout
                    .corrupt(self.strip(pointer), key.is_instruction()),
                key,
            })
        }
    }

    /// `pacga` — the generic MAC: returns `H_GA(x, y)` in the upper 32 bits
    /// of the result, lower 32 bits zero, as the architecture specifies.
    pub fn pacga(&self, keys: &PaKeys, x: u64, y: u64) -> u64 {
        if telemetry::enabled() {
            telemetry::counter("pauth_pacga_total", 1);
        }
        if reference_pac_forced() {
            return reference::encrypt(keys.key(PaKey::Ga), Sigma::Sigma1, 7, x, y)
                & 0xFFFF_FFFF_0000_0000;
        }
        keys.cipher(PaKey::Ga).encrypt(x, y) & 0xFFFF_FFFF_0000_0000
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    fn unit() -> (PointerAuth, PaKeys) {
        (PointerAuth::new(VaLayout::default()), PaKeys::from_seed(99))
    }

    const PTR: u64 = 0x0000_0040_1234_5678;

    #[test]
    fn sign_verify_round_trip() {
        let (pa, keys) = unit();
        let signed = pa.pac(&keys, PaKey::Ia, PTR, 1234);
        assert_eq!(pa.aut(&keys, PaKey::Ia, signed, 1234), Ok(PTR));
    }

    #[test]
    fn wrong_modifier_fails() {
        let (pa, keys) = unit();
        let signed = pa.pac(&keys, PaKey::Ia, PTR, 1234);
        let err = pa.aut(&keys, PaKey::Ia, signed, 4321).unwrap_err();
        assert_eq!(err.key, PaKey::Ia);
        assert!(!pa.layout().is_canonical(err.corrupted));
    }

    #[test]
    fn wrong_key_fails() {
        let (pa, keys) = unit();
        let signed = pa.pac(&keys, PaKey::Ia, PTR, 0);
        assert!(pa.aut(&keys, PaKey::Ib, signed, 0).is_err());
    }

    #[test]
    fn different_process_keys_fail() {
        let (pa, keys) = unit();
        let other = PaKeys::from_seed(100);
        let signed = pa.pac(&keys, PaKey::Ia, PTR, 0);
        assert!(pa.aut(&other, PaKey::Ia, signed, 0).is_err());
    }

    #[test]
    fn tampered_address_fails() {
        let (pa, keys) = unit();
        let signed = pa.pac(&keys, PaKey::Ia, PTR, 0);
        assert!(pa.aut(&keys, PaKey::Ia, signed ^ 4, 0).is_err());
    }

    #[test]
    fn strip_removes_pac() {
        let (pa, keys) = unit();
        let signed = pa.pac(&keys, PaKey::Ia, PTR, 7);
        assert_eq!(pa.strip(signed), PTR);
    }

    #[test]
    fn unsigned_pointer_with_zero_pac_verifies_only_if_mac_is_zero() {
        // A raw pointer's PAC field is zero; verification succeeds only in
        // the 2^-b case where the true MAC is zero too.
        let (pa, keys) = unit();
        let ok = pa.aut(&keys, PaKey::Ia, PTR, 0).is_ok();
        assert_eq!(ok, pa.compute_pac(&keys, PaKey::Ia, PTR, 0) == 0);
    }

    #[test]
    fn signing_corrupted_pointer_poisons_pac_bit_p() {
        // The Project Zero gadget (paper §6.3.1, Listing 7): aut on a forged
        // pointer corrupts it; a subsequent pac yields the correct PAC with
        // bit p flipped.
        let (pa, keys) = unit();
        let forged = VaLayout::default().insert_pac(PTR, 0xBEEF);
        let err = pa.aut(&keys, PaKey::Ia, forged, 0).unwrap_err();
        let resigned = pa.pac(&keys, PaKey::Ia, err.corrupted, 0);
        let genuine = pa.pac(&keys, PaKey::Ia, PTR, 0);
        assert_eq!(resigned ^ genuine, pa.layout().poison_bit());
        // Flipping bit p back recovers a valid signed pointer — the gadget.
        assert_eq!(
            pa.aut(&keys, PaKey::Ia, resigned ^ pa.layout().poison_bit(), 0),
            Ok(PTR)
        );
    }

    #[test]
    fn resigning_a_signed_pointer_poisons() {
        // An already-signed pointer has non-canonical extension bits, so
        // pac* computes the same PAC but flips bit p — there is no way to
        // "re-sign" without first stripping.
        let (pa, keys) = unit();
        let signed = pa.pac(&keys, PaKey::Ia, PTR, 5);
        if !pa.layout().is_canonical(signed) {
            assert_eq!(
                pa.pac(&keys, PaKey::Ia, signed, 5),
                signed ^ pa.layout().poison_bit()
            );
        }
        // Stripping first recovers clean signing.
        assert_eq!(pa.pac(&keys, PaKey::Ia, pa.strip(signed), 5), signed);
    }

    #[test]
    fn pacga_returns_upper_32_bits() {
        let (pa, keys) = unit();
        let mac = pa.pacga(&keys, 0x1234, 0x5678);
        assert_eq!(mac & 0xFFFF_FFFF, 0);
        assert_ne!(mac, 0);
        // Deterministic and input-sensitive.
        assert_eq!(mac, pa.pacga(&keys, 0x1234, 0x5678));
        assert_ne!(mac, pa.pacga(&keys, 0x1235, 0x5678));
    }

    #[test]
    fn cached_cipher_pac_matches_reference_pac() {
        // The cached-schedule fast path and the rebuild-per-call reference
        // path are the same MAC — the invariant the whole caching layer
        // rests on.
        let (pa, keys) = unit();
        for key in [PaKey::Ia, PaKey::Ib, PaKey::Da, PaKey::Db, PaKey::Ga] {
            for i in 0..32u64 {
                let ptr = PTR.wrapping_add(i * 40);
                let modifier = i.wrapping_mul(0x9E37_79B9);
                assert_eq!(
                    pa.compute_pac(&keys, key, ptr, modifier),
                    pa.compute_pac_reference(&keys, key, ptr, modifier),
                    "{key} diverged at i={i}"
                );
            }
        }
    }

    #[test]
    fn set_key_takes_effect_on_the_cached_path() {
        // A key write must change the MACs immediately — no stale cipher.
        let (pa, mut keys) = unit();
        let before = pa.compute_pac(&keys, PaKey::Ia, PTR, 7);
        keys.set_key(PaKey::Ia, pacstack_qarma::Key128::new(0xFEED, 0xBEEF));
        let after = pa.compute_pac(&keys, PaKey::Ia, PTR, 7);
        assert_ne!(before, after);
        assert_eq!(after, pa.compute_pac_reference(&keys, PaKey::Ia, PTR, 7));
    }

    #[test]
    fn pac_bits_matches_layout() {
        let (pa, _) = unit();
        assert_eq!(pa.pac_bits(), 16);
    }

    #[test]
    fn compute_pac_fits_in_field() {
        let (pa, keys) = unit();
        for i in 0..64 {
            let pac = pa.compute_pac(&keys, PaKey::Ia, PTR + i * 4, i);
            assert!(pac < (1 << 16));
        }
    }
}
