//! Virtual-address layout: where the PAC lives inside a 64-bit pointer.
//!
//! On AArch64 a pointer's usable address occupies the low `VA_SIZE` bits.
//! Bit 55 selects the upper (kernel) or lower (user) address range and is
//! always preserved. If address tagging (top-byte ignore) is enabled, bits
//! 63–56 carry the tag and are also excluded from the PAC. Everything left —
//! bits 54 down to `VA_SIZE` — is the PAC field.

use std::fmt;

/// Bit that selects the upper/lower virtual-address range.
const SELECT_BIT: u32 = 55;

/// Describes the pointer bit layout for one address-space configuration.
///
/// The default matches the PACStack paper's evaluation platform: a Linux
/// kernel with `VA_SIZE = 39` and address tagging enabled, leaving a 16-bit
/// PAC.
///
/// # Examples
///
/// ```
/// use pacstack_pauth::VaLayout;
///
/// assert_eq!(VaLayout::default().pac_bits(), 16);
/// assert_eq!(VaLayout::new(48, false).pac_bits(), 15);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VaLayout {
    va_size: u32,
    tagged: bool,
}

impl VaLayout {
    /// Creates a layout with the given virtual-address size and tagging mode.
    ///
    /// # Panics
    ///
    /// Panics unless `36 <= va_size <= 52` (the architectural range) and the
    /// resulting PAC field is at least one bit wide.
    pub fn new(va_size: u32, tagged: bool) -> Self {
        assert!(
            (36..=52).contains(&va_size),
            "VA_SIZE must be within 36..=52, got {va_size}"
        );
        let layout = Self { va_size, tagged };
        assert!(layout.pac_bits() >= 1, "layout leaves no room for a PAC");
        layout
    }

    /// The Linux-default layout the paper assumes: `VA_SIZE = 39`, tagging on.
    pub fn linux_default() -> Self {
        Self::new(39, true)
    }

    /// The virtual-address size in bits.
    pub fn va_size(&self) -> u32 {
        self.va_size
    }

    /// Whether address tagging (top-byte ignore) is enabled.
    pub fn tagged(&self) -> bool {
        self.tagged
    }

    /// Index of the highest PAC bit (54 with tagging, 63 without).
    fn pac_top(&self) -> u32 {
        if self.tagged {
            SELECT_BIT - 1
        } else {
            63
        }
    }

    /// Number of bits available for the PAC.
    ///
    /// With tagging: bits 54..VA_SIZE. Without: bits 63..VA_SIZE minus the
    /// reserved select bit 55.
    pub fn pac_bits(&self) -> u32 {
        if self.tagged {
            SELECT_BIT - self.va_size
        } else {
            64 - self.va_size - 1
        }
    }

    /// Bit mask covering the PAC field.
    ///
    /// # Examples
    ///
    /// ```
    /// use pacstack_pauth::VaLayout;
    ///
    /// // Tagged VA_SIZE=39: PAC occupies bits 54..=39.
    /// assert_eq!(VaLayout::default().pac_mask(), 0x007f_ff80_0000_0000);
    /// ```
    pub fn pac_mask(&self) -> u64 {
        let mut mask =
            (((1u128 << (self.pac_top() + 1)) - 1) as u64) & !((1u64 << self.va_size) - 1);
        mask &= !(1u64 << SELECT_BIT);
        mask
    }

    /// Mask covering the address bits proper.
    pub fn address_mask(&self) -> u64 {
        (1u64 << self.va_size) - 1
    }

    /// Extracts the PAC field as a compact `pac_bits()`-wide integer.
    pub fn extract_pac(&self, pointer: u64) -> u64 {
        let mut pac = 0u64;
        let mut out_bit = 0;
        for bit in self.va_size..64 {
            if self.pac_mask() & (1u64 << bit) != 0 {
                pac |= ((pointer >> bit) & 1) << out_bit;
                out_bit += 1;
            }
        }
        pac
    }

    /// Spreads a compact PAC value into the PAC field of a pointer.
    pub fn insert_pac(&self, pointer: u64, pac: u64) -> u64 {
        let mut result = pointer & !self.pac_mask();
        let mut in_bit = 0;
        for bit in self.va_size..64 {
            if self.pac_mask() & (1u64 << bit) != 0 {
                result |= ((pac >> in_bit) & 1) << bit;
                in_bit += 1;
            }
        }
        result
    }

    /// The extension bits a canonical pointer must carry: all-zero or all-one
    /// copies of the select bit.
    pub fn canonical(&self, pointer: u64) -> u64 {
        let base = pointer & self.address_mask();
        if pointer & (1u64 << SELECT_BIT) != 0 {
            // Upper range: extension bits (and tag, if untagged) are ones.
            let ext = !self.address_mask();
            let ext = if self.tagged {
                ext & !(0xFFu64 << 56)
            } else {
                ext
            };
            base | ext | (pointer & if self.tagged { 0xFFu64 << 56 } else { 0 })
        } else {
            base | (pointer & if self.tagged { 0xFFu64 << 56 } else { 0 })
        }
    }

    /// Whether the pointer's extension bits are canonical (i.e. it would
    /// translate successfully, PAC field aside).
    pub fn is_canonical(&self, pointer: u64) -> bool {
        self.canonical(pointer) == pointer
    }

    /// Returns `pointer` made invalid by flipping the PA *error bit* for the
    /// given key family, as `aut*` does on verification failure.
    ///
    /// The architecture encodes which key failed in bits 62/61 (or 54/53 in
    /// tagged configurations); any use of the result faults at translation.
    pub fn corrupt(&self, pointer: u64, instruction_key: bool) -> u64 {
        let bit = if instruction_key {
            self.pac_top()
        } else {
            self.pac_top() - 1
        };
        self.canonical(pointer) ^ (1u64 << bit)
    }

    /// The well-known PAC bit `p` that `pac*` flips when signing a pointer
    /// whose extension bits are corrupt (§6.3.1 of the PACStack paper).
    pub fn poison_bit(&self) -> u64 {
        1u64 << self.pac_top()
    }
}

impl Default for VaLayout {
    fn default() -> Self {
        Self::linux_default()
    }
}

impl fmt::Display for VaLayout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "VA_SIZE={} {} ({}-bit PAC)",
            self.va_size,
            if self.tagged { "tagged" } else { "untagged" },
            self.pac_bits()
        )
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    #[test]
    fn default_matches_paper() {
        let layout = VaLayout::default();
        assert_eq!(layout.va_size(), 39);
        assert!(layout.tagged());
        assert_eq!(layout.pac_bits(), 16);
    }

    #[test]
    fn untagged_48_bit_layout() {
        let layout = VaLayout::new(48, false);
        assert_eq!(layout.pac_bits(), 15);
        // Bits 63..48 minus bit 55.
        assert_eq!(layout.pac_mask(), 0xFF7F_0000_0000_0000);
    }

    #[test]
    fn pac_mask_excludes_select_bit() {
        for (va, tagged) in [(39, true), (39, false), (48, true), (48, false)] {
            let layout = VaLayout::new(va, tagged);
            assert_eq!(
                layout.pac_mask() & (1u64 << 55),
                0,
                "va={va} tagged={tagged}"
            );
            assert_eq!(layout.pac_mask().count_ones(), layout.pac_bits());
        }
    }

    #[test]
    fn extract_insert_round_trip() {
        let layout = VaLayout::default();
        let ptr = 0x0000_0012_3456_7890u64;
        for pac in [0u64, 1, 0xFFFF, 0xA5A5] {
            let signed = layout.insert_pac(ptr, pac);
            assert_eq!(
                layout.extract_pac(signed),
                pac & ((1 << layout.pac_bits()) - 1)
            );
            assert_eq!(signed & layout.address_mask(), ptr & layout.address_mask());
        }
    }

    #[test]
    fn canonical_lower_range_pointer_is_unchanged() {
        let layout = VaLayout::default();
        let ptr = 0x0000_0040_1234_5678u64;
        assert!(layout.is_canonical(ptr));
        assert_eq!(layout.canonical(ptr), ptr);
    }

    #[test]
    fn pointer_with_pac_is_not_canonical() {
        let layout = VaLayout::default();
        let ptr = layout.insert_pac(0x1234_5678, 0xBEEF);
        assert!(!layout.is_canonical(ptr));
    }

    #[test]
    fn corrupt_makes_pointer_non_canonical() {
        let layout = VaLayout::default();
        let ptr = 0x0000_0040_1234_5678u64;
        let bad = layout.corrupt(ptr, true);
        assert!(!layout.is_canonical(bad));
        assert_ne!(bad, ptr);
        // Instruction and data keys corrupt different bits.
        assert_ne!(layout.corrupt(ptr, true), layout.corrupt(ptr, false));
    }

    #[test]
    fn tag_byte_survives_canonicalisation_when_tagged() {
        let layout = VaLayout::default();
        let ptr = 0xAB00_0040_1234_5678u64;
        assert_eq!(layout.canonical(ptr) >> 56, 0xAB);
    }

    #[test]
    #[should_panic(expected = "VA_SIZE")]
    fn rejects_out_of_range_va_size() {
        let _ = VaLayout::new(30, true);
    }
}
