//! A functional model of the ARMv8.3-A pointer-authentication (PA) extension.
//!
//! PA computes a *pointer authentication code* (PAC) — a keyed, tweakable MAC
//! over a pointer's address — and embeds it in the unused high-order bits of
//! the pointer. The PACStack paper builds its authenticated call stack (ACS)
//! on exactly this mechanism, so every architectural detail that matters to
//! its security analysis is modelled here:
//!
//! * the PAC field geometry as a function of the virtual-address size and
//!   address tagging ([`VaLayout`]) — 16 bits in the paper's default Linux
//!   configuration;
//! * the five key registers (`IA`, `IB`, `DA`, `DB`, `GA`) managed at EL1
//!   ([`PaKeys`]);
//! * `pac*` / `aut*` semantics including the *error-bit* behaviour on
//!   verification failure ([`PointerAuth::aut`]) that makes a forged return
//!   address fault when used, and the bit-p flip on signing a corrupted
//!   pointer that enables the Google Project Zero signing-gadget attack the
//!   paper analyses in §6.3.1;
//! * the ARMv8.6-A `FPAC` mode in which `aut*` faults immediately.
//!
//! # Examples
//!
//! ```
//! use pacstack_pauth::{PaKey, PaKeys, PointerAuth, VaLayout};
//!
//! let pa = PointerAuth::new(VaLayout::default());
//! let keys = PaKeys::from_seed(7);
//! let ptr = 0x0000_0040_1234_5678;
//!
//! let signed = pa.pac(&keys, PaKey::Ia, ptr, 42);
//! assert_ne!(signed, ptr); // PAC now occupies the high bits
//! assert_eq!(pa.aut(&keys, PaKey::Ia, signed, 42), Ok(ptr));
//! assert!(pa.aut(&keys, PaKey::Ia, signed, 43).is_err()); // wrong modifier
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// The simulator's fault-injection harness requires this crate to be
// panic-free: authentication failures are data, never aborts.
#![warn(clippy::unwrap_used, clippy::expect_used)]

mod auth;
mod keys;
mod layout;

pub use auth::{reference_pac_forced, AuthError, AuthFailure, PointerAuth};
pub use keys::{PaKey, PaKeys};
pub use layout::VaLayout;
