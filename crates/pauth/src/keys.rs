//! The five PA key registers and their management.
//!
//! The architecture provides two instruction keys (`IA`, `IB`), two data keys
//! (`DA`, `DB`) and one generic key (`GA`). On Linux ≥ 5.0 the kernel owns
//! the key registers at EL1, generates fresh keys for a process on `exec`,
//! and user space (EL0) cannot read or write them — the property the
//! PACStack adversary model relies on.

use pacstack_qarma::{Key128, Qarma64};
use pacstack_telemetry as telemetry;
use rand::Rng;
use std::fmt;
use std::hash::{Hash, Hasher};

/// Selects one of the five architectural PA keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PaKey {
    /// Instruction key A (`APIAKey_EL1`) — used by `pacia`/`autia`; the key
    /// PACStack signs return addresses with.
    Ia,
    /// Instruction key B (`APIBKey_EL1`).
    Ib,
    /// Data key A (`APDAKey_EL1`).
    Da,
    /// Data key B (`APDBKey_EL1`).
    Db,
    /// Generic key (`APGAKey_EL1`) — used by `pacga`.
    Ga,
}

impl PaKey {
    /// All five keys, in register order.
    pub const ALL: [PaKey; 5] = [PaKey::Ia, PaKey::Ib, PaKey::Da, PaKey::Db, PaKey::Ga];

    /// Whether this is one of the two instruction keys.
    pub fn is_instruction(self) -> bool {
        matches!(self, PaKey::Ia | PaKey::Ib)
    }

    fn index(self) -> usize {
        match self {
            PaKey::Ia => 0,
            PaKey::Ib => 1,
            PaKey::Da => 2,
            PaKey::Db => 3,
            PaKey::Ga => 4,
        }
    }
}

impl fmt::Display for PaKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            PaKey::Ia => "IA",
            PaKey::Ib => "IB",
            PaKey::Da => "DA",
            PaKey::Db => "DB",
            PaKey::Ga => "GA",
        };
        f.write_str(name)
    }
}

/// One process's set of five 128-bit PA keys.
///
/// # Examples
///
/// ```
/// use pacstack_pauth::{PaKey, PaKeys};
///
/// let keys = PaKeys::from_seed(1);
/// assert_ne!(keys.key(PaKey::Ia), keys.key(PaKey::Ib));
/// // fork() shares keys; exec() regenerates them.
/// let child = keys.clone();
/// assert_eq!(child.key(PaKey::Ia), keys.key(PaKey::Ia));
/// ```
#[derive(Debug, Clone)]
pub struct PaKeys {
    keys: [Key128; 5],
    /// One fully scheduled QARMA7-64-σ1 instance per key register, rebuilt
    /// eagerly on every key write so `pac*`/`aut*`/`pacga` never re-derive a
    /// key schedule on the hot path. Corrupted keys rebuild through the same
    /// route — a glitched register yields a real (wrong) cipher, which is
    /// what preserves `Fault::KeyFault` attribution downstream.
    ciphers: [Qarma64; 5],
    /// Bumped on every key write; PAC memo caches key their entries on this
    /// so stale MACs can never survive a re-key or a key-corruption fault.
    generation: u64,
}

// Identity is the architectural register contents alone: the ciphers are a
// pure function of the keys, and the generation counter is cache-coherency
// metadata, not key material.
impl PartialEq for PaKeys {
    fn eq(&self, other: &Self) -> bool {
        self.keys == other.keys
    }
}

impl Eq for PaKeys {}

impl Hash for PaKeys {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.keys.hash(state);
    }
}

impl PaKeys {
    /// Generates five fresh keys from the given randomness source, as the
    /// kernel does on `exec`.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let mut keys = [Key128::default(); 5];
        for key in &mut keys {
            *key = Key128::new(rng.gen(), rng.gen());
        }
        if telemetry::enabled() {
            telemetry::counter("pauth_keygens_total", 1);
            telemetry::counter("pauth_cipher_rebuilds_total", 5);
        }
        Self {
            ciphers: keys.map(Qarma64::recommended),
            keys,
            generation: 0,
        }
    }

    /// Generates keys deterministically from a seed — convenient for tests
    /// and reproducible experiments.
    pub fn from_seed(seed: u64) -> Self {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        Self::generate(&mut rng)
    }

    /// Returns the 128-bit value of one key register.
    pub fn key(&self, key: PaKey) -> Key128 {
        self.keys[key.index()]
    }

    /// Replaces one key register (kernel-only operation in the model),
    /// rebuilding its scheduled cipher and bumping the generation counter.
    pub fn set_key(&mut self, key: PaKey, value: Key128) {
        if telemetry::enabled() {
            telemetry::counter("pauth_key_writes_total", 1);
            telemetry::counter("pauth_cipher_rebuilds_total", 1);
        }
        self.keys[key.index()] = value;
        self.ciphers[key.index()] = Qarma64::recommended(value);
        self.generation = self.generation.wrapping_add(1);
    }

    /// The scheduled cipher for one key register — always coherent with
    /// [`PaKeys::key`], because every key write rebuilds it.
    pub fn cipher(&self, key: PaKey) -> &Qarma64 {
        &self.ciphers[key.index()]
    }

    /// Monotonic count of key writes to this register file. Two values from
    /// the *same* `PaKeys` differ iff a key was written in between; caches
    /// combining it with their own instance tracking get precise
    /// invalidation.
    pub fn generation(&self) -> u64 {
        self.generation
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    #[test]
    fn generated_keys_are_distinct() {
        let keys = PaKeys::from_seed(42);
        for (i, a) in PaKey::ALL.iter().enumerate() {
            for b in &PaKey::ALL[i + 1..] {
                assert_ne!(keys.key(*a), keys.key(*b), "{a} == {b}");
            }
        }
    }

    #[test]
    fn seeding_is_deterministic() {
        assert_eq!(PaKeys::from_seed(7), PaKeys::from_seed(7));
        assert_ne!(PaKeys::from_seed(7), PaKeys::from_seed(8));
    }

    #[test]
    fn set_key_replaces_only_target() {
        let mut keys = PaKeys::from_seed(1);
        let old_ib = keys.key(PaKey::Ib);
        keys.set_key(PaKey::Ia, Key128::new(1, 2));
        assert_eq!(keys.key(PaKey::Ia), Key128::new(1, 2));
        assert_eq!(keys.key(PaKey::Ib), old_ib);
    }

    #[test]
    fn cached_ciphers_stay_coherent_with_keys() {
        let mut keys = PaKeys::from_seed(3);
        for key in PaKey::ALL {
            assert_eq!(keys.cipher(key).key(), keys.key(key), "{key}");
        }
        keys.set_key(PaKey::Da, Key128::new(0xAA, 0xBB));
        assert_eq!(keys.cipher(PaKey::Da).key(), Key128::new(0xAA, 0xBB));
        assert_eq!(keys.cipher(PaKey::Db).key(), keys.key(PaKey::Db));
    }

    #[test]
    fn generation_counts_key_writes() {
        let mut keys = PaKeys::from_seed(3);
        let g0 = keys.generation();
        keys.set_key(PaKey::Ia, Key128::new(1, 2));
        assert_ne!(keys.generation(), g0);
        let g1 = keys.generation();
        keys.set_key(PaKey::Ia, Key128::new(1, 2)); // same value still bumps
        assert_ne!(keys.generation(), g1);
    }

    #[test]
    fn equality_ignores_generation_metadata() {
        let mut a = PaKeys::from_seed(5);
        let b = PaKeys::from_seed(5);
        // Rewrite an identical value: generation moves, identity must not.
        let ia = a.key(PaKey::Ia);
        a.set_key(PaKey::Ia, ia);
        assert_eq!(a, b);
        a.set_key(PaKey::Ia, Key128::new(9, 9));
        assert_ne!(a, b);
    }

    #[test]
    fn instruction_key_classification() {
        assert!(PaKey::Ia.is_instruction());
        assert!(PaKey::Ib.is_instruction());
        assert!(!PaKey::Da.is_instruction());
        assert!(!PaKey::Ga.is_instruction());
    }
}
