//! The five PA key registers and their management.
//!
//! The architecture provides two instruction keys (`IA`, `IB`), two data keys
//! (`DA`, `DB`) and one generic key (`GA`). On Linux ≥ 5.0 the kernel owns
//! the key registers at EL1, generates fresh keys for a process on `exec`,
//! and user space (EL0) cannot read or write them — the property the
//! PACStack adversary model relies on.

use pacstack_qarma::Key128;
use rand::Rng;
use std::fmt;

/// Selects one of the five architectural PA keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PaKey {
    /// Instruction key A (`APIAKey_EL1`) — used by `pacia`/`autia`; the key
    /// PACStack signs return addresses with.
    Ia,
    /// Instruction key B (`APIBKey_EL1`).
    Ib,
    /// Data key A (`APDAKey_EL1`).
    Da,
    /// Data key B (`APDBKey_EL1`).
    Db,
    /// Generic key (`APGAKey_EL1`) — used by `pacga`.
    Ga,
}

impl PaKey {
    /// All five keys, in register order.
    pub const ALL: [PaKey; 5] = [PaKey::Ia, PaKey::Ib, PaKey::Da, PaKey::Db, PaKey::Ga];

    /// Whether this is one of the two instruction keys.
    pub fn is_instruction(self) -> bool {
        matches!(self, PaKey::Ia | PaKey::Ib)
    }

    fn index(self) -> usize {
        match self {
            PaKey::Ia => 0,
            PaKey::Ib => 1,
            PaKey::Da => 2,
            PaKey::Db => 3,
            PaKey::Ga => 4,
        }
    }
}

impl fmt::Display for PaKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            PaKey::Ia => "IA",
            PaKey::Ib => "IB",
            PaKey::Da => "DA",
            PaKey::Db => "DB",
            PaKey::Ga => "GA",
        };
        f.write_str(name)
    }
}

/// One process's set of five 128-bit PA keys.
///
/// # Examples
///
/// ```
/// use pacstack_pauth::{PaKey, PaKeys};
///
/// let keys = PaKeys::from_seed(1);
/// assert_ne!(keys.key(PaKey::Ia), keys.key(PaKey::Ib));
/// // fork() shares keys; exec() regenerates them.
/// let child = keys.clone();
/// assert_eq!(child.key(PaKey::Ia), keys.key(PaKey::Ia));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PaKeys {
    keys: [Key128; 5],
}

impl PaKeys {
    /// Generates five fresh keys from the given randomness source, as the
    /// kernel does on `exec`.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let mut keys = [Key128::default(); 5];
        for key in &mut keys {
            *key = Key128::new(rng.gen(), rng.gen());
        }
        Self { keys }
    }

    /// Generates keys deterministically from a seed — convenient for tests
    /// and reproducible experiments.
    pub fn from_seed(seed: u64) -> Self {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        Self::generate(&mut rng)
    }

    /// Returns the 128-bit value of one key register.
    pub fn key(&self, key: PaKey) -> Key128 {
        self.keys[key.index()]
    }

    /// Replaces one key register (kernel-only operation in the model).
    pub fn set_key(&mut self, key: PaKey, value: Key128) {
        self.keys[key.index()] = value;
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    #[test]
    fn generated_keys_are_distinct() {
        let keys = PaKeys::from_seed(42);
        for (i, a) in PaKey::ALL.iter().enumerate() {
            for b in &PaKey::ALL[i + 1..] {
                assert_ne!(keys.key(*a), keys.key(*b), "{a} == {b}");
            }
        }
    }

    #[test]
    fn seeding_is_deterministic() {
        assert_eq!(PaKeys::from_seed(7), PaKeys::from_seed(7));
        assert_ne!(PaKeys::from_seed(7), PaKeys::from_seed(8));
    }

    #[test]
    fn set_key_replaces_only_target() {
        let mut keys = PaKeys::from_seed(1);
        let old_ib = keys.key(PaKey::Ib);
        keys.set_key(PaKey::Ia, Key128::new(1, 2));
        assert_eq!(keys.key(PaKey::Ia), Key128::new(1, 2));
        assert_eq!(keys.key(PaKey::Ib), old_ib);
    }

    #[test]
    fn instruction_key_classification() {
        assert!(PaKey::Ia.is_instruction());
        assert!(PaKey::Ib.is_instruction());
        assert!(!PaKey::Da.is_instruction());
        assert!(!PaKey::Ga.is_instruction());
    }
}
