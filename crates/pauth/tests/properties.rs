//! Property-based tests for the pointer-authentication model.

use pacstack_pauth::{PaKey, PaKeys, PointerAuth, VaLayout};
use proptest::prelude::*;

fn arb_layout() -> impl Strategy<Value = VaLayout> {
    (36u32..=52, any::<bool>()).prop_map(|(va, tagged)| VaLayout::new(va, tagged))
}

fn arb_key() -> impl Strategy<Value = PaKey> {
    prop_oneof![
        Just(PaKey::Ia),
        Just(PaKey::Ib),
        Just(PaKey::Da),
        Just(PaKey::Db),
    ]
}

proptest! {
    #[test]
    fn sign_then_verify_succeeds(
        layout in arb_layout(),
        seed in any::<u64>(),
        key in arb_key(),
        addr in any::<u64>(),
        modifier in any::<u64>(),
    ) {
        let pa = PointerAuth::new(layout);
        let keys = PaKeys::from_seed(seed);
        let ptr = layout.canonical(addr & layout.address_mask());
        let signed = pa.pac(&keys, key, ptr, modifier);
        prop_assert_eq!(pa.aut(&keys, key, signed, modifier), Ok(ptr));
    }

    #[test]
    fn verify_with_wrong_modifier_rarely_succeeds(
        seed in any::<u64>(),
        addr in any::<u64>(),
        modifier in any::<u64>(),
    ) {
        // With a 16-bit PAC a wrong modifier passes with probability 2^-16;
        // over the default 256 proptest cases a false accept is possible but
        // extremely unlikely (p ≈ 0.4%); tolerate it by checking the PAC
        // actually collides when verification passes.
        let layout = VaLayout::default();
        let pa = PointerAuth::new(layout);
        let keys = PaKeys::from_seed(seed);
        let ptr = layout.canonical(addr & layout.address_mask());
        let signed = pa.pac(&keys, PaKey::Ia, ptr, modifier);
        match pa.aut(&keys, PaKey::Ia, signed, modifier.wrapping_add(1)) {
            Ok(_) => prop_assert_eq!(
                pa.compute_pac(&keys, PaKey::Ia, ptr, modifier),
                pa.compute_pac(&keys, PaKey::Ia, ptr, modifier.wrapping_add(1))
            ),
            Err(err) => prop_assert!(!layout.is_canonical(err.corrupted)),
        }
    }

    #[test]
    fn strip_is_idempotent(layout in arb_layout(), ptr in any::<u64>()) {
        let pa = PointerAuth::new(layout);
        prop_assert_eq!(pa.strip(pa.strip(ptr)), pa.strip(ptr));
    }

    #[test]
    fn signed_pointer_preserves_address(
        layout in arb_layout(),
        seed in any::<u64>(),
        key in arb_key(),
        addr in any::<u64>(),
        modifier in any::<u64>(),
    ) {
        let pa = PointerAuth::new(layout);
        let keys = PaKeys::from_seed(seed);
        let ptr = layout.canonical(addr & layout.address_mask());
        let signed = pa.pac(&keys, key, ptr, modifier);
        prop_assert_eq!(signed & layout.address_mask(), ptr & layout.address_mask());
    }

    #[test]
    fn pac_fits_declared_width(
        layout in arb_layout(),
        seed in any::<u64>(),
        addr in any::<u64>(),
        modifier in any::<u64>(),
    ) {
        let pa = PointerAuth::new(layout);
        let keys = PaKeys::from_seed(seed);
        let pac = pa.compute_pac(&keys, PaKey::Ia, addr, modifier);
        prop_assert!(pac < (1u64 << layout.pac_bits()));
    }

    #[test]
    fn corrupted_pointer_never_translates(
        layout in arb_layout(),
        addr in any::<u64>(),
        instruction in any::<bool>(),
    ) {
        let ptr = layout.canonical(addr & layout.address_mask());
        prop_assert!(!layout.is_canonical(layout.corrupt(ptr, instruction)));
    }
}
