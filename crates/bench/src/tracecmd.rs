//! The `repro trace` subcommand: a deterministic telemetry capture.
//!
//! Enables the telemetry sink, drives a fixed scenario through every
//! instrumented layer — profiled NGINX workload runs, a fault-injection
//! mini-campaign, an ACS call/return/longjmp exercise — and exports the
//! merged data as a Prometheus text dump (also printed to stdout, where CI
//! golden-diffs it), a Chrome `trace.json` and a collapsed-stack
//! flamegraph.
//!
//! Everything is clocked on **simulated cycles**, never wall time, and all
//! records merge in deterministic task order through the exec engine — so
//! every artifact is byte-identical at any `--jobs` count and across
//! repeated runs.

use pacstack_acs::{AcsConfig, AuthenticatedCallStack};
use pacstack_chaos::campaign::{chaos_module, coverage};
use pacstack_compiler::Scheme;
use pacstack_exec as exec;
use pacstack_pauth::{PaKeys, PointerAuth, VaLayout};
use pacstack_telemetry as telemetry;
use pacstack_telemetry::{export, Merged};
use pacstack_workloads::{measure, nginx};
use rand::Rng;
use std::fmt::Write as _;
use std::path::Path;

/// Instruction budget for one profiled workload run — generous: the NGINX
/// module exits long before this, and exceeding it is a panic (a workload
/// must run clean).
const BUDGET: u64 = 50_000_000;

/// Everything `repro trace` produces, as strings so tests can byte-compare
/// artifacts without touching the filesystem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceArtifacts {
    /// The human-readable capture summary printed before the metrics dump.
    pub summary: String,
    /// Prometheus-style text dump of all counters and histograms.
    pub prometheus: String,
    /// Chrome `trace.json` (open in `chrome://tracing` or Perfetto).
    pub chrome_json: String,
    /// Collapsed-stack flamegraph text (`stack cycles` per line).
    pub flame: String,
}

impl TraceArtifacts {
    /// The exact stdout of `repro trace`: summary, then the Prometheus
    /// dump (the part CI golden-diffs).
    pub fn stdout(&self) -> String {
        format!("{}{}", self.summary, self.prometheus)
    }
}

/// Profiled workload runs: each (track, scheme) pair runs the NGINX server
/// module with per-function cycle attribution, fanned through the exec
/// engine so records exercise the deterministic task-order merge.
fn phase_workloads(quick: bool) -> (u64, u64) {
    let rounds = if quick { 1 } else { 3 };
    let module = nginx::server_module(rounds);
    let arms: [(&str, Scheme); 2] = [
        ("nginx/baseline", Scheme::Baseline),
        ("nginx/pacstack", Scheme::PacStack),
    ];
    let run = exec::parallel_map(&arms, |_, (track, scheme)| {
        measure::run_module_profiled(&module, *scheme, BUDGET, track)
    });
    exec::stats::record("trace/workloads", run.stats);
    let base = run.results[0].cycles;
    let inst = run.results[1].cycles;
    (base, inst)
}

/// Fault-injection mini-campaign over every chaos target, populating the
/// injection-window occupancy counters and the trial-latency histogram.
///
/// # Errors
///
/// Returns a message if any chaos target fails to prepare.
fn phase_chaos(quick: bool) -> Result<(u64, u64), String> {
    let trials_per_class = if quick { 2 } else { 6 };
    let report = coverage(&chaos_module(), trials_per_class, 0xFA17C)
        .map_err(|e| format!("chaos campaign failed to prepare: {e}"))?;
    let mut trials = 0u64;
    let mut detected = 0u64;
    for target in &report {
        for class in pacstack_chaos::FaultClass::ALL {
            let cell = target.cell(class);
            trials += cell.total();
            detected += cell.detected;
        }
    }
    Ok((trials, detected))
}

/// ACS exercise: seeded call/return churn with one tampered return and one
/// `setjmp`/`longjmp` per trial, driving the `acs_*` and `pauth_*`
/// counters (including a fresh key generation per trial).
fn phase_acs(quick: bool) -> u64 {
    let trials = if quick { 8 } else { 32 };
    let run = exec::run_trials(0x7E1E_ACE5, trials, |_, rng| {
        let pa = PointerAuth::new(VaLayout::default());
        let keys = PaKeys::from_seed(rng.gen());
        let mut acs = AuthenticatedCallStack::new(pa, keys, AcsConfig::default());
        acs.call(0x40_1000);
        let buf = acs.setjmp(0x40_5000, 0x7fff_0000);
        acs.call(0x40_2000);
        acs.call(0x40_3000);
        assert_eq!(acs.ret().ok(), Some(0x40_3000));
        acs.longjmp(&buf).ok();
        acs.call(0x40_4000);
        acs.frames_mut()[1].stored_chain ^= 1; // adversary tampers the slot
        assert!(acs.ret().is_err());
        acs.ret().ok();
    });
    exec::stats::record("trace/acs", run.stats);
    trials
}

/// Runs the full capture scenario and returns the merged telemetry plus
/// the per-phase summary. Enables the global sink for the duration; the
/// sink is restored to disabled (and the store cleared) before returning.
///
/// # Errors
///
/// Propagates phase failures (chaos preparation errors).
pub fn capture(quick: bool) -> Result<TraceArtifacts, String> {
    telemetry::reset();
    telemetry::enable();
    let result = capture_phases(quick);
    let merged = telemetry::snapshot();
    telemetry::disable();
    telemetry::reset();
    let summary = result?;
    Ok(TraceArtifacts {
        summary: render_summary(quick, &summary, &merged),
        prometheus: export::prometheus(&merged),
        chrome_json: export::chrome_json(&merged),
        flame: export::flame(&merged),
    })
}

/// Per-phase headline numbers for the summary block.
struct PhaseSummary {
    nginx_baseline_cycles: u64,
    nginx_pacstack_cycles: u64,
    chaos_trials: u64,
    chaos_detected: u64,
    acs_trials: u64,
}

fn capture_phases(quick: bool) -> Result<PhaseSummary, String> {
    let (nginx_baseline_cycles, nginx_pacstack_cycles) = phase_workloads(quick);
    let (chaos_trials, chaos_detected) = phase_chaos(quick)?;
    let acs_trials = phase_acs(quick);
    Ok(PhaseSummary {
        nginx_baseline_cycles,
        nginx_pacstack_cycles,
        chaos_trials,
        chaos_detected,
        acs_trials,
    })
}

fn render_summary(quick: bool, phases: &PhaseSummary, merged: &Merged) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "telemetry trace capture{}",
        if quick { " (quick mode)" } else { "" }
    );
    let _ = writeln!(
        s,
        "phase workloads  nginx profiled: baseline {} cycles, pacstack {} cycles",
        phases.nginx_baseline_cycles, phases.nginx_pacstack_cycles
    );
    let _ = writeln!(
        s,
        "phase chaos      {} injection trials, {} detected crashes",
        phases.chaos_trials, phases.chaos_detected
    );
    let _ = writeln!(
        s,
        "phase acs        {} call-chain trials",
        phases.acs_trials
    );
    let _ = writeln!(
        s,
        "merged           {} counters, {} histograms, {} stacks, {} spans",
        merged.counters.len(),
        merged.histograms.len(),
        merged.stacks.len(),
        merged.spans.len()
    );
    s.push('\n');
    s
}

/// Runs the capture, prints the summary + Prometheus dump to stdout and
/// writes `metrics.prom`, `trace.json` and `flamegraph.txt` to `out_dir`.
///
/// # Errors
///
/// Propagates capture failures and I/O errors writing the artifacts.
pub fn run(quick: bool, out_dir: &Path) -> Result<(), String> {
    let artifacts = capture(quick)?;
    print!("{}", artifacts.stdout());
    std::fs::create_dir_all(out_dir)
        .map_err(|e| format!("cannot create {}: {e}", out_dir.display()))?;
    for (name, body) in [
        ("metrics.prom", &artifacts.prometheus),
        ("trace.json", &artifacts.chrome_json),
        ("flamegraph.txt", &artifacts.flame),
    ] {
        let path = out_dir.join(name);
        std::fs::write(&path, body).map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        eprintln!("wrote {}", path.display());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    #[test]
    fn quick_capture_produces_all_artifacts() {
        let artifacts = capture(true).unwrap();
        assert!(artifacts
            .summary
            .contains("telemetry trace capture (quick mode)"));
        assert!(artifacts.prometheus.contains("acs_calls_total"));
        assert!(artifacts.prometheus.contains("cpu_cycles_total"));
        assert!(artifacts.prometheus.contains("chaos_trials_total"));
        assert!(artifacts.prometheus.contains("pauth_pac_computes_total"));
        assert!(artifacts.chrome_json.contains("nginx/pacstack"));
        assert!(artifacts.flame.contains("nginx/baseline;"));
        // The capture leaves the global sink disabled and empty.
        assert!(!telemetry::enabled());
        assert_eq!(telemetry::snapshot(), Merged::default());
    }
}
