//! The `repro perf` harness: before/after measurements of the PAC fast path.
//!
//! Three layers of the pipeline are measured, each against the path it
//! replaced, and the results are written both as a human-readable table on
//! stdout and as machine-readable JSON (default `BENCH_pr3.json`) so the
//! repository accumulates a performance trajectory over time:
//!
//! * **`qarma_encrypt`** — raw QARMA-64 throughput. *Before* re-derives the
//!   key schedule on every call and runs the cell-based reference data path
//!   (the original cost profile of `Qarma64::recommended` per call); *after*
//!   encrypts through a prebuilt instance on the packed-nibble SWAR path.
//! * **`pac_compute`** — [`PointerAuth::compute_pac`] throughput. *Before*
//!   is [`PointerAuth::compute_pac_reference`] (schedule re-derived per MAC);
//!   *after* uses the per-key cached cipher inside [`PaKeys`].
//! * **`pac_insns`** — retired PAC instructions per second on the full CPU
//!   model running a sign/authenticate loop, with the direct-mapped PAC memo
//!   cache disabled (*before*) and enabled (*after*). Both arms already use
//!   the cached packed cipher, so this isolates the memo layer alone.
//! * **`repro_* wall time`** — end-to-end wall time of the experiment
//!   driver, re-executed as a child process with `PACSTACK_REFERENCE_PAC=1`
//!   (*before*: reference cipher, no caches) and without it (*after*: the
//!   full fast path). The two arms' stdout is byte-compared and any
//!   difference is a hard error — the optimisation gate is that caching
//!   changes no numbers.
//!
//! * **`repro_* wall telemetry`** — the zero-overhead-when-disabled gate
//!   for the telemetry subsystem: the same end-to-end run with the sink
//!   enabled (`PACSTACK_TELEMETRY=1`, *before*) and disabled (*after*),
//!   byte-comparing stdout, plus a coarse cross-run comparison against the
//!   committed `BENCH_pr3.json` after-arm.
//!
//! All timings use a monotonic clock on the current machine; before/after
//! pairs in one JSON file are always from the same run.

use pacstack_aarch64::program::Op;
use pacstack_aarch64::{Cpu, Instruction, Program, Reg};
use pacstack_pauth::{PaKey, PaKeys, PointerAuth, VaLayout};
use pacstack_qarma::{reference, Key128, Qarma64, Sigma};
use std::fmt::Write as _;
use std::hint::black_box;
use std::path::Path;
use std::process::{Command, Stdio};
use std::time::Instant;

/// One before/after measurement, serialised verbatim into the bench JSON.
#[derive(Debug, Clone)]
pub struct PerfRecord {
    /// Benchmark name (stable across PRs, so trajectories can be compared).
    pub bench: String,
    /// The replaced path's score, when it was measured in this run.
    pub before: Option<f64>,
    /// The current path's score.
    pub after: f64,
    /// Unit of both scores: `ops_per_s` (higher is better) or `ms` (lower
    /// is better).
    pub unit: &'static str,
    /// Worker-thread count the measurement ran under (0 = auto).
    pub jobs: usize,
}

impl PerfRecord {
    /// The improvement factor, oriented so that > 1 always means "faster".
    fn speedup(&self) -> Option<f64> {
        let before = self.before?;
        Some(match self.unit {
            "ms" => before / self.after,
            _ => self.after / before,
        })
    }
}

/// Milliseconds of sustained measurement per arm.
fn target_ms(quick: bool) -> u128 {
    if quick {
        40
    } else {
        400
    }
}

/// Measures the sustained rate of `f` in operations per second: batches of
/// `batch` calls are timed until `target_ms` of wall time has accumulated.
fn measure_rate<F: FnMut(u64) -> u64>(batch: u64, target_ms: u128, mut f: F) -> f64 {
    // Warm-up batch, unmeasured (first-touch of tables, branch training).
    let mut sink = 0u64;
    for i in 0..batch {
        sink ^= f(i);
    }
    black_box(sink);
    let start = Instant::now();
    let mut ops = 0u64;
    let mut round = 1u64;
    while start.elapsed().as_millis() < target_ms {
        let base = round * batch;
        let mut sink = 0u64;
        for i in 0..batch {
            sink ^= f(base + i);
        }
        black_box(sink);
        ops += batch;
        round += 1;
    }
    ops as f64 / start.elapsed().as_secs_f64()
}

/// QARMA-64 throughput: per-call schedule derivation + cell path (the seed's
/// cost profile) vs a prebuilt schedule on the packed SWAR path.
fn bench_qarma(quick: bool) -> PerfRecord {
    let key = Key128::new(0x84be85ce9804e94b, 0xec2802d4e0a488e9);
    let cipher = Qarma64::recommended(key);
    let tms = target_ms(quick);
    let before = measure_rate(512, tms, |i| {
        reference::encrypt(
            key,
            Sigma::Sigma1,
            7,
            0xfb623599da6e8127 ^ i,
            0x477d469dec0b8762,
        )
    });
    let after = measure_rate(4096, tms, |i| {
        cipher.encrypt(0xfb623599da6e8127 ^ i, 0x477d469dec0b8762)
    });
    PerfRecord {
        bench: "qarma64_encrypt".into(),
        before: Some(before),
        after,
        unit: "ops_per_s",
        jobs: 1,
    }
}

/// PAC computation throughput: schedule re-derived per MAC vs the per-key
/// cached cipher.
fn bench_pac_compute(quick: bool) -> PerfRecord {
    let pa = PointerAuth::new(VaLayout::default());
    let keys = PaKeys::from_seed(1);
    let tms = target_ms(quick);
    let before = measure_rate(512, tms, |i| {
        pa.compute_pac_reference(&keys, PaKey::Ia, 0x40_1000 ^ (i << 4), i)
    });
    let after = measure_rate(4096, tms, |i| {
        pa.compute_pac(&keys, PaKey::Ia, 0x40_1000 ^ (i << 4), i)
    });
    PerfRecord {
        bench: "pac_compute".into(),
        before: Some(before),
        after,
        unit: "ops_per_s",
        jobs: 1,
    }
}

/// A program that signs, authenticates and MACs in a counted loop — the
/// return-address churn of a deep call tree, distilled.
fn pac_loop_program(iterations: u64) -> Program {
    let mut p = Program::new();
    p.function_ops(
        "main",
        vec![
            Op::I(Instruction::MovImm(Reg::X1, iterations)),
            Op::Label("loop".into()),
            Op::I(Instruction::Paciasp),
            Op::I(Instruction::Autiasp),
            Op::I(Instruction::Pacga(Reg::X0, Reg::X30, Reg::Sp)),
            Op::I(Instruction::AddImm(Reg::X1, Reg::X1, -1)),
            Op::JumpNonZero(Reg::X1, "loop".into()),
            Op::I(Instruction::MovImm(Reg::X0, 0)),
            Op::I(Instruction::Ret),
        ],
    );
    p
}

/// Retired PAC instructions per second on the CPU model, memo off vs on.
fn bench_pac_insns(quick: bool) -> PerfRecord {
    let iterations: u64 = if quick { 20_000 } else { 200_000 };
    let budget = iterations * 8 + 64;
    let pac_insns = iterations * 3; // paciasp + autiasp + pacga per pass
    let run_arm = |memo: bool| -> f64 {
        let mut cpu = Cpu::with_seed(pac_loop_program(iterations), 3);
        cpu.set_pac_memo(memo);
        let start = Instant::now();
        let outcome = cpu.run(budget).expect("pac loop must retire cleanly");
        // 5 insns per pass + entry/exit glue; pinned by the unit test below.
        assert_eq!(outcome.instructions, iterations * 5 + 5);
        pac_insns as f64 / start.elapsed().as_secs_f64()
    };
    PerfRecord {
        bench: "pac_insns".into(),
        before: Some(run_arm(false)),
        after: run_arm(true),
        unit: "ops_per_s",
        jobs: 1,
    }
}

/// Runs the experiment driver as a child process and returns
/// `(stdout, wall-clock ms)`. `reference` selects the pre-optimisation arm
/// via `PACSTACK_REFERENCE_PAC`; `telemetry` enables the telemetry sink in
/// the child via `PACSTACK_TELEMETRY=1` (capture only, no export I/O).
fn exec_repro(
    target: &str,
    jobs: usize,
    reference: bool,
    telemetry: bool,
) -> Result<(Vec<u8>, f64), String> {
    let exe = std::env::current_exe().map_err(|e| format!("cannot locate repro binary: {e}"))?;
    let mut cmd = Command::new(exe);
    cmd.arg(target).stderr(Stdio::null());
    if jobs > 0 {
        cmd.arg("--jobs").arg(jobs.to_string());
    }
    if reference {
        cmd.env("PACSTACK_REFERENCE_PAC", "1");
    } else {
        cmd.env_remove("PACSTACK_REFERENCE_PAC");
    }
    if telemetry {
        cmd.env("PACSTACK_TELEMETRY", "1");
    } else {
        cmd.env_remove("PACSTACK_TELEMETRY");
    }
    let start = Instant::now();
    let out = cmd
        .output()
        .map_err(|e| format!("failed to run repro {target}: {e}"))?;
    let wall = start.elapsed().as_secs_f64() * 1e3;
    if !out.status.success() {
        return Err(format!("repro {target} exited with {}", out.status));
    }
    Ok((out.stdout, wall))
}

/// End-to-end wall time of `repro <target>`, fast path vs reference arm,
/// with the byte-identity gate between the two arms' stdout.
fn bench_e2e(target: &str, jobs: usize) -> Result<PerfRecord, String> {
    let (ref_out, ref_ms) = exec_repro(target, jobs, true, false)?;
    let (fast_out, fast_ms) = exec_repro(target, jobs, false, false)?;
    if ref_out != fast_out {
        return Err(format!(
            "determinism gate FAILED: `repro {target}` stdout differs between the \
             reference arm and the fast path ({} vs {} bytes) — the caches changed results",
            ref_out.len(),
            fast_out.len()
        ));
    }
    let jobs_label = if jobs == 0 {
        "auto".to_owned()
    } else {
        jobs.to_string()
    };
    Ok(PerfRecord {
        bench: format!("repro_{target}_wall_jobs{jobs_label}"),
        before: Some(ref_ms),
        after: fast_ms,
        unit: "ms",
        jobs,
    })
}

/// Noise band for wall-clock comparisons against a committed bench file:
/// timings from another run (and possibly another machine state) jitter far
/// beyond the per-call cost being guarded, so this gate only catches gross
/// regressions. The same-run telemetry-on/off pair is the precise check.
const CROSS_RUN_NOISE: f64 = 1.25;

/// Extracts the `after` score of one bench entry from a committed
/// `BENCH_*.json` file (the schema is our own `to_json` output).
fn baseline_after(json: &str, bench: &str) -> Option<f64> {
    let entry = json.find(&format!("\"bench\": \"{bench}\""))?;
    let rest = &json[entry..];
    let field = rest.find("\"after\": ")?;
    let tail = &rest[field + "\"after\": ".len()..];
    let end = tail.find([',', '\n', '}'])?;
    tail[..end].trim().parse().ok()
}

/// The zero-overhead-when-disabled gate for the telemetry subsystem:
///
/// * runs `repro <target>` with the telemetry sink enabled
///   (`PACSTACK_TELEMETRY=1`) and disabled, byte-comparing stdout — an
///   enabled sink must never change results;
/// * records the pair as `repro_<target>_wall_telemetry` (before = sink
///   on, after = sink off);
/// * when the committed `BENCH_pr3.json` is present, asserts the
///   telemetry-off wall time stays within [`CROSS_RUN_NOISE`] of the PR 3
///   after-arm, recording the comparison as `repro_<target>_wall_vs_pr3`.
fn bench_e2e_telemetry(target: &str, jobs: usize) -> Result<Vec<PerfRecord>, String> {
    let (on_out, on_ms) = exec_repro(target, jobs, false, true)?;
    let (off_out, off_ms) = exec_repro(target, jobs, false, false)?;
    if on_out != off_out {
        return Err(format!(
            "telemetry gate FAILED: `repro {target}` stdout differs with the sink \
             enabled vs disabled ({} vs {} bytes) — instrumentation changed results",
            on_out.len(),
            off_out.len()
        ));
    }
    let mut records = vec![PerfRecord {
        bench: format!("repro_{target}_wall_telemetry"),
        before: Some(on_ms),
        after: off_ms,
        unit: "ms",
        jobs,
    }];
    let pr3_bench = format!("repro_{target}_wall_jobs{jobs}");
    match std::fs::read_to_string("BENCH_pr3.json") {
        Ok(json) => {
            if let Some(pr3_after) = baseline_after(&json, &pr3_bench) {
                if off_ms > pr3_after * CROSS_RUN_NOISE {
                    return Err(format!(
                        "telemetry gate FAILED: `repro {target}` telemetry-off wall time \
                         {off_ms:.0} ms exceeds the BENCH_pr3.json after-arm \
                         ({pr3_after:.0} ms) by more than the {CROSS_RUN_NOISE}x noise band"
                    ));
                }
                records.push(PerfRecord {
                    bench: format!("repro_{target}_wall_vs_pr3"),
                    before: Some(pr3_after),
                    after: off_ms,
                    unit: "ms",
                    jobs,
                });
            } else {
                eprintln!("BENCH_pr3.json has no {pr3_bench} entry; skipping cross-run gate");
            }
        }
        Err(_) => eprintln!("BENCH_pr3.json not found; skipping cross-run gate"),
    }
    Ok(records)
}

/// Serialises the records as a JSON array matching the committed
/// `BENCH_*.json` schema: `{bench, before?, after, unit, jobs}`.
fn to_json(records: &[PerfRecord]) -> String {
    let mut s = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        s.push_str("  {\n");
        let _ = writeln!(s, "    \"bench\": \"{}\",", r.bench);
        if let Some(b) = r.before {
            let _ = writeln!(s, "    \"before\": {b:.1},");
        }
        let _ = writeln!(s, "    \"after\": {:.1},", r.after);
        let _ = writeln!(s, "    \"unit\": \"{}\",", r.unit);
        let _ = writeln!(s, "    \"jobs\": {}", r.jobs);
        s.push_str(if i + 1 == records.len() {
            "  }\n"
        } else {
            "  },\n"
        });
    }
    s.push_str("]\n");
    s
}

/// Formats the human-readable results table.
fn render_table(records: &[PerfRecord], quick: bool) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "PAC fast-path performance{}",
        if quick { " (quick mode)" } else { "" }
    );
    let _ = writeln!(
        s,
        "{:<28} {:>14} {:>14} {:>9}  unit",
        "bench", "before", "after", "speedup"
    );
    for r in records {
        let before = r
            .before
            .map_or_else(|| "-".to_owned(), |b| format!("{b:.0}"));
        let speedup = r
            .speedup()
            .map_or_else(|| "-".to_owned(), |f| format!("{f:.2}x"));
        let _ = writeln!(
            s,
            "{:<28} {:>14} {:>14.0} {:>9}  {}",
            r.bench, before, r.after, speedup, r.unit
        );
    }
    s
}

/// Runs the full perf suite (or the `--quick` smoke variant), prints the
/// table to stdout and writes the JSON trajectory file to `out`.
///
/// # Errors
///
/// Returns a message when the child `repro` processes cannot be spawned or
/// when the byte-identity gate between the reference arm and the fast path
/// fails.
pub fn run(quick: bool, out: &Path) -> Result<(), String> {
    let mut records = vec![
        bench_qarma(quick),
        bench_pac_compute(quick),
        bench_pac_insns(quick),
    ];
    if quick {
        // Smoke proxy: one representative experiment, sequential only.
        records.push(bench_e2e("table1", 1)?);
        records.extend(bench_e2e_telemetry("table1", 1)?);
    } else {
        records.push(bench_e2e("all", 1)?);
        records.push(bench_e2e("all", 0)?);
        records.extend(bench_e2e_telemetry("all", 1)?);
    }
    print!("{}", render_table(&records, quick));
    println!("determinism gate: reference arm and fast path produced byte-identical stdout");
    println!("telemetry gate: enabled and disabled sinks produced byte-identical stdout");
    std::fs::write(out, to_json(&records))
        .map_err(|e| format!("cannot write {}: {e}", out.display()))?;
    eprintln!("wrote {}", out.display());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_matches_the_documented_schema() {
        let records = vec![
            PerfRecord {
                bench: "qarma64_encrypt".into(),
                before: Some(1000.0),
                after: 5000.0,
                unit: "ops_per_s",
                jobs: 1,
            },
            PerfRecord {
                bench: "repro_all_wall_jobsauto".into(),
                before: None,
                after: 1234.5,
                unit: "ms",
                jobs: 0,
            },
        ];
        let json = to_json(&records);
        assert!(json.contains("\"bench\": \"qarma64_encrypt\""));
        assert!(json.contains("\"before\": 1000.0"));
        assert!(json.contains("\"after\": 5000.0"));
        assert!(json.contains("\"unit\": \"ops_per_s\""));
        assert!(json.contains("\"jobs\": 0"));
        // The optional field really is omitted when absent.
        let tail = json.split("repro_all_wall_jobsauto").nth(1).unwrap();
        assert!(!tail.contains("before"));
    }

    #[test]
    fn speedup_orients_both_units_as_faster_is_greater() {
        let rate = PerfRecord {
            bench: "r".into(),
            before: Some(100.0),
            after: 500.0,
            unit: "ops_per_s",
            jobs: 1,
        };
        let wall = PerfRecord {
            bench: "w".into(),
            before: Some(500.0),
            after: 100.0,
            unit: "ms",
            jobs: 1,
        };
        assert_eq!(rate.speedup(), Some(5.0));
        assert_eq!(wall.speedup(), Some(5.0));
    }

    #[test]
    fn baseline_after_reads_the_committed_schema() {
        let json = to_json(&[
            PerfRecord {
                bench: "repro_all_wall_jobs1".into(),
                before: Some(900.0),
                after: 850.5,
                unit: "ms",
                jobs: 1,
            },
            PerfRecord {
                bench: "repro_all_wall_jobsauto".into(),
                before: None,
                after: 300.0,
                unit: "ms",
                jobs: 0,
            },
        ]);
        assert_eq!(baseline_after(&json, "repro_all_wall_jobs1"), Some(850.5));
        assert_eq!(
            baseline_after(&json, "repro_all_wall_jobsauto"),
            Some(300.0)
        );
        assert_eq!(baseline_after(&json, "no_such_bench"), None);
    }

    #[test]
    fn pac_loop_program_retires_the_expected_instruction_count() {
        let mut cpu = Cpu::with_seed(pac_loop_program(10), 3);
        let outcome = cpu.run(1_000).unwrap();
        assert_eq!(outcome.instructions, 10 * 5 + 5);
    }
}
