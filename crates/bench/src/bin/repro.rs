//! Regenerates the PACStack paper's tables and figures.
//!
//! ```text
//! repro table1     Table 1   attack success probabilities
//! repro figure5    Figure 5  per-benchmark SPEC overheads
//! repro table2     Table 2   geometric-mean overheads
//! repro table3     Table 3   NGINX SSL TPS
//! repro birthday   §6.2.1    collision harvesting vs birthday bound
//! repro guessing   §4.3      divide-and-conquer vs re-seeded guessing
//! repro gadget     §6.3.1    qualitative attack matrix (incl. tail-call gadget)
//! repro ablation   DESIGN.md ablations: masking cost, leaf heuristic
//! repro games      Appendix A: the G-PAC-Collision security game
//! repro pac-width  §2.2      PAC width vs address-space configuration
//! repro confirm    §7.3      ConFIRM compatibility pass/fail table
//! repro mix        §7.1      retired instructions by class per scheme
//! repro reuse      §6.1      interchangeable signed pointers per scheme
//! repro faults     §3/§6.2   fault-injection coverage matrix + supervisor economics
//! repro all        everything above
//! repro perf       before/after PAC fast-path benchmarks (not part of `all`)
//! repro trace      deterministic telemetry capture + export (not part of `all`)
//! ```
//!
//! `repro perf` accepts `--quick` (a fast smoke variant for CI) and
//! `--out <file>` (where to write the bench JSON; default `BENCH_pr4.json`).
//! It re-executes this binary with `PACSTACK_REFERENCE_PAC=1` to time the
//! pre-optimisation pipeline and byte-compares the two arms' stdout, and
//! with `PACSTACK_TELEMETRY=1` to verify the telemetry sink is free when
//! disabled and invisible when enabled.
//!
//! `repro trace` enables the telemetry sink, drives a fixed scenario
//! through every instrumented layer, prints a summary plus the Prometheus
//! metrics dump to stdout, and writes `metrics.prom`, `trace.json`
//! (chrome://tracing) and `flamegraph.txt` to `--out <dir>` (default
//! `results/trace`). All artifacts are clocked on simulated cycles and are
//! byte-identical at any `--jobs` count. `--quick` shrinks the scenario
//! for CI, where the dump is golden-diffed.
//!
//! Any *other* experiment can be captured by setting `PACSTACK_TELEMETRY`
//! in the environment: `PACSTACK_TELEMETRY=<dir>` enables the sink for the
//! whole run and writes the same three artifacts to `<dir>` on exit
//! (`PACSTACK_TELEMETRY=1` enables capture without exporting — used by the
//! perf harness to price the instrumentation alone). Stdout is unaffected
//! either way: enabling telemetry never changes results.
//!
//! Add `--save <dir>` to also write each section to `<dir>/<name>.txt`
//! (artifact-evaluation style).
//!
//! Add `--jobs <N>` to set the worker-thread count for the Monte Carlo and
//! sweep engine (default: one per available core; `--jobs 0` also means
//! auto). Results are **byte-identical at any thread count**: every trial
//! draws from its own `(experiment, trial-index)` RNG stream and results
//! merge in index order. Per-experiment throughput/occupancy statistics go
//! to stderr, never stdout, so saved tables stay reproducible.

use pacstack_bench::{exec, experiments, perf, render, tracecmd};
use pacstack_telemetry as telemetry;
use std::env;
use std::io::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;

/// Prints a section and, when `--save <dir>` was given, also writes it to
/// `<dir>/<name>.txt`.
fn emit(save_dir: &Option<PathBuf>, name: &str, body: &str) {
    println!("{body}");
    if let Some(dir) = save_dir {
        let path = dir.join(format!("{name}.txt"));
        match std::fs::File::create(&path).and_then(|mut f| f.write_all(body.as_bytes())) {
            Ok(()) => eprintln!("saved {}", path.display()),
            Err(e) => eprintln!("could not save {}: {e}", path.display()),
        }
    }
}

fn run_table1(save: &Option<PathBuf>) {
    let mut body = String::new();
    for b in [4u32, 6, 8] {
        let cells = experiments::table1(b, 4_000, 0x71u64);
        body.push_str(&render::table1(&cells, b));
        body.push('\n');
    }
    emit(save, "table1", &body);
}

fn run_figure5(save: &Option<PathBuf>) -> Vec<experiments::Figure5Row> {
    let rows = experiments::figure5();
    emit(save, "figure5", &render::figure5(&rows));
    rows
}

fn run_table2(save: &Option<PathBuf>, rows: &[experiments::Figure5Row]) {
    let t2 = experiments::table2(rows);
    let cpp = experiments::cpp_aggregate();
    emit(save, "table2", &render::table2(&t2, cpp));
}

fn run_table3(save: &Option<PathBuf>) {
    let rows = experiments::table3(10, 42);
    emit(save, "table3", &render::table3(&rows));
}

fn run_birthday(save: &Option<PathBuf>) {
    let rows = experiments::birthday(&[6, 8, 10, 12], 60, 7);
    emit(save, "birthday", &render::birthday(&rows));
}

fn run_guessing(save: &Option<PathBuf>) {
    let rows = experiments::guessing_costs(&[6, 8, 10], 200);
    emit(save, "guessing", &render::guessing(&rows));
}

fn run_gadget(save: &Option<PathBuf>) {
    let rows = experiments::attack_matrix();
    emit(save, "attack_matrix", &render::attack_matrix(&rows));
}

fn run_ablation(save: &Option<PathBuf>) {
    let rows = experiments::ablations();
    emit(save, "ablation", &render::ablations(&rows));
}

fn run_confirm(save: &Option<PathBuf>) {
    let rows = experiments::confirm_table();
    emit(save, "confirm", &render::confirm(&rows));
}

fn run_mix(save: &Option<PathBuf>) {
    let rows = experiments::instruction_mix();
    emit(save, "instruction_mix", &render::instruction_mix(&rows));
}

fn run_pac_width(save: &Option<PathBuf>) {
    let rows = experiments::pac_width_sweep();
    emit(save, "pac_width", &render::pac_width(&rows));
}

fn run_reuse(save: &Option<PathBuf>) {
    let rows = experiments::reuse_opportunities();
    emit(save, "reuse", &render::reuse(&rows));
}

fn run_games(save: &Option<PathBuf>) {
    let rows = experiments::collision_games(&[6, 8, 10], 40, 0xA11CE);
    emit(save, "games", &render::games(&rows));
}

fn run_faults(save: &Option<PathBuf>) -> Result<(), ()> {
    match experiments::faults(24, 0xFA17) {
        Ok(report) => {
            emit(save, "faults", &render::faults(&report));
            Ok(())
        }
        Err(e) => {
            eprintln!("fault-injection campaign failed to prepare: {e}");
            Err(())
        }
    }
}

/// Applies the `PACSTACK_TELEMETRY` environment contract: any non-empty
/// value enables the sink for the whole run; a value other than `1` is the
/// directory the merged capture is exported to on exit.
fn telemetry_from_env() -> Option<PathBuf> {
    let value = env::var("PACSTACK_TELEMETRY").ok()?;
    if value.is_empty() {
        return None;
    }
    telemetry::enable();
    (value != "1").then(|| PathBuf::from(value))
}

/// Exports the ambient capture at exit when `PACSTACK_TELEMETRY` named a
/// directory.
fn export_env_telemetry(dir: &PathBuf) {
    let merged = telemetry::snapshot();
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("cannot create {}: {e}", dir.display());
        return;
    }
    for (name, body) in [
        ("metrics.prom", telemetry::export::prometheus(&merged)),
        ("trace.json", telemetry::export::chrome_json(&merged)),
        ("flamegraph.txt", telemetry::export::flame(&merged)),
    ] {
        let path = dir.join(name);
        match std::fs::write(&path, body) {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => eprintln!("cannot write {}: {e}", path.display()),
        }
    }
}

fn main() -> ExitCode {
    let mut experiment = "all".to_owned();
    let mut save: Option<PathBuf> = None;
    let mut quick = false;
    let mut out: Option<PathBuf> = None;
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--quick" {
            quick = true;
        } else if arg == "--out" {
            let Some(path) = args.next() else {
                eprintln!("--out needs a file path");
                return ExitCode::FAILURE;
            };
            out = Some(PathBuf::from(path));
        } else if arg == "--save" {
            let Some(dir) = args.next() else {
                eprintln!("--save needs a directory");
                return ExitCode::FAILURE;
            };
            let dir = PathBuf::from(dir);
            if let Err(e) = std::fs::create_dir_all(&dir) {
                eprintln!("cannot create {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
            save = Some(dir);
        } else if arg == "--jobs" {
            let Some(n) = args.next().and_then(|s| s.parse::<usize>().ok()) else {
                eprintln!("--jobs needs a non-negative integer");
                return ExitCode::FAILURE;
            };
            exec::set_jobs(n);
        } else {
            experiment = arg;
        }
    }
    let telemetry_dir = telemetry_from_env();
    match experiment.as_str() {
        "table1" => run_table1(&save),
        "figure5" => {
            run_figure5(&save);
        }
        "table2" => {
            let rows = experiments::figure5();
            run_table2(&save, &rows);
        }
        "table3" => run_table3(&save),
        "birthday" => run_birthday(&save),
        "guessing" => run_guessing(&save),
        "gadget" => run_gadget(&save),
        "ablation" => run_ablation(&save),
        "games" => run_games(&save),
        "pac-width" => run_pac_width(&save),
        "confirm" => run_confirm(&save),
        "mix" => run_mix(&save),
        "reuse" => run_reuse(&save),
        "faults" => {
            if run_faults(&save).is_err() {
                return ExitCode::FAILURE;
            }
        }
        "perf" => {
            let out = out.unwrap_or_else(|| PathBuf::from("BENCH_pr4.json"));
            if let Err(e) = perf::run(quick, &out) {
                eprintln!("perf harness failed: {e}");
                return ExitCode::FAILURE;
            }
        }
        "trace" => {
            let out = out.unwrap_or_else(|| PathBuf::from("results/trace"));
            if let Err(e) = tracecmd::run(quick, &out) {
                eprintln!("trace capture failed: {e}");
                return ExitCode::FAILURE;
            }
        }
        "all" => {
            run_table1(&save);
            let rows = run_figure5(&save);
            run_table2(&save, &rows);
            run_table3(&save);
            run_birthday(&save);
            run_guessing(&save);
            run_gadget(&save);
            run_ablation(&save);
            run_games(&save);
            run_pac_width(&save);
            run_confirm(&save);
            run_mix(&save);
            run_reuse(&save);
            if run_faults(&save).is_err() {
                return ExitCode::FAILURE;
            }
        }
        other => {
            eprintln!("unknown experiment {other:?}; see the module docs");
            return ExitCode::FAILURE;
        }
    }
    if let Some(dir) = &telemetry_dir {
        export_env_telemetry(dir);
    }
    // Throughput/occupancy of every engine invocation — stderr only, so
    // stdout (and --save artifacts) stay byte-identical across job counts.
    exec::stats::report_to_stderr();
    ExitCode::SUCCESS
}
