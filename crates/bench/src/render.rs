//! Plain-text rendering of experiment results, in the layout of the
//! paper's tables.

use crate::experiments::{
    AblationRow, AttackMatrixRow, BirthdayRow, ConfirmRow, FaultsReport, Figure5Row, GameRow,
    GuessingRow, MixRow, PacWidthRow, ReuseRow, Table1Cell, Table2Row, Table3Row,
};
use pacstack_acs::Masking;
use pacstack_chaos::FaultClass;
use pacstack_workloads::spec::Suite;

/// Renders Table 1.
pub fn table1(cells: &[Table1Cell], b: u32) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Table 1 — max success probability of call-stack integrity violations (b = {b})\n"
    ));
    out.push_str(&format!(
        "{:<32} {:>12} {:>10} {:>21} {:>10} {:>8}\n",
        "violation type", "variant", "measured", "95% CI", "analytic", "trials"
    ));
    for cell in cells {
        let variant = match cell.masking {
            Masking::Masked => "masking",
            Masking::Unmasked => "no masking",
        };
        out.push_str(&format!(
            "{:<32} {:>12} {:>10.6} [{:>8.6}, {:>8.6}] {:>10.6} {:>8}\n",
            cell.kind.to_string(),
            variant,
            cell.measured,
            cell.interval.0,
            cell.interval.1,
            cell.analytic,
            cell.trials
        ));
    }
    out
}

/// Renders Figure 5 as a horizontal bar chart per suite.
pub fn figure5(rows: &[Figure5Row]) -> String {
    let mut out = String::new();
    out.push_str("Figure 5 — mean run-time overhead per SPEC CPU 2017 C benchmark (%)\n");
    for suite in [Suite::Rate, Suite::Speed] {
        out.push_str(&format!("\n  {suite}\n"));
        out.push_str(&format!(
            "  {:<12} {:>9} {:>9} {:>9} {:>9} {:>9}\n",
            "benchmark", "PACStack", "nomask", "SCS", "pac-ret", "canary"
        ));
        for row in rows.iter().filter(|r| r.suite == suite) {
            out.push_str(&format!("  {:<12}", row.name));
            for (_, overhead) in &row.overheads {
                out.push_str(&format!(" {overhead:>9.2}"));
            }
            let full = row.overheads[0].1;
            let bar_len = (full * 8.0).round().max(0.0) as usize;
            out.push_str(&format!("   |{}\n", "█".repeat(bar_len.min(70))));
        }
    }
    out
}

/// Renders Table 2.
pub fn table2(rows: &[Table2Row], cpp: (f64, f64)) -> String {
    let mut out = String::new();
    out.push_str("Table 2 — geometric mean of measured overheads (%, perlbench excluded)\n");
    out.push_str(&format!(
        "{:<28} {:>10} {:>10}\n",
        "", "SPECrate", "SPECspeed"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:<28} {:>10.2} {:>10.2}\n",
            row.scheme.to_string(),
            row.rate,
            row.speed
        ));
    }
    out.push_str(&format!(
        "C++ benchmarks: PACStack {:.1}%, PACStack-nomask {:.1}% (paper: 2.0%, 0.9%)\n",
        cpp.0, cpp.1
    ));
    out
}

/// Renders Table 3.
pub fn table3(rows: &[Table3Row]) -> String {
    let mut out = String::new();
    out.push_str("Table 3 — NGINX SSL transactions per second\n");
    out.push_str(&format!(
        "{:>8} {:>14} {:>8} {:>14} {:>8} {:>8} {:>14} {:>8} {:>8}\n",
        "workers", "baseline", "σ", "nomask", "σ", "loss%", "PACStack", "σ", "loss%"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:>8} {:>14.0} {:>8.0} {:>14.0} {:>8.0} {:>8.1} {:>14.0} {:>8.0} {:>8.1}\n",
            row.workers,
            row.baseline.mean_tps,
            row.baseline.sigma,
            row.nomask.mean_tps,
            row.nomask.sigma,
            row.nomask_loss(),
            row.pacstack.mean_tps,
            row.pacstack.sigma,
            row.pacstack_loss(),
        ));
    }
    out
}

/// Renders the birthday experiment.
pub fn birthday(rows: &[BirthdayRow]) -> String {
    let mut out = String::new();
    out.push_str("§6.2.1 — tokens harvested before the first collision (birthday bound)\n");
    out.push_str(&format!(
        "{:>4} {:>16} {:>20} {:>8}\n",
        "b", "measured mean", "sqrt(π·2^b/2)", "runs"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:>4} {:>16.1} {:>20.1} {:>8}\n",
            row.b, row.measured_mean, row.analytic, row.runs
        ));
    }
    out.push_str("(paper: 321 tokens at b = 16)\n");
    out
}

/// Renders the guessing experiment.
pub fn guessing(rows: &[GuessingRow]) -> String {
    let mut out = String::new();
    out.push_str("§4.3 — expected guesses against forked siblings\n");
    out.push_str(&format!(
        "{:>4} {:>18} {:>10} {:>18} {:>10}\n",
        "b", "shared-key mean", "2^b", "re-seeded mean", "2^(b+1)"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:>4} {:>18.0} {:>10.0} {:>18.0} {:>10.0}\n",
            row.b,
            row.shared_key_mean,
            row.shared_key_analytic,
            row.reseeded_mean,
            row.reseeded_analytic
        ));
    }
    out
}

/// Renders the qualitative attack matrix.
pub fn attack_matrix(rows: &[AttackMatrixRow]) -> String {
    let mut out = String::new();
    out.push_str("Qualitative attack matrix (§2, §6.1, §6.3.1)\n");
    for row in rows {
        out.push_str(&format!("\n  {}\n", row.attack));
        for (scheme, outcome) in &row.outcomes {
            out.push_str(&format!("    {:<26} {}\n", scheme.to_string(), outcome));
        }
    }
    out
}

/// Renders the ablation table.
pub fn ablations(rows: &[AblationRow]) -> String {
    let mut out = String::new();
    out.push_str("Ablations (DESIGN.md) — cycle cost of design choices on perlbench\n");
    out.push_str(&format!(
        "{:<42} {:>14} {:>14} {:>8}\n",
        "choice", "cycles (on)", "cycles (off)", "cost"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:<42} {:>14} {:>14} {:>7.2}%\n",
            row.label,
            row.cycles_on,
            row.cycles_off,
            row.delta_percent()
        ));
    }
    out
}

/// Renders the Appendix A collision-game results.
pub fn games(rows: &[GameRow]) -> String {
    let mut out = String::new();
    out.push_str("Appendix A — G-PAC-Collision: birthday adversary win rate\n");
    out.push_str(&format!(
        "{:>4} {:>16} {:>16} {:>12}\n",
        "b", "unmasked", "masked", "chance 2^-b"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:>4} {:>16.4} {:>16.4} {:>12.4}\n",
            row.b, row.unmasked_win_rate, row.masked_win_rate, row.chance
        ));
    }
    out.push_str("(Theorem 1: masking collapses the win rate to chance)\n");
    out
}

/// Renders the PAC-width sweep.
pub fn pac_width(rows: &[PacWidthRow]) -> String {
    let mut out = String::new();
    out.push_str("\u{a7}2.2 \u{2014} PAC width vs address-space configuration\n");
    out.push_str(&format!(
        "{:<38} {:>4} {:>12} {:>18} {:>16}\n",
        "layout", "b", "P[guess]", "collision tokens", "guesses to 50%"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:<38} {:>4} {:>12.2e} {:>18.0} {:>16.3e}\n",
            row.layout, row.b, row.guess_probability, row.collision_tokens, row.guesses_for_half
        ));
    }
    out
}

/// Renders the ConFIRM compatibility table.
pub fn confirm(rows: &[ConfirmRow]) -> String {
    let mut out = String::new();
    out.push_str("\u{a7}7.3 \u{2014} ConFIRM-style compatibility suite\n");
    out.push_str(&format!(
        "{:<20} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}\n",
        "case", "baseline", "canary", "pac-ret", "SCS", "nomask", "PACStack"
    ));
    for row in rows {
        out.push_str(&format!("{:<20}", row.name));
        for (_, passed) in &row.results {
            out.push_str(&format!(" {:>9}", if *passed { "pass" } else { "FAIL" }));
        }
        out.push('\n');
    }
    out
}

/// Renders the instruction-mix table.
pub fn instruction_mix(rows: &[MixRow]) -> String {
    let mut out = String::new();
    out.push_str("\u{a7}7.1 \u{2014} retired instructions by class (gcc profile)\n");
    out.push_str(&format!(
        "{:<28} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}\n",
        "scheme", "total", "PA", "memory", "branch", "other", "added"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:<28} {:>10} {:>10} {:>10} {:>10} {:>10} {:>+10}\n",
            row.scheme.to_string(),
            row.counters.total(),
            row.counters.pointer_auth,
            row.counters.memory,
            row.counters.branches,
            row.counters.other,
            row.added_vs_baseline
        ));
    }
    out
}

/// Renders the §6.1 reuse-opportunity analysis.
pub fn reuse(rows: &[ReuseRow]) -> String {
    let mut out = String::new();
    out.push_str("\u{a7}6.1 \u{2014} interchangeable signed return addresses (gcc profile)\n");
    out.push_str(&format!(
        "{:<24} {:>10} {:>12} {:>14} {:>16} {:>10}\n",
        "scheme", "spilled", "modifiers", "reuse groups", "interchangeable", "fraction"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:<24} {:>10} {:>12} {:>14} {:>16} {:>9.1}%\n",
            row.scheme.to_string(),
            row.spilled_signings,
            row.distinct_modifiers,
            row.reusable_modifier_groups,
            row.interchangeable_pointers,
            row.interchangeable_fraction() * 100.0
        ));
    }
    out.push_str(
        "(pac-ret spills SP-signed pointers that coincide; PACStack keeps the signed
 head in CR \u{2014} substituting stored links needs a MAC collision, Table 1)\n",
    );
    out
}

/// Renders the `repro faults` section: the detection-coverage matrix
/// (rows = fault classes, columns = targets, cells = detected / silent /
/// masked / hung tallies), the per-target return-address detection
/// summary, and the crash-restart supervisor economics table.
pub fn faults(report: &FaultsReport) -> String {
    let mut out = String::new();
    out.push_str(
        "\u{a7}3/\u{a7}6.2 \u{2014} fault-injection detection coverage (cells: detected/silent/masked/hung)\n",
    );
    out.push_str(&format!("{:<12}", "fault class"));
    for target in &report.coverage {
        out.push_str(&format!(" {:>16}", target.label));
    }
    out.push('\n');
    for class in FaultClass::ALL {
        out.push_str(&format!("{:<12}", class.label()));
        for target in &report.coverage {
            let c = target.cell(class);
            out.push_str(&format!(
                " {:>16}",
                format!("{}/{}/{}/{}", c.detected, c.silent, c.masked, c.hung)
            ));
        }
        out.push('\n');
    }
    out.push_str(
        "\nreturn-address detection rate (detected fraction of all cr-, lr- and stack-flips)\n",
    );
    for target in &report.coverage {
        out.push_str(&format!(
            "{:<18} {:>6.1}%   host panics: {}\n",
            target.label,
            target.return_address_detection_rate() * 100.0,
            target.host_panics
        ));
    }
    out.push_str(&format!(
        "\n\u{a7}4.3/\u{a7}6.2 \u{2014} crash-restart supervisor economics (b = {}, horizon = {} ticks)\n",
        report.b, report.horizon
    ));
    out.push_str(&format!(
        "{:<10} {:>8} {:>14} {:>12} {:>14} {:>10} {:>14}\n",
        "policy",
        "trials",
        "mean guesses",
        "compromised",
        "availability",
        "gave up",
        "analytic 2^b+1"
    ));
    for row in &report.economics {
        out.push_str(&format!(
            "{:<10} {:>8} {:>14.1} {:>11.1}% {:>13.1}% {:>9.1}% {:>14.0}\n",
            row.policy.label(),
            row.trials,
            row.mean_guesses,
            row.compromise_rate * 100.0,
            row.mean_availability * 100.0,
            row.gave_up_rate * 100.0,
            row.analytic_guesses_per_success
        ));
    }
    out.push_str(
        "(one guess per crash: a capped supervisor bounds the budget, backoff collapses
 the guess rate \u{2014} availability is what the defence spends)\n",
    );
    out
}
