//! Experiment implementations behind the `repro` binary.
//!
//! Each function regenerates one table or figure of the PACStack paper and
//! returns structured results, so integration tests can assert on the
//! *shape* of every reproduced experiment (who wins, by what factor) while
//! the binary formats them for reading.
//!
//! Run `cargo run --release -p pacstack-bench --bin repro -- all` to print
//! everything; see `EXPERIMENTS.md` at the workspace root for the recorded
//! paper-vs-measured comparison.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod perf;
pub mod render;
pub mod tracecmd;

pub use pacstack_exec as exec;
