//! The experiments, one function per table/figure.

use pacstack_acs::security::{self, ViolationKind};
use pacstack_acs::Masking;
use pacstack_attacks::{collision, gadget, guessing, offgraph, reuse, rop};
use pacstack_chaos::campaign::{chaos_module, coverage, TargetCoverage};
use pacstack_chaos::ChaosError;
use pacstack_compiler::Scheme;
use pacstack_exec as exec;
use pacstack_workloads::measure::{geometric_mean_percent, overhead_percent};
use pacstack_workloads::nginx::{ssl_tps, TpsResult};
use pacstack_workloads::spec::{Suite, CPP_BENCHMARKS, C_BENCHMARKS};
use pacstack_workloads::supervisor::{online_attack_economics, EconomicsRow};

/// Instruction budget for workload runs.
const BUDGET: u64 = 2_000_000_000;

/// The five instrumentations measured against the baseline, in the order
/// the paper's Figure 5 and Table 2 list them.
pub const MEASURED_SCHEMES: [Scheme; 5] = [
    Scheme::PacStack,
    Scheme::PacStackNomask,
    Scheme::ShadowCallStack,
    Scheme::PacRet,
    Scheme::StackProtector,
];

// ---------------------------------------------------------------------------
// Table 1 — attack success probabilities
// ---------------------------------------------------------------------------

/// One cell of Table 1: measured Monte Carlo rate vs the analytic bound.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table1Cell {
    /// Violation class.
    pub kind: ViolationKind,
    /// Masking variant.
    pub masking: Masking,
    /// Empirical success rate.
    pub measured: f64,
    /// 95% Wilson confidence interval around the measured rate.
    pub interval: (f64, f64),
    /// The paper's analytic maximum.
    pub analytic: f64,
    /// Trials behind the measurement.
    pub trials: u64,
}

/// Reproduces Table 1 at PAC width `b` with `trials` Monte Carlo attempts
/// per cell (arbitrary-address cells get `trials × 8` because their success
/// probability is 2⁻²ᵇ).
pub fn table1(b: u32, trials: u64, seed: u64) -> Vec<Table1Cell> {
    let mut cells = Vec::new();
    for masking in [Masking::Unmasked, Masking::Masked] {
        let on_graph = collision::on_graph_attack(b, masking, trials.min(2_000), seed);
        cells.push(Table1Cell {
            kind: ViolationKind::OnGraph,
            masking,
            measured: on_graph.rate(),
            interval: on_graph.wilson_interval(),
            analytic: security::max_success_probability(ViolationKind::OnGraph, masking, b),
            trials: on_graph.trials,
        });
        let call_site = offgraph::to_call_site(b, masking, trials, seed ^ 1);
        cells.push(Table1Cell {
            kind: ViolationKind::OffGraphToCallSite,
            masking,
            measured: call_site.rate(),
            interval: call_site.wilson_interval(),
            analytic: security::max_success_probability(
                ViolationKind::OffGraphToCallSite,
                masking,
                b,
            ),
            trials: call_site.trials,
        });
        let arbitrary = offgraph::to_arbitrary_address(b, masking, trials * 8, seed ^ 2);
        cells.push(Table1Cell {
            kind: ViolationKind::OffGraphToArbitrary,
            masking,
            measured: arbitrary.rate(),
            interval: arbitrary.wilson_interval(),
            analytic: security::max_success_probability(
                ViolationKind::OffGraphToArbitrary,
                masking,
                b,
            ),
            trials: arbitrary.trials,
        });
    }
    cells
}

// ---------------------------------------------------------------------------
// Figure 5 — per-benchmark overheads
// ---------------------------------------------------------------------------

/// One Figure 5 bar group: a benchmark's overhead under every scheme.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure5Row {
    /// Benchmark name.
    pub name: String,
    /// Suite flavour.
    pub suite: Suite,
    /// `(scheme, overhead %)` in [`MEASURED_SCHEMES`] order.
    pub overheads: Vec<(Scheme, f64)>,
}

/// Reproduces Figure 5: per-benchmark overhead of all five instrumentations
/// for the C benchmarks, in both suite flavours. Benchmark runs fan out
/// across the [`pacstack_exec`] worker pool; each (suite, benchmark) item
/// is deterministic, so row order and values are thread-count independent.
pub fn figure5() -> Vec<Figure5Row> {
    let mut items = Vec::new();
    for suite in [Suite::Rate, Suite::Speed] {
        for profile in &C_BENCHMARKS {
            items.push((suite, profile));
        }
    }
    let run = exec::parallel_map(&items, |_, &(suite, profile)| {
        let module = profile.module(suite);
        let overheads = MEASURED_SCHEMES
            .iter()
            .map(|&scheme| (scheme, overhead_percent(&module, scheme, BUDGET)))
            .collect();
        Figure5Row {
            name: profile.name.to_owned(),
            suite,
            overheads,
        }
    });
    exec::stats::record("figure5 SPEC sweep", run.stats);
    run.results
}

// ---------------------------------------------------------------------------
// Table 2 — geometric means
// ---------------------------------------------------------------------------

/// One Table 2 row: a scheme's geomean overhead per suite.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table2Row {
    /// The scheme.
    pub scheme: Scheme,
    /// Geomean over SPECrate C benchmarks (perlbench excluded, as in the
    /// paper's ShadowCallStack comparison).
    pub rate: f64,
    /// Geomean over SPECspeed C benchmarks (perlbench excluded).
    pub speed: f64,
}

/// Reproduces Table 2 from the Figure 5 data.
pub fn table2(figure5_rows: &[Figure5Row]) -> Vec<Table2Row> {
    MEASURED_SCHEMES
        .iter()
        .map(|&scheme| {
            let mean_for = |suite: Suite| {
                let overheads: Vec<f64> = figure5_rows
                    .iter()
                    .filter(|r| r.suite == suite && r.name != "perlbench")
                    .map(|r| {
                        r.overheads
                            .iter()
                            .find(|(s, _)| *s == scheme)
                            .expect("scheme measured")
                            .1
                    })
                    .collect();
                geometric_mean_percent(&overheads)
            };
            Table2Row {
                scheme,
                rate: mean_for(Suite::Rate),
                speed: mean_for(Suite::Speed),
            }
        })
        .collect()
}

/// The paper's aggregate for the C++ benchmarks: (PACStack %, nomask %).
pub fn cpp_aggregate() -> (f64, f64) {
    let run = exec::parallel_map(&CPP_BENCHMARKS, |_, p| {
        let module = p.module(Suite::Rate);
        (
            overhead_percent(&module, Scheme::PacStack, BUDGET),
            overhead_percent(&module, Scheme::PacStackNomask, BUDGET),
        )
    });
    exec::stats::record("figure5 C++ aggregate", run.stats);
    let (full, nomask): (Vec<f64>, Vec<f64>) = run.results.into_iter().unzip();
    (
        geometric_mean_percent(&full),
        geometric_mean_percent(&nomask),
    )
}

// ---------------------------------------------------------------------------
// Table 3 — NGINX SSL TPS
// ---------------------------------------------------------------------------

/// One Table 3 row: TPS per configuration at a worker count.
#[derive(Debug, Clone, PartialEq)]
pub struct Table3Row {
    /// NGINX worker processes.
    pub workers: u32,
    /// Uninstrumented server.
    pub baseline: TpsResult,
    /// PACStack-nomask server.
    pub nomask: TpsResult,
    /// Full PACStack server.
    pub pacstack: TpsResult,
}

impl Table3Row {
    /// Percent TPS loss of the nomask configuration.
    pub fn nomask_loss(&self) -> f64 {
        (1.0 - self.nomask.mean_tps / self.baseline.mean_tps) * 100.0
    }

    /// Percent TPS loss of the full configuration.
    pub fn pacstack_loss(&self) -> f64 {
        (1.0 - self.pacstack.mean_tps / self.baseline.mean_tps) * 100.0
    }
}

/// Reproduces Table 3 with `runs` measurement sessions per cell.
pub fn table3(runs: usize, seed: u64) -> Vec<Table3Row> {
    [4u32, 8]
        .iter()
        .map(|&workers| Table3Row {
            workers,
            baseline: ssl_tps(Scheme::Baseline, workers, runs, seed),
            nomask: ssl_tps(Scheme::PacStackNomask, workers, runs, seed),
            pacstack: ssl_tps(Scheme::PacStack, workers, runs, seed),
        })
        .collect()
}

// ---------------------------------------------------------------------------
// §6.2.1 — birthday-bound collision harvesting
// ---------------------------------------------------------------------------

/// Result of the birthday experiment at one PAC width.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BirthdayRow {
    /// PAC width.
    pub b: u32,
    /// Mean harvested tokens before the first collision.
    pub measured_mean: f64,
    /// The paper's `sqrt(π·2^b/2)` expectation.
    pub analytic: f64,
    /// Number of harvest campaigns averaged.
    pub runs: u64,
}

/// Reproduces the §6.2.1 claim (321 tokens at b = 16) at measurable widths.
/// Harvest campaigns fan out across the [`pacstack_exec`] worker pool; each
/// campaign's seed is a pure function of its index, so the means are
/// thread-count independent.
pub fn birthday(widths: &[u32], runs: u64, seed: u64) -> Vec<BirthdayRow> {
    widths
        .iter()
        .map(|&b| {
            let budget = 64 * (1u64 << (b / 2 + 2));
            let campaigns = exec::run_trials(seed ^ u64::from(b), runs, |i, _rng| {
                collision::harvest_until_collision(b, Masking::Unmasked, seed + i, budget)
                    .expect("collision within budget")
                    .tokens
            });
            exec::stats::record(format!("birthday b={b}"), campaigns.stats);
            let total: u64 = campaigns.results.iter().sum();
            BirthdayRow {
                b,
                measured_mean: total as f64 / runs as f64,
                analytic: security::expected_tokens_until_collision(b),
                runs,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// §4.3 — guessing costs
// ---------------------------------------------------------------------------

/// Result of the guessing experiment at one PAC width.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GuessingRow {
    /// PAC width.
    pub b: u32,
    /// Mean guesses for the shared-key divide-and-conquer strategy.
    pub shared_key_mean: f64,
    /// Analytic expectation 2ᵇ.
    pub shared_key_analytic: f64,
    /// Mean guesses once chains are re-seeded.
    pub reseeded_mean: f64,
    /// Analytic expectation 2ᵇ⁺¹.
    pub reseeded_analytic: f64,
}

/// Reproduces the §4.3 divide-and-conquer vs re-seeding comparison.
pub fn guessing_costs(widths: &[u32], runs: u64) -> Vec<GuessingRow> {
    widths
        .iter()
        .map(|&b| GuessingRow {
            b,
            shared_key_mean: guessing::mean_cost(runs, |s| {
                guessing::divide_and_conquer(b, s).total()
            }),
            shared_key_analytic: security::expected_guesses_shared_key(b),
            reseeded_mean: guessing::mean_cost(runs, |s| guessing::reseeded(b, s).total()),
            reseeded_analytic: security::expected_guesses_reseeded(b),
        })
        .collect()
}

// ---------------------------------------------------------------------------
// §6.3.1 / §2.2.1 — qualitative attack matrix
// ---------------------------------------------------------------------------

/// One row of the qualitative attack matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttackMatrixRow {
    /// Human-readable attack name.
    pub attack: &'static str,
    /// `(scheme, outcome)` pairs.
    pub outcomes: Vec<(Scheme, rop::AttackOutcome)>,
}

/// Runs the qualitative attacks (ROP, reuse, signing gadget) against every
/// scheme — the reproduction of §2, §6.1 and §6.3.1.
pub fn attack_matrix() -> Vec<AttackMatrixRow> {
    let lr_overwrite = exec::parallel_map(&Scheme::ALL, |_, &s| {
        (s, rop::run_attack(s, rop::WriteTarget::SavedReturnAddress))
    });
    let linear = exec::parallel_map(&Scheme::ALL, |_, &s| {
        (s, rop::run_attack(s, rop::WriteTarget::LinearOverflow))
    });
    let reuse_same =
        exec::parallel_map(&Scheme::ALL, |_, &s| (s, reuse::run_reuse(s, true).outcome));
    let tail_gadget = exec::parallel_map(&[Scheme::PacStackNomask, Scheme::PacStack], |_, &s| {
        (s, gadget::tail_call_gadget_attack(s))
    });
    exec::stats::record("attack matrix", lr_overwrite.stats);
    let (lr_overwrite, linear) = (lr_overwrite.results, linear.results);
    let (reuse_same, tail_gadget) = (reuse_same.results, tail_gadget.results);
    vec![
        AttackMatrixRow {
            attack: "return-address overwrite",
            outcomes: lr_overwrite,
        },
        AttackMatrixRow {
            attack: "linear stack overflow",
            outcomes: linear,
        },
        AttackMatrixRow {
            attack: "signed-pointer reuse (same SP)",
            outcomes: reuse_same,
        },
        AttackMatrixRow {
            attack: "tail-call signing gadget",
            outcomes: tail_gadget,
        },
    ]
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md) and Appendix A games
// ---------------------------------------------------------------------------

/// Ablation rows: cycle cost of a design choice toggled on/off.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationRow {
    /// What was toggled.
    pub label: String,
    /// Cycles with the design choice as shipped.
    pub cycles_on: u64,
    /// Cycles with the choice disabled.
    pub cycles_off: u64,
}

impl AblationRow {
    /// Percent cost of the shipped choice relative to the disabled variant.
    pub fn delta_percent(&self) -> f64 {
        (self.cycles_on as f64 - self.cycles_off as f64) / self.cycles_off as f64 * 100.0
    }
}

/// Ablation 1: masking on/off, and ablation 4: the leaf heuristic, both
/// measured on the call-heavy `perlbench` profile.
pub fn ablations() -> Vec<AblationRow> {
    use pacstack_compiler::{lower_with_options, LowerOptions};
    use pacstack_workloads::measure::run_module;
    use pacstack_workloads::spec::c_benchmark;

    let module = c_benchmark("perlbench")
        .expect("profile exists")
        .module(Suite::Rate);
    let cycles = |scheme: Scheme, leaves: bool| {
        let program = lower_with_options(
            &module,
            scheme,
            LowerOptions {
                instrument_leaves: leaves,
            },
        );
        let mut cpu = pacstack_aarch64::Cpu::with_seed(program, 1);
        loop {
            match cpu.run(BUDGET).expect("clean run").status {
                pacstack_aarch64::RunStatus::Exited(_) => break cpu.cycles(),
                _ => continue,
            }
        }
    };
    let _ = run_module(&module, Scheme::Baseline, BUDGET); // warm sanity check
    let configs = [
        (Scheme::PacStack, false),
        (Scheme::PacStackNomask, false),
        (Scheme::PacStack, true),
    ];
    let swept = exec::parallel_map(&configs, |_, &(scheme, leaves)| cycles(scheme, leaves));
    exec::stats::record("ablations", swept.stats);
    let [shipped, nomask, leaves_on]: [u64; 3] =
        swept.results.try_into().expect("three ablation configs");
    vec![
        AblationRow {
            label: "PAC masking (PACStack vs nomask)".to_owned(),
            cycles_on: shipped,
            cycles_off: nomask,
        },
        AblationRow {
            label: "leaf heuristic off (instrument leaves)".to_owned(),
            cycles_on: leaves_on,
            cycles_off: shipped,
        },
    ]
}

/// One row of the Appendix A collision-game experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GameRow {
    /// PAC width.
    pub b: u32,
    /// Birthday adversary win rate against unmasked tokens.
    pub unmasked_win_rate: f64,
    /// Birthday adversary win rate against masked tokens.
    pub masked_win_rate: f64,
    /// The chance baseline 2⁻ᵇ.
    pub chance: f64,
}

/// Runs the Appendix A `G-PAC-Collision` game at several widths: Theorem 1
/// predicts the masked win rate collapses to chance.
pub fn collision_games(widths: &[u32], trials: u64, seed: u64) -> Vec<GameRow> {
    use pacstack_acs::games::{collision_game_advantage, Oracle};
    let run = exec::parallel_map(widths, |_, &b| GameRow {
        b,
        unmasked_win_rate: collision_game_advantage(b, Oracle::Unmasked, trials, seed),
        masked_win_rate: collision_game_advantage(b, Oracle::Masked, trials, seed ^ 1),
        chance: 2f64.powi(-(b as i32)),
    });
    exec::stats::record("collision games", run.stats);
    run.results
}

// ---------------------------------------------------------------------------
// §2.2 — PAC width as a function of the address-space configuration
// ---------------------------------------------------------------------------

/// One row of the PAC-width sweep: how the security parameters scale with
/// the pointer layout.
#[derive(Debug, Clone, PartialEq)]
pub struct PacWidthRow {
    /// Human-readable layout description.
    pub layout: String,
    /// PAC width in bits.
    pub b: u32,
    /// Single-guess forgery probability 2⁻ᵇ.
    pub guess_probability: f64,
    /// Expected harvested tokens before a collision (unmasked).
    pub collision_tokens: f64,
    /// Guesses for a 50% forgery chance with per-crash re-keying.
    pub guesses_for_half: f64,
}

/// Sweeps the address-space configurations of paper §2.2: the PAC shrinks
/// as the virtual address space grows, trading address bits for security
/// bits.
pub fn pac_width_sweep() -> Vec<PacWidthRow> {
    use pacstack_pauth::VaLayout;
    [
        (
            "VA_SIZE=39, tagged (Linux default)",
            VaLayout::new(39, true),
        ),
        ("VA_SIZE=39, untagged", VaLayout::new(39, false)),
        ("VA_SIZE=48, tagged", VaLayout::new(48, true)),
        ("VA_SIZE=48, untagged", VaLayout::new(48, false)),
        ("VA_SIZE=52, untagged (LVA)", VaLayout::new(52, false)),
    ]
    .into_iter()
    .map(|(name, layout)| {
        let b = layout.pac_bits();
        PacWidthRow {
            layout: name.to_owned(),
            b,
            guess_probability: 2f64.powi(-(b as i32)),
            collision_tokens: security::expected_tokens_until_collision(b),
            guesses_for_half: security::guesses_for_success_probability(0.5, b),
        }
    })
    .collect()
}

// ---------------------------------------------------------------------------
// §7.3 — ConFIRM compatibility table, and the instruction-mix accounting
// ---------------------------------------------------------------------------

/// One ConFIRM table row: case name and per-scheme pass/fail.
#[derive(Debug, Clone)]
pub struct ConfirmRow {
    /// Test case name.
    pub name: &'static str,
    /// `(scheme, passed)` for all six schemes.
    pub results: Vec<(Scheme, bool)>,
}

/// Runs the §7.3 compatibility suite under every scheme.
pub fn confirm_table() -> Vec<ConfirmRow> {
    let cases = pacstack_workloads::confirm::suite();
    let run = exec::parallel_map(&cases, |_, case| ConfirmRow {
        name: case.name,
        results: pacstack_workloads::confirm::run_case(case)
            .into_iter()
            .map(|r| (r.scheme, r.passed))
            .collect(),
    });
    exec::stats::record("ConFIRM suite", run.stats);
    run.results
}

/// Instruction-mix row: what each scheme adds, by instruction class.
#[derive(Debug, Clone, Copy)]
pub struct MixRow {
    /// The scheme.
    pub scheme: Scheme,
    /// Retired-instruction counters.
    pub counters: pacstack_aarch64::InsnCounters,
    /// Instructions added relative to the baseline (can be large for the
    /// masked variant: 2 extra PACs + 4 moves + 2 eors per activation).
    pub added_vs_baseline: i64,
}

/// Counts retired instructions by class for the `gcc` profile under every
/// scheme — the "in terms of added instructions" comparison of §7.1.
pub fn instruction_mix() -> Vec<MixRow> {
    use pacstack_workloads::spec::c_benchmark;
    let module = c_benchmark("gcc")
        .expect("profile exists")
        .module(Suite::Rate);
    let run = |scheme: Scheme| {
        let program = pacstack_compiler::lower(&module, scheme);
        let mut cpu = pacstack_aarch64::Cpu::with_seed(program, 1);
        loop {
            match cpu.run(BUDGET).expect("clean run").status {
                pacstack_aarch64::RunStatus::Exited(_) => break cpu.counters(),
                _ => continue,
            }
        }
    };
    let baseline = run(Scheme::Baseline);
    let swept = exec::parallel_map(&Scheme::ALL, |_, &scheme| {
        let counters = run(scheme);
        MixRow {
            scheme,
            counters,
            added_vs_baseline: counters.total() as i64 - baseline.total() as i64,
        }
    });
    exec::stats::record("instruction mix", swept.stats);
    swept.results
}

// ---------------------------------------------------------------------------
// §6.1 — is PAC reuse a realistic concern?
// ---------------------------------------------------------------------------

/// Reuse-opportunity statistics for one scheme on one workload execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReuseRow {
    /// The scheme whose modifiers were logged.
    pub scheme: Scheme,
    /// Return-address signing events whose result is *spilled to memory*
    /// (the attacker-replaceable surface; for the PACStack variants the
    /// signed value lives in CR and never reaches memory — 0 by design).
    pub spilled_signings: u64,
    /// Distinct modifier values among them.
    pub distinct_modifiers: u64,
    /// Modifiers that signed ≥ 2 different return addresses — each such
    /// group's pointers are interchangeable (§2.2.1, Listing 6).
    pub reusable_modifier_groups: u64,
    /// Spilled signed pointers belonging to some interchangeable group.
    pub interchangeable_pointers: u64,
}

impl ReuseRow {
    /// Fraction of spilled signed pointers that are interchangeable.
    pub fn interchangeable_fraction(&self) -> f64 {
        if self.spilled_signings == 0 {
            0.0
        } else {
            self.interchangeable_pointers as f64 / self.spilled_signings as f64
        }
    }
}

/// A realistic module shape for the §6.1 question: callers invoking several
/// distinct (instrumented) callees from the same frame — Listing 6's
/// pattern, which real programs exhibit pervasively.
fn reuse_module() -> pacstack_compiler::Module {
    use pacstack_compiler::{FuncDef, Module, Stmt};
    let mut m = Module::new();
    m.push(FuncDef::new(
        "main",
        vec![
            Stmt::Loop(
                6,
                vec![
                    Stmt::Call("parse".into()),
                    Stmt::Call("eval".into()),
                    Stmt::Call("emit_code".into()),
                ],
            ),
            Stmt::Return,
        ],
    ));
    for name in ["parse", "eval", "emit_code"] {
        m.push(FuncDef::new(
            name,
            vec![
                Stmt::Compute(8),
                Stmt::Call("helper_a".into()),
                Stmt::Call("helper_b".into()),
                Stmt::Return,
            ],
        ));
    }
    m.push(FuncDef::new(
        "helper_a",
        vec![Stmt::Compute(4), Stmt::Call("leafish".into()), Stmt::Return],
    ));
    m.push(FuncDef::new(
        "helper_b",
        vec![
            Stmt::MemAccess(2),
            Stmt::Call("leafish".into()),
            Stmt::Return,
        ],
    ));
    m.push(FuncDef::new(
        "leafish",
        vec![Stmt::Compute(2), Stmt::Return],
    ));
    m
}

/// Reproduces §6.1 quantitatively. Under pac-ret every signed return
/// address is spilled and verified against an SP modifier; sibling calls
/// at equal depths make large interchangeable groups. Under PACStack the
/// signed head never reaches memory, so the spilled-signing reuse surface
/// is empty — substituting *stored* chain links requires a MAC collision
/// (Table 1 / the birthday experiment).
pub fn reuse_opportunities() -> Vec<ReuseRow> {
    use std::collections::HashMap;

    let module = reuse_module();
    let swept = exec::parallel_map(
        &[Scheme::PacRet, Scheme::PacStackNomask, Scheme::PacStack],
        |_, &scheme| {
            let program = pacstack_compiler::lower(&module, scheme);
            let mut cpu = pacstack_aarch64::Cpu::with_seed(program, 1);
            cpu.enable_pac_log();
            loop {
                match cpu.run(BUDGET).expect("clean run").status {
                    pacstack_aarch64::RunStatus::Exited(_) => break,
                    _ => continue,
                }
            }
            // Only pac-ret spills its signed LR; the PACStack variants keep
            // it in CR (the attack surface the metric is about).
            let spilled: Vec<(u64, u64)> = if scheme == Scheme::PacRet {
                cpu.pac_log().expect("logging enabled").to_vec()
            } else {
                Vec::new()
            };
            let mut groups: HashMap<u64, std::collections::BTreeSet<u64>> = HashMap::new();
            for &(modifier, pointer) in &spilled {
                groups.entry(modifier).or_default().insert(pointer);
            }
            let reusable = groups.values().filter(|p| p.len() >= 2).count() as u64;
            let interchangeable = spilled
                .iter()
                .filter(|(m, _)| groups.get(m).is_some_and(|p| p.len() >= 2))
                .count() as u64;
            ReuseRow {
                scheme,
                spilled_signings: spilled.len() as u64,
                distinct_modifiers: groups.len() as u64,
                reusable_modifier_groups: reusable,
                interchangeable_pointers: interchangeable,
            }
        },
    );
    exec::stats::record("reuse opportunities", swept.stats);
    swept.results
}

// ---------------------------------------------------------------------------
// repro faults — fault-injection coverage + supervisor economics
// ---------------------------------------------------------------------------

/// PAC width for the supervisor economics table (Linux-default-ish 8 bits
/// keeps compromises observable within a Monte Carlo horizon).
const FAULTS_PAC_BITS: u32 = 8;
/// Ticks of useful service per process lifetime in the supervisor model.
const FAULTS_UPTIME_PER_LIFE: u64 = 50;
/// Horizon (in ticks) of sustained injection per supervisor trajectory.
const FAULTS_HORIZON: u64 = 100_000;
/// Supervisor trajectories per restart policy.
const FAULTS_SUPERVISOR_TRIALS: u64 = 96;

/// The `repro faults` results: the fault-injection detection-coverage
/// matrix over every target scheme, plus the crash-restart supervisor
/// economics replaying the one-guess-per-crash argument (§4.3, §6.2).
#[derive(Debug, Clone)]
pub struct FaultsReport {
    /// Per-target outcome tallies for each fault class.
    pub coverage: Vec<TargetCoverage>,
    /// One row per restart policy in `supervisor::POLICIES`.
    pub economics: Vec<EconomicsRow>,
    /// The PAC width behind the economics rows.
    pub b: u32,
    /// The injection horizon behind the economics rows.
    pub horizon: u64,
}

/// Runs the deterministic fault-injection campaign (`trials_per_class`
/// trials of each fault class against every target scheme) and the
/// supervised online-attack sweep, both fanned out over the engine pool
/// and byte-identical at any `--jobs` count.
///
/// # Errors
///
/// Propagates [`ChaosError`] if a target fails to prepare — a link error
/// in the chaos module, or a reference run that faults uninjected.
pub fn faults(trials_per_class: u64, seed: u64) -> Result<FaultsReport, ChaosError> {
    let coverage = coverage(&chaos_module(), trials_per_class, seed)?;
    let economics = online_attack_economics(
        FAULTS_PAC_BITS,
        FAULTS_UPTIME_PER_LIFE,
        FAULTS_HORIZON,
        FAULTS_SUPERVISOR_TRIALS,
        seed ^ 0x50FE,
    );
    Ok(FaultsReport {
        coverage,
        economics,
        b: FAULTS_PAC_BITS,
        horizon: FAULTS_HORIZON,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_orders_schemes_as_the_paper_does() {
        let rows = figure5();
        let t2 = table2(&rows);
        let get = |s: Scheme| t2.iter().find(|r| r.scheme == s).unwrap();
        let full = get(Scheme::PacStack);
        let nomask = get(Scheme::PacStackNomask);
        let scs = get(Scheme::ShadowCallStack);
        let pacret = get(Scheme::PacRet);
        let canary = get(Scheme::StackProtector);
        // Paper Table 2 (rate): 2.75, 0.86, 0.85, 0.43, 0.43.
        assert!(full.rate > nomask.rate);
        assert!(nomask.rate > pacret.rate);
        assert!(scs.rate > pacret.rate * 0.9);
        assert!(canary.rate <= pacret.rate + 0.05);
        // Magnitude: full PACStack ≈ 3% (the headline claim).
        assert!(
            full.rate > 1.8 && full.rate < 4.5,
            "full PACStack rate geomean {} out of band",
            full.rate
        );
        // Speed exceeds rate for the PACStack variants (3.28 vs 2.75).
        assert!(full.speed > full.rate);
        assert!(nomask.speed > nomask.rate);
    }

    #[test]
    fn table3_losses_match_paper_band() {
        let rows = table3(3, 5);
        for row in &rows {
            // Paper: nomask 4–7%, full 6–13%.
            let nomask = row.nomask_loss();
            let full = row.pacstack_loss();
            assert!(nomask > 2.0 && nomask < 9.0, "nomask loss {nomask}%");
            assert!(full > 5.0 && full < 15.0, "full loss {full}%");
            assert!(full > nomask);
        }
    }

    #[test]
    fn table1_measured_tracks_analytic() {
        let cells = table1(4, 3_000, 11);
        for cell in &cells {
            if cell.analytic == 1.0 {
                assert!(cell.measured > 0.9, "{:?}", cell);
            } else {
                // Within 3x of the analytic bound (Monte Carlo noise), and
                // never wildly above it.
                assert!(
                    cell.measured <= cell.analytic * 3.0 + 0.002,
                    "{:?} exceeds analytic bound",
                    cell
                );
            }
        }
    }

    #[test]
    fn reuse_is_realistic_under_pac_ret_and_structural_under_pacstack() {
        let rows = reuse_opportunities();
        let get = |s: Scheme| rows.iter().find(|r| r.scheme == s).copied().unwrap();
        let pacret = get(Scheme::PacRet);
        let pacstack = get(Scheme::PacStack);
        // §6.1's answer: yes, realistic — a large share of pac-ret's spilled
        // signed pointers coincide on SP and are interchangeable...
        assert!(
            pacret.interchangeable_fraction() > 0.3,
            "pac-ret interchangeable fraction only {}",
            pacret.interchangeable_fraction()
        );
        assert!(pacret.reusable_modifier_groups >= 1);
        // ...while PACStack's signed head never reaches memory at all.
        assert_eq!(pacstack.spilled_signings, 0);
    }

    #[test]
    fn confirm_table_all_pass() {
        for row in confirm_table() {
            for (scheme, passed) in &row.results {
                assert!(passed, "{} failed under {scheme}", row.name);
            }
        }
    }

    #[test]
    fn instruction_mix_shows_pa_instructions_only_for_pa_schemes() {
        for row in instruction_mix() {
            if row.scheme.uses_pointer_auth() {
                assert!(row.counters.pointer_auth > 0, "{}", row.scheme);
            } else {
                assert_eq!(row.counters.pointer_auth, 0, "{}", row.scheme);
            }
            if row.scheme != Scheme::Baseline {
                assert!(row.added_vs_baseline > 0, "{}", row.scheme);
            }
        }
    }

    #[test]
    fn pac_width_sweep_covers_linux_default() {
        let rows = pac_width_sweep();
        let linux = rows.iter().find(|r| r.layout.contains("Linux")).unwrap();
        assert_eq!(linux.b, 16);
        assert!((linux.collision_tokens - 321.0).abs() < 1.0);
    }

    #[test]
    fn ablations_report_positive_costs() {
        for row in ablations() {
            assert!(row.cycles_on > row.cycles_off, "{}", row.label);
            assert!(row.delta_percent() > 0.0);
        }
    }

    #[test]
    fn collision_games_separate_masked_from_unmasked() {
        let rows = collision_games(&[6], 25, 5);
        assert!(rows[0].unmasked_win_rate > 0.8);
        assert!(rows[0].masked_win_rate < 0.3);
    }

    #[test]
    fn birthday_tracks_sqrt_bound() {
        for row in birthday(&[8], 30, 3) {
            assert!(
                row.measured_mean > row.analytic * 0.6 && row.measured_mean < row.analytic * 1.6,
                "{row:?}"
            );
        }
    }

    #[test]
    fn faults_matrix_meets_the_acceptance_gate() {
        // The PR's acceptance property: every PACStack-family scheme
        // detects return-address bit flips at least as often as the
        // unprotected build, with zero host-process panics anywhere.
        let report = faults(6, 0xFA17).unwrap();
        let unprotected = report
            .coverage
            .iter()
            .find(|t| t.label == "unprotected")
            .unwrap()
            .return_address_detection_rate();
        for target in &report.coverage {
            assert_eq!(target.host_panics, 0, "{} panicked", target.label);
            if target.label != "unprotected" {
                assert!(
                    target.return_address_detection_rate() >= unprotected,
                    "{} detects {:.3} < unprotected {:.3}",
                    target.label,
                    target.return_address_detection_rate(),
                    unprotected
                );
            }
        }
        // Three supervisor policies, each with the §4.3 analytic column.
        assert_eq!(report.economics.len(), 3);
        for row in &report.economics {
            assert_eq!(row.b, FAULTS_PAC_BITS);
            assert!(row.analytic_guesses_per_success > 0.0);
        }
    }
}
