//! Rendering smoke tests: every table renderer produces the headers and
//! rows the paper's layout calls for.

use pacstack_acs::security::ViolationKind;
use pacstack_acs::Masking;
use pacstack_bench::{experiments, render};
use pacstack_compiler::Scheme;
use pacstack_workloads::nginx::TpsResult;
use pacstack_workloads::spec::Suite;

#[test]
fn table1_render_includes_ci_and_analytic() {
    let cells = vec![experiments::Table1Cell {
        kind: ViolationKind::OnGraph,
        masking: Masking::Masked,
        measured: 0.0625,
        interval: (0.055, 0.07),
        analytic: 0.0625,
        trials: 1000,
    }];
    let text = render::table1(&cells, 4);
    assert!(text.contains("b = 4"));
    assert!(text.contains("on-graph"));
    assert!(text.contains("95% CI"));
    assert!(text.contains("0.0625"));
}

#[test]
fn figure5_render_draws_bars_per_suite() {
    let rows = vec![
        experiments::Figure5Row {
            name: "gcc".into(),
            suite: Suite::Rate,
            overheads: experiments::MEASURED_SCHEMES
                .iter()
                .map(|&s| (s, 2.0))
                .collect(),
        },
        experiments::Figure5Row {
            name: "gcc".into(),
            suite: Suite::Speed,
            overheads: experiments::MEASURED_SCHEMES
                .iter()
                .map(|&s| (s, 3.0))
                .collect(),
        },
    ];
    let text = render::figure5(&rows);
    assert!(text.contains("SPECrate"));
    assert!(text.contains("SPECspeed"));
    assert!(text.contains('█'));
}

#[test]
fn table3_render_reports_losses() {
    let tps = |mean: f64| TpsResult {
        mean_tps: mean,
        sigma: mean / 100.0,
        runs: 3,
    };
    let rows = vec![experiments::Table3Row {
        workers: 4,
        baseline: tps(10_000.0),
        nomask: tps(9_500.0),
        pacstack: tps(9_000.0),
    }];
    let text = render::table3(&rows);
    assert!(text.contains("workers"));
    assert!(text.contains("5.0")); // nomask loss %
    assert!(text.contains("10.0")); // pacstack loss %
}

#[test]
fn table2_orders_rows_by_measured_schemes() {
    let rows: Vec<_> = experiments::MEASURED_SCHEMES
        .iter()
        .map(|&scheme| experiments::Table2Row {
            scheme,
            rate: 1.0,
            speed: 1.5,
        })
        .collect();
    let text = render::table2(&rows, (2.0, 1.0));
    let pacstack_pos = text.find("PACStack").unwrap();
    let canary_pos = text.find("-mstack-protector-strong").unwrap();
    assert!(pacstack_pos < canary_pos, "paper lists PACStack first");
    assert!(text.contains("C++ benchmarks"));
}

#[test]
fn attack_matrix_render_lists_every_scheme_row() {
    let rows = vec![experiments::AttackMatrixRow {
        attack: "test attack",
        outcomes: Scheme::ALL
            .iter()
            .map(|&s| (s, pacstack_attacks::rop::AttackOutcome::Crashed))
            .collect(),
    }];
    let text = render::attack_matrix(&rows);
    assert!(text.contains("test attack"));
    for scheme in Scheme::ALL {
        assert!(text.contains(&scheme.to_string()), "{scheme} missing");
    }
}

#[test]
fn monte_carlo_confidence_intervals_bracket_the_analytic_values() {
    // The Wilson interval machinery: at b = 4 with enough trials, the
    // measured off-graph rate's CI must contain 2^-4.
    use pacstack_attacks::offgraph;
    let result = offgraph::to_call_site(4, Masking::Masked, 20_000, 3);
    assert!(
        result.consistent_with(0.0625),
        "rate {} CI {:?} excludes the analytic 1/16",
        result.rate(),
        result.wilson_interval()
    );
}

#[test]
fn pac_values_are_roughly_uniform() {
    // Crypto sanity: PAC tokens over sequential addresses fill the b-bit
    // space without gross bias (a loose chi-square-style bound).
    use pacstack_pauth::{PaKey, PaKeys, PointerAuth, VaLayout};
    let layout = VaLayout::new(47, true); // b = 8
    let pa = PointerAuth::new(layout);
    let keys = PaKeys::from_seed(17);
    let mut histogram = [0u32; 256];
    let samples = 64 * 256;
    for i in 0..samples {
        let pac = pa.compute_pac(&keys, PaKey::Ia, 0x40_0000 + i * 4, 7);
        histogram[pac as usize] += 1;
    }
    let expected = samples as f64 / 256.0; // 64 per bucket
    let chi2: f64 = histogram
        .iter()
        .map(|&o| {
            let d = f64::from(o) - expected;
            d * d / expected
        })
        .sum();
    // 255 degrees of freedom: mean 255, σ ≈ 22.6; allow ±6σ.
    assert!(
        (120.0..400.0).contains(&chi2),
        "chi-square {chi2} suggests biased PACs"
    );
}
