//! Ablation: the leaf-function heuristic (DESIGN.md ablation #4) —
//! instrumenting leaves too costs cycles for no added return-address
//! protection (leaves never spill LR).

use criterion::{criterion_group, criterion_main, Criterion};
use pacstack_aarch64::Cpu;
use pacstack_compiler::{lower_with_options, LowerOptions, Scheme};
use pacstack_workloads::spec::{c_benchmark, Suite};

fn bench_leaf(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_leaf");
    group.sample_size(10);
    let module = c_benchmark("perlbench").unwrap().module(Suite::Rate);
    for (name, instrument_leaves) in [("heuristic", false), ("instrument_leaves", true)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let program = lower_with_options(
                    &module,
                    Scheme::PacStack,
                    LowerOptions { instrument_leaves },
                );
                let mut cpu = Cpu::with_seed(program, 1);
                loop {
                    match cpu.run(2_000_000_000).expect("clean run").status {
                        pacstack_aarch64::RunStatus::Exited(_) => break,
                        _ => continue,
                    }
                }
                cpu.cycles()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_leaf);
criterion_main!(benches);
