//! Table 3: the NGINX SSL-TPS server model under each configuration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pacstack_compiler::Scheme;
use pacstack_workloads::measure::run_module;
use pacstack_workloads::nginx::server_module;

fn bench_nginx(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3");
    group.sample_size(10);
    let module = server_module(40);
    for scheme in [Scheme::Baseline, Scheme::PacStackNomask, Scheme::PacStack] {
        group.bench_with_input(BenchmarkId::new("ssl_tps", scheme), &module, |b, m| {
            b.iter(|| run_module(m, scheme, 2_000_000_000))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_nginx);
criterion_main!(benches);
