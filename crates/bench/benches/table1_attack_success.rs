//! Table 1: Monte Carlo attack-success measurement as a benchmark target —
//! tracks the cost of the security experiments themselves.

use criterion::{criterion_group, criterion_main, Criterion};
use pacstack_acs::Masking;
use pacstack_attacks::{collision, offgraph};
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    group.bench_function("on_graph_masked_b4", |b| {
        b.iter(|| collision::on_graph_attack(4, Masking::Masked, black_box(100), 7))
    });
    group.bench_function("off_graph_call_site_b4", |b| {
        b.iter(|| offgraph::to_call_site(4, Masking::Masked, black_box(100), 7))
    });
    group.bench_function("off_graph_arbitrary_b4", |b| {
        b.iter(|| offgraph::to_arbitrary_address(4, Masking::Masked, black_box(100), 7))
    });
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
