//! Micro-benchmarks of the cryptographic substrate: QARMA-64 encryption and
//! the PAC sign/verify operations every instrumented call performs.

use criterion::{criterion_group, criterion_main, Criterion};
use pacstack_pauth::{PaKey, PaKeys, PointerAuth, VaLayout};
use pacstack_qarma::{Key128, Qarma64};
use std::hint::black_box;

fn bench_qarma(c: &mut Criterion) {
    let cipher = Qarma64::recommended(Key128::new(0x84be85ce9804e94b, 0xec2802d4e0a488e9));
    c.bench_function("qarma64_encrypt", |b| {
        b.iter(|| cipher.encrypt(black_box(0xfb623599da6e8127), black_box(0x477d469dec0b8762)))
    });
    c.bench_function("qarma64_decrypt", |b| {
        b.iter(|| cipher.decrypt(black_box(0x3ee99a6c82af0c38), black_box(0x477d469dec0b8762)))
    });
}

fn bench_pac(c: &mut Criterion) {
    let pa = PointerAuth::new(VaLayout::default());
    let keys = PaKeys::from_seed(1);
    let signed = pa.pac(&keys, PaKey::Ia, 0x40_1000, 77);
    c.bench_function("pac_sign", |b| {
        b.iter(|| pa.pac(&keys, PaKey::Ia, black_box(0x40_1000), black_box(77)))
    });
    c.bench_function("pac_verify", |b| {
        b.iter(|| pa.aut(&keys, PaKey::Ia, black_box(signed), black_box(77)))
    });
}

criterion_group!(benches, bench_qarma, bench_pac);
criterion_main!(benches);
