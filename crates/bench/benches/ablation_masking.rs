//! Ablation: what PAC masking costs (DESIGN.md ablation #1) — the pure ACS
//! state-machine operations with and without masking.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pacstack_acs::{AcsConfig, AuthenticatedCallStack, Masking};
use pacstack_pauth::{PaKeys, PointerAuth, VaLayout};

fn bench_masking(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_masking");
    for masking in [Masking::Masked, Masking::Unmasked] {
        group.bench_with_input(
            BenchmarkId::new("call_ret_x64", masking),
            &masking,
            |b, &masking| {
                let pa = PointerAuth::new(VaLayout::default());
                let keys = PaKeys::from_seed(1);
                b.iter(|| {
                    let mut acs = AuthenticatedCallStack::new(
                        pa,
                        keys.clone(),
                        AcsConfig::default().masking(masking),
                    );
                    for i in 0..64u64 {
                        acs.call(0x40_0000 + i * 4);
                    }
                    for _ in 0..64 {
                        acs.ret().expect("clean chain");
                    }
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_masking);
criterion_main!(benches);
