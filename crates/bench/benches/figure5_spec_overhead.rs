//! Figure 5 / Table 2: simulator runs of the SPEC-profile workloads under
//! each scheme. The interesting output is the cycle ratio printed by
//! `repro figure5`; this bench tracks simulator throughput per scheme.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pacstack_compiler::Scheme;
use pacstack_workloads::measure::run_module;
use pacstack_workloads::spec::{c_benchmark, Suite};

fn bench_spec(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure5");
    group.sample_size(10);
    for scheme in [Scheme::Baseline, Scheme::PacStack, Scheme::PacStackNomask] {
        let module = c_benchmark("xz").unwrap().module(Suite::Rate);
        group.bench_with_input(BenchmarkId::new("xz", scheme), &module, |b, m| {
            b.iter(|| run_module(m, scheme, 2_000_000_000))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_spec);
criterion_main!(benches);
