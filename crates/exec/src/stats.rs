//! Process-wide registry of engine invocations, so drivers can report
//! per-experiment throughput/occupancy after the tables are printed.
//!
//! Statistics vary run to run (they measure time), so they must never be
//! mixed into experiment output: drivers render them to **stderr**, keeping
//! stdout byte-identical across thread counts.

use crate::ExecStats;
use std::sync::Mutex;
use std::time::Duration;

static REGISTRY: Mutex<Vec<(String, ExecStats)>> = Mutex::new(Vec::new());

/// Records one engine invocation under a human-readable label
/// (e.g. `"table1 pac=16b h=0.1"`).
pub fn record(label: impl Into<String>, stats: ExecStats) {
    REGISTRY
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push((label.into(), stats));
}

/// Takes all recorded entries, leaving the registry empty.
pub fn drain() -> Vec<(String, ExecStats)> {
    std::mem::take(&mut REGISTRY.lock().unwrap_or_else(|e| e.into_inner()))
}

/// Renders entries as a fixed-width table with a totals row, suitable for
/// printing to stderr.
pub fn render(entries: &[(String, ExecStats)]) -> String {
    let mut out = String::new();
    if entries.is_empty() {
        return out;
    }
    let width = entries
        .iter()
        .map(|(label, _)| label.len())
        .max()
        .unwrap_or(0)
        .max("experiment".len());
    out.push_str(&format!(
        "{:width$}  {:>10}  {:>4}  {:>12}  {:>10}  {:>10}  {:>5}\n",
        "experiment", "trials", "jobs", "trials/s", "wall", "cpu", "occ",
    ));
    let mut total_trials = 0u64;
    let mut total_wall = Duration::ZERO;
    let mut total_busy = Duration::ZERO;
    for (label, stats) in entries {
        total_trials += stats.trials;
        total_wall += stats.wall;
        total_busy += stats.busy;
        out.push_str(&format!(
            "{label:width$}  {:>10}  {:>4}  {:>12.0}  {:>10.2?}  {:>10.2?}  {:>4.0}%\n",
            stats.trials,
            stats.jobs,
            stats.trials_per_sec(),
            stats.wall,
            stats.busy,
            stats.utilization() * 100.0,
        ));
    }
    let wall_secs = total_wall.as_secs_f64();
    let rate = if wall_secs == 0.0 {
        0.0
    } else {
        total_trials as f64 / wall_secs
    };
    out.push_str(&format!(
        "{:width$}  {:>10}  {:>4}  {:>12.0}  {:>10.2?}  {:>10.2?}  {:>4}\n",
        "total", total_trials, "", rate, total_wall, total_busy, "",
    ));
    out
}

/// Drains the registry and writes the rendered table to stderr
/// (no-op when nothing was recorded).
pub fn report_to_stderr() {
    let entries = drain();
    if entries.is_empty() {
        return;
    }
    eprintln!("\nengine throughput (stderr only; never part of experiment output):");
    eprint!("{}", render(&entries));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(trials: u64) -> ExecStats {
        ExecStats {
            trials,
            jobs: 2,
            chunks: 4,
            wall: Duration::from_millis(100),
            busy: Duration::from_millis(150),
        }
    }

    #[test]
    fn record_and_drain_round_trip() {
        drain();
        record("a", sample(10));
        record("b", sample(20));
        let entries = drain();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].0, "a");
        assert_eq!(entries[1].1.trials, 20);
        assert!(drain().is_empty());
    }

    #[test]
    fn render_includes_labels_and_totals() {
        let entries = vec![("exp-one".to_string(), sample(1000))];
        let table = render(&entries);
        assert!(table.contains("exp-one"));
        assert!(table.contains("total"));
        assert!(table.contains("1000"));
        assert!(render(&[]).is_empty());
    }
}
