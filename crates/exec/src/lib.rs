//! Deterministic parallel experiment engine.
//!
//! The PACStack evaluation is built out of two shapes of work:
//!
//! * **Monte Carlo trials** — thousands of independent attack attempts per
//!   Table 1 cell, birthday harvests, guessing campaigns;
//! * **workload sweeps** — one simulator run per (benchmark, scheme) pair
//!   for Figure 5 / Tables 2–3.
//!
//! Both are embarrassingly parallel, but the statistical claims only hold
//! if results stay reproducible. This engine therefore guarantees a strong
//! determinism property: **the merged result is byte-identical to the
//! sequential run at any thread count.** It achieves this by deriving every
//! trial's randomness purely from `(experiment-id, trial-index)` — no
//! shared RNG stream, no scheduling-order dependence — and by merging
//! per-chunk results back in index order.
//!
//! ```
//! use pacstack_exec as exec;
//! use rand::Rng;
//!
//! let a = exec::run_trials(0xE0, 1_000, |_i, rng| rng.gen::<u64>() & 0xF);
//! exec::set_jobs(4);
//! let b = exec::run_trials(0xE0, 1_000, |_i, rng| rng.gen::<u64>() & 0xF);
//! exec::set_jobs(1);
//! assert_eq!(a.results, b.results); // identical at any thread count
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// The engine hosts every experiment in the workspace; a panic here kills
// whole campaigns, so fallible paths must be structured. Tests opt back in.
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod stats;

use pacstack_telemetry as telemetry;
use rand::RngCore;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Per-trial RNG streams
// ---------------------------------------------------------------------------

const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(GOLDEN);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A counter-derived RNG stream: a pure function of
/// `(experiment-id, trial-index)`.
///
/// Every trial owns its own stream, so a trial's randomness does not depend
/// on which worker ran it or in what order — the foundation of the engine's
/// parallel-equals-sequential guarantee.
#[derive(Debug, Clone)]
pub struct TrialRng {
    s: [u64; 4],
}

impl TrialRng {
    /// The stream for trial `index` of the experiment identified by
    /// `stream` (an experiment id, typically `base_seed ^ EXPERIMENT_TAG`).
    pub fn new(stream: u64, index: u64) -> Self {
        // Two SplitMix64 avalanches separate the stream and index
        // contributions before state expansion.
        let mut h = stream;
        let a = splitmix(&mut h);
        let mut h2 = a ^ index.wrapping_mul(GOLDEN);
        let mut s = [0u64; 4];
        for word in &mut s {
            *word = splitmix(&mut h2);
        }
        if s == [0; 4] {
            s[0] = 1;
        }
        Self { s }
    }
}

impl RngCore for TrialRng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256**
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

// ---------------------------------------------------------------------------
// Worker-pool configuration
// ---------------------------------------------------------------------------

/// 0 means "auto": use [`std::thread::available_parallelism`].
static JOBS: AtomicUsize = AtomicUsize::new(0);

/// Sets the worker count for subsequent engine calls (the `--jobs` flag).
/// `0` restores the default of one worker per available core.
pub fn set_jobs(jobs: usize) {
    JOBS.store(jobs, Ordering::SeqCst);
}

/// The effective worker count engine calls will use.
pub fn jobs() -> usize {
    match JOBS.load(Ordering::SeqCst) {
        0 => thread::available_parallelism().map_or(1, usize::from),
        n => n,
    }
}

// ---------------------------------------------------------------------------
// Execution statistics
// ---------------------------------------------------------------------------

/// Throughput and occupancy of one engine invocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecStats {
    /// Trials (or sweep items) executed.
    pub trials: u64,
    /// Worker threads used.
    pub jobs: usize,
    /// Chunks the trial range was split into.
    pub chunks: u64,
    /// Wall-clock time of the whole invocation.
    pub wall: Duration,
    /// CPU time: summed busy time across all workers.
    pub busy: Duration,
}

impl ExecStats {
    /// Trials per wall-clock second.
    pub fn trials_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.trials as f64 / secs
        }
    }

    /// Fraction of the worker pool's wall-clock capacity spent busy,
    /// in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        let capacity = self.wall.as_secs_f64() * self.jobs as f64;
        if capacity == 0.0 {
            0.0
        } else {
            (self.busy.as_secs_f64() / capacity).min(1.0)
        }
    }

    /// Effective parallelism: CPU time over wall time (≈ jobs when the
    /// pool is saturated, 1.0 when sequential).
    pub fn effective_parallelism(&self) -> f64 {
        let wall = self.wall.as_secs_f64();
        if wall == 0.0 {
            1.0
        } else {
            self.busy.as_secs_f64() / wall
        }
    }
}

/// Results plus statistics from one engine invocation.
#[derive(Debug, Clone)]
pub struct Run<T> {
    /// Per-trial results in trial-index order — identical at any `jobs`.
    pub results: Vec<T>,
    /// Throughput/occupancy of this invocation (varies with `jobs` and
    /// load; never part of experiment output).
    pub stats: ExecStats,
}

// ---------------------------------------------------------------------------
// The engine
// ---------------------------------------------------------------------------

/// Chunk size aiming at ~8 chunks per worker, so dynamic scheduling can
/// balance uneven trial costs without contending on the queue.
fn chunk_size(trials: u64, jobs: usize) -> u64 {
    (trials / (jobs as u64 * 8)).clamp(1, 4096)
}

/// Runs one trial body, scoped to a telemetry task when telemetry is
/// recording. The `(invocation, trial-index)` key makes everything the
/// body records merge in trial order regardless of which worker ran it —
/// the telemetry side of the engine's parallel-equals-sequential claim.
fn scoped<T>(invocation: Option<u64>, index: u64, f: impl FnOnce() -> T) -> T {
    match invocation {
        Some(inv) => telemetry::in_task(inv, index, f),
        None => f(),
    }
}

/// Runs `trials` independent trials of the experiment identified by
/// `stream`, fanning them across the configured worker pool.
///
/// Each trial `i` receives its own [`TrialRng::new`]`(stream, i)`; `body`
/// must derive all its randomness from that stream (and its arguments) for
/// the determinism guarantee to hold. Results are returned in trial order.
pub fn run_trials<T, F>(stream: u64, trials: u64, body: F) -> Run<T>
where
    T: Send,
    F: Fn(u64, &mut TrialRng) -> T + Sync,
{
    let jobs = jobs().min(trials.max(1) as usize).max(1);
    let chunk = chunk_size(trials, jobs);
    let invocation = telemetry::begin_invocation();
    if invocation.is_some() {
        telemetry::counter("exec_invocations_total", 1);
        telemetry::counter("exec_trials_total", trials);
    }
    let start = Instant::now();

    if jobs == 1 {
        let mut results = Vec::with_capacity(trials as usize);
        for i in 0..trials {
            let mut rng = TrialRng::new(stream, i);
            results.push(scoped(invocation, i, || body(i, &mut rng)));
        }
        let wall = start.elapsed();
        return Run {
            results,
            stats: ExecStats {
                trials,
                jobs: 1,
                chunks: trials.div_ceil(chunk.max(1)),
                wall,
                busy: wall,
            },
        };
    }

    let next = AtomicU64::new(0);
    let busy_ns = AtomicU64::new(0);
    let collected: Mutex<Vec<(u64, Vec<T>)>> = Mutex::new(Vec::new());
    {
        let body = &body;
        let next = &next;
        let busy_ns = &busy_ns;
        let collected = &collected;
        thread::scope(|scope| {
            for _ in 0..jobs {
                scope.spawn(move || loop {
                    let lo = next.fetch_add(chunk, Ordering::Relaxed);
                    if lo >= trials {
                        break;
                    }
                    let hi = (lo + chunk).min(trials);
                    let t0 = Instant::now();
                    let mut out = Vec::with_capacity((hi - lo) as usize);
                    for i in lo..hi {
                        let mut rng = TrialRng::new(stream, i);
                        out.push(scoped(invocation, i, || body(i, &mut rng)));
                    }
                    busy_ns.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    collected
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .push((lo, out));
                });
            }
        });
    }

    let mut chunks = collected.into_inner().unwrap_or_else(|e| e.into_inner());
    chunks.sort_unstable_by_key(|&(lo, _)| lo);
    let chunk_count = chunks.len() as u64;
    let mut results = Vec::with_capacity(trials as usize);
    for (_, mut part) in chunks {
        results.append(&mut part);
    }

    Run {
        results,
        stats: ExecStats {
            trials,
            jobs,
            chunks: chunk_count,
            wall: start.elapsed(),
            busy: Duration::from_nanos(busy_ns.into_inner()),
        },
    }
}

/// Monte Carlo convenience: counts trials whose body reports success.
pub fn count_trials<F>(stream: u64, trials: u64, body: F) -> (u64, ExecStats)
where
    F: Fn(u64, &mut TrialRng) -> bool + Sync,
{
    let run = run_trials(stream, trials, body);
    let successes = run.results.iter().filter(|&&s| s).count() as u64;
    (successes, run.stats)
}

/// Sweep convenience: maps `body` over `items` in parallel, returning
/// results in item order. For deterministic per-item work (workload runs);
/// no RNG stream is provided.
pub fn parallel_map<I, T, F>(items: &[I], body: F) -> Run<T>
where
    I: Sync,
    T: Send,
    F: Fn(usize, &I) -> T + Sync,
{
    let run = run_trials(0, items.len() as u64, |i, _rng| {
        body(i as usize, &items[i as usize])
    });
    Run {
        results: run.results,
        stats: run.stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// Runs `f` under a fixed job count, restoring the previous setting.
    fn with_jobs<T>(jobs: usize, f: impl FnOnce() -> T) -> T {
        let prev = JOBS.swap(jobs, Ordering::SeqCst);
        let out = f();
        JOBS.store(prev, Ordering::SeqCst);
        out
    }

    #[test]
    fn trial_rng_is_a_pure_function_of_stream_and_index() {
        let mut a = TrialRng::new(7, 42);
        let mut b = TrialRng::new(7, 42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = TrialRng::new(7, 43);
        let mut d = TrialRng::new(8, 42);
        assert_ne!(TrialRng::new(7, 42).next_u64(), c.next_u64());
        assert_ne!(TrialRng::new(7, 42).next_u64(), d.next_u64());
    }

    #[test]
    fn adjacent_streams_are_statistically_independent() {
        // Crude independence check: XOR of neighbouring streams' first
        // outputs has ~32 bits set on average.
        let mut total = 0u32;
        let n = 1_000u64;
        for i in 0..n {
            let x = TrialRng::new(1, i).next_u64();
            let y = TrialRng::new(1, i + 1).next_u64();
            total += (x ^ y).count_ones();
        }
        let mean = f64::from(total) / n as f64;
        assert!((28.0..36.0).contains(&mean), "mean flipped bits {mean}");
    }

    #[test]
    fn parallel_results_equal_sequential_results() {
        let body = |i: u64, rng: &mut TrialRng| (i, rng.gen::<u64>());
        let seq = with_jobs(1, || run_trials(0xABCD, 10_000, body));
        for jobs in [2, 3, 4, 7] {
            let par = with_jobs(jobs, || run_trials(0xABCD, 10_000, body));
            assert_eq!(seq.results, par.results, "jobs = {jobs}");
        }
    }

    #[test]
    fn trial_count_edge_cases() {
        let empty = with_jobs(4, || run_trials(1, 0, |i, _| i));
        assert!(empty.results.is_empty());
        let one = with_jobs(4, || run_trials(1, 1, |i, _| i));
        assert_eq!(one.results, vec![0]);
        // More workers than trials.
        let few = with_jobs(8, || run_trials(1, 3, |i, _| i));
        assert_eq!(few.results, vec![0, 1, 2]);
    }

    #[test]
    fn count_trials_counts() {
        let (hits, stats) = with_jobs(4, || count_trials(5, 1_000, |i, _| i % 10 == 0));
        assert_eq!(hits, 100);
        assert_eq!(stats.trials, 1_000);
    }

    #[test]
    fn parallel_map_preserves_item_order() {
        let items: Vec<u64> = (0..500).collect();
        let run = with_jobs(4, || parallel_map(&items, |i, &item| item * 2 + i as u64));
        let expected: Vec<u64> = (0..500).map(|i| i * 3).collect();
        assert_eq!(run.results, expected);
    }

    #[test]
    fn stats_are_plausible() {
        let run = with_jobs(2, || {
            run_trials(9, 4_000, |i, rng| {
                // Enough work per trial for busy time to register.
                let mut acc = i;
                for _ in 0..100 {
                    acc = acc
                        .wrapping_mul(0x9E37_79B9)
                        .wrapping_add(rng.next_u64() & 1);
                }
                acc
            })
        });
        assert_eq!(run.stats.trials, 4_000);
        assert!(run.stats.jobs <= 2);
        assert!(run.stats.trials_per_sec() > 0.0);
        assert!(run.stats.utilization() <= 1.0);
        assert!(run.stats.effective_parallelism() > 0.0);
    }

    #[test]
    fn trial_rngs_feed_rand_consumers() {
        // TrialRng implements rand::RngCore, so gen/gen_range work.
        let mut rng = TrialRng::new(3, 3);
        let x: u64 = rng.gen();
        let _ = x;
        let y = rng.gen_range(0..10u32);
        assert!(y < 10);
    }
}
