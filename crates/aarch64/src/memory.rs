//! The process memory model: mapped segments with W⊕X permissions.

use crate::Fault;
use pacstack_pauth::VaLayout;
use std::fmt;

/// The fixed address-space layout every simulated process uses.
///
/// All regions sit inside the 39-bit virtual address space the paper's
/// Linux configuration provides.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Layout {
    /// Base of the code segment (read + execute).
    pub code_base: u64,
    /// Size of the code segment in bytes.
    pub code_size: u64,
    /// Base of the global data segment (read + write).
    pub data_base: u64,
    /// Size of the data segment in bytes.
    pub data_size: u64,
    /// *Top* of the main stack (grows down, read + write).
    pub stack_top: u64,
    /// Size of the stack in bytes.
    pub stack_size: u64,
    /// Base of the shadow-stack region (read + write; a real ShadowCallStack
    /// hides this address, which is exactly the weakness the paper notes).
    pub shadow_stack_base: u64,
    /// Size of the shadow-stack region.
    pub shadow_stack_size: u64,
}

/// The default layout.
pub const LAYOUT: Layout = Layout {
    code_base: 0x0040_0000,
    code_size: 0x0010_0000,
    data_base: 0x0060_0000,
    data_size: 0x0010_0000,
    stack_top: 0x7fff_0000,
    stack_size: 0x0010_0000,
    shadow_stack_base: 0x5000_0000,
    shadow_stack_size: 0x0004_0000,
};

/// Page permissions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Perms {
    /// Read + execute (code; not writable — W⊕X).
    ReadExecute,
    /// Read + write (data, stack).
    ReadWrite,
}

#[derive(Debug)]
struct Segment {
    base: u64,
    perms: Perms,
    bytes: Vec<u8>,
}

// Manual impl so `clone_from` copies into the existing byte buffer instead
// of remapping it: segments are megabytes each, and per-trial snapshot
// restores (fault injection) would otherwise spend their time in the
// allocator rather than in the simulation.
impl Clone for Segment {
    fn clone(&self) -> Self {
        Self {
            base: self.base,
            perms: self.perms,
            bytes: self.bytes.clone(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.base = source.base;
        self.perms = source.perms;
        self.bytes.clone_from(&source.bytes);
    }
}

impl Segment {
    fn contains(&self, addr: u64, len: u64) -> bool {
        addr >= self.base && addr.saturating_add(len) <= self.base + self.bytes.len() as u64
    }
}

/// Byte-addressable memory composed of mapped segments.
///
/// Reads and writes outside any segment fault; writes to `ReadExecute`
/// segments fault (W⊕X, paper assumption A1); accesses through pointers
/// with non-canonical high bits raise translation faults (the mechanism
/// that converts a failed `aut*` into a crash).
///
/// # Examples
///
/// ```
/// use pacstack_aarch64::{Memory, Perms, LAYOUT};
///
/// let mut mem = Memory::with_standard_layout();
/// mem.write_u64(LAYOUT.stack_top - 8, 0xdead_beef)?;
/// assert_eq!(mem.read_u64(LAYOUT.stack_top - 8)?, 0xdead_beef);
/// assert!(mem.write_u64(LAYOUT.code_base, 0).is_err()); // W^X
/// # Ok::<(), pacstack_aarch64::Fault>(())
/// ```
#[derive(Debug)]
pub struct Memory {
    layout: VaLayout,
    segments: Vec<Segment>,
}

// Manual impl for the same reason as [`Segment`]: `Vec::clone_from` clones
// element-wise, so restoring a snapshot into an existing `Memory` of the
// same shape reuses every segment allocation.
impl Clone for Memory {
    fn clone(&self) -> Self {
        Self {
            layout: self.layout,
            segments: self.segments.clone(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.layout = source.layout;
        self.segments.clone_from(&source.segments);
    }
}

impl Memory {
    /// Creates empty memory with the default VA layout and no mappings.
    pub fn new(layout: VaLayout) -> Self {
        Self {
            layout,
            segments: Vec::new(),
        }
    }

    /// Creates memory with the standard process layout mapped: code (RX),
    /// data, stack and shadow-stack regions (RW).
    pub fn with_standard_layout() -> Self {
        let mut mem = Self::new(VaLayout::default());
        mem.map(LAYOUT.code_base, LAYOUT.code_size, Perms::ReadExecute);
        mem.map(LAYOUT.data_base, LAYOUT.data_size, Perms::ReadWrite);
        mem.map(
            LAYOUT.stack_top - LAYOUT.stack_size,
            LAYOUT.stack_size,
            Perms::ReadWrite,
        );
        mem.map(
            LAYOUT.shadow_stack_base,
            LAYOUT.shadow_stack_size,
            Perms::ReadWrite,
        );
        mem
    }

    /// Maps a zero-filled segment.
    ///
    /// # Panics
    ///
    /// Panics if the segment would overlap an existing mapping.
    pub fn map(&mut self, base: u64, size: u64, perms: Perms) {
        for seg in &self.segments {
            let overlaps = base < seg.base + seg.bytes.len() as u64 && seg.base < base + size;
            assert!(
                !overlaps,
                "segment {base:#x}+{size:#x} overlaps existing mapping"
            );
        }
        self.segments.push(Segment {
            base,
            perms,
            bytes: vec![0; size as usize],
        });
    }

    /// The pointer layout used for canonicality checks.
    pub fn va_layout(&self) -> VaLayout {
        self.layout
    }

    fn check_canonical(&self, addr: u64) -> Result<(), Fault> {
        if self.layout.is_canonical(addr) {
            Ok(())
        } else {
            Err(Fault::TranslationFault { addr })
        }
    }

    fn segment(&self, addr: u64, len: u64) -> Result<&Segment, Fault> {
        self.segments
            .iter()
            .find(|s| s.contains(addr, len))
            .ok_or(Fault::AccessFault { addr })
    }

    fn segment_mut(&mut self, addr: u64, len: u64) -> Result<&mut Segment, Fault> {
        self.segments
            .iter_mut()
            .find(|s| s.contains(addr, len))
            .ok_or(Fault::AccessFault { addr })
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// Faults on non-canonical or unmapped addresses.
    pub fn read_u64(&self, addr: u64) -> Result<u64, Fault> {
        self.check_canonical(addr)?;
        let seg = self.segment(addr, 8)?;
        let off = (addr - seg.base) as usize;
        let mut buf = [0u8; 8];
        buf.copy_from_slice(&seg.bytes[off..off + 8]);
        Ok(u64::from_le_bytes(buf))
    }

    /// Writes a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// Faults on non-canonical, unmapped or non-writable addresses.
    pub fn write_u64(&mut self, addr: u64, value: u64) -> Result<(), Fault> {
        self.check_canonical(addr)?;
        let seg = self.segment_mut(addr, 8)?;
        if seg.perms != Perms::ReadWrite {
            return Err(Fault::PermissionFault { addr });
        }
        let off = (addr - seg.base) as usize;
        seg.bytes[off..off + 8].copy_from_slice(&value.to_le_bytes());
        Ok(())
    }

    /// Checks that an address may be fetched as an instruction.
    ///
    /// # Errors
    ///
    /// Translation fault for non-canonical PCs, fetch fault for canonical
    /// PCs outside an executable segment.
    pub fn check_execute(&self, pc: u64) -> Result<(), Fault> {
        if !self.layout.is_canonical(pc) {
            return Err(Fault::TranslationFault { addr: pc });
        }
        match self.segment(pc, 4) {
            Ok(seg) if seg.perms == Perms::ReadExecute => Ok(()),
            _ => Err(Fault::FetchFault { pc }),
        }
    }

    /// Whether an address falls in a writable mapping — the adversary's
    /// reachable surface.
    pub fn is_writable(&self, addr: u64) -> bool {
        self.segments
            .iter()
            .any(|s| s.contains(addr, 8) && s.perms == Perms::ReadWrite)
    }
}

impl fmt::Display for Memory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for seg in &self.segments {
            writeln!(
                f,
                "{:#010x}..{:#010x} {}",
                seg.base,
                seg.base + seg.bytes.len() as u64,
                match seg.perms {
                    Perms::ReadExecute => "r-x",
                    Perms::ReadWrite => "rw-",
                }
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    #[test]
    fn read_write_round_trip() {
        let mut mem = Memory::with_standard_layout();
        mem.write_u64(LAYOUT.data_base + 16, 0x0123_4567_89ab_cdef)
            .unwrap();
        assert_eq!(
            mem.read_u64(LAYOUT.data_base + 16).unwrap(),
            0x0123_4567_89ab_cdef
        );
    }

    #[test]
    fn wx_policy_blocks_code_writes() {
        let mut mem = Memory::with_standard_layout();
        assert_eq!(
            mem.write_u64(LAYOUT.code_base + 8, 1),
            Err(Fault::PermissionFault {
                addr: LAYOUT.code_base + 8
            })
        );
    }

    #[test]
    fn unmapped_access_faults() {
        let mem = Memory::with_standard_layout();
        assert_eq!(mem.read_u64(0x100), Err(Fault::AccessFault { addr: 0x100 }));
    }

    #[test]
    fn non_canonical_pointer_translation_faults() {
        let mem = Memory::with_standard_layout();
        // A pointer with a leftover PAC (or error bit) in its high bits.
        let bad = LAYOUT.data_base | (1u64 << 54);
        assert_eq!(
            mem.read_u64(bad),
            Err(Fault::TranslationFault { addr: bad })
        );
    }

    #[test]
    fn execute_checks_respect_segments() {
        let mem = Memory::with_standard_layout();
        assert!(mem.check_execute(LAYOUT.code_base).is_ok());
        assert_eq!(
            mem.check_execute(LAYOUT.data_base),
            Err(Fault::FetchFault {
                pc: LAYOUT.data_base
            })
        );
        let bad_pc = LAYOUT.code_base | (1u64 << 54);
        assert_eq!(
            mem.check_execute(bad_pc),
            Err(Fault::TranslationFault { addr: bad_pc })
        );
    }

    #[test]
    fn stack_region_is_writable_surface() {
        let mem = Memory::with_standard_layout();
        assert!(mem.is_writable(LAYOUT.stack_top - 64));
        assert!(!mem.is_writable(LAYOUT.code_base));
    }

    #[test]
    #[should_panic(expected = "overlaps")]
    fn overlapping_map_panics() {
        let mut mem = Memory::with_standard_layout();
        mem.map(LAYOUT.code_base + 0x1000, 0x1000, Perms::ReadWrite);
    }

    #[test]
    fn straddling_access_faults() {
        let mem = Memory::with_standard_layout();
        // 4 bytes before the end of the data segment: an 8-byte read crosses
        // the segment boundary.
        let addr = LAYOUT.data_base + LAYOUT.data_size - 4;
        assert!(mem.read_u64(addr).is_err());
    }
}
