//! Per-function cycle attribution.
//!
//! The profiler rides the retire loop: every retired instruction's cycle
//! cost is attributed to the function on top of a simulated call stack that
//! is pushed on `bl`/`blr` and popped on `ret`/`retaa`/`retab`. Because it
//! observes only architectural events in the simulated-cycle domain, its
//! output is deterministic — a function of the program and seed, never of
//! host scheduling — and feeds the telemetry exporters directly: collapsed
//! stacks become flamegraph lines, completed frames become Chrome trace
//! spans.

use std::collections::{BTreeMap, HashMap};

/// A completed function activation, in the simulated-cycle domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileSpan {
    /// Resolved function name (symbol, or `0x…` for unknown addresses).
    pub name: String,
    /// Cycle count when the function was entered.
    pub start: u64,
    /// Inclusive duration in cycles (callees included).
    pub dur: u64,
}

/// The result of a profiled run: collapsed self-time stacks plus completed
/// call spans, both with addresses resolved to symbol names.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FunctionProfile {
    /// Semicolon-collapsed call stacks (`main;f;g`) to *self* cycles —
    /// flamegraph input, exclusive of callees.
    pub stacks: Vec<(String, u64)>,
    /// Completed activations in completion order (innermost first for
    /// nested frames, matching how returns retire).
    pub spans: Vec<ProfileSpan>,
    /// Spans discarded once the configured cap was reached.
    pub dropped_spans: u64,
}

#[derive(Debug, Clone, Copy)]
struct Frame {
    addr: u64,
    entered_at: u64,
}

#[derive(Debug, Clone, Copy)]
struct RawSpan {
    addr: u64,
    start: u64,
    dur: u64,
}

/// Live profiler state carried by the CPU while profiling is enabled.
#[derive(Debug, Clone)]
pub(crate) struct Profiler {
    frames: Vec<Frame>,
    /// Call stack (as entry addresses, outermost first) → self cycles.
    stacks: BTreeMap<Vec<u64>, u64>,
    spans: Vec<RawSpan>,
    max_spans: usize,
    dropped: u64,
    /// Cycle watermark of the last attribution, so each retired
    /// instruction's cost is charged exactly once.
    last_cycles: u64,
    root: u64,
}

impl Profiler {
    /// Starts profiling at `root` (the current PC) with `now` cycles
    /// already on the clock.
    pub(crate) fn new(root: u64, now: u64, max_spans: usize) -> Self {
        Self {
            frames: vec![Frame {
                addr: root,
                entered_at: now,
            }],
            stacks: BTreeMap::new(),
            spans: Vec::new(),
            max_spans,
            dropped: 0,
            last_cycles: now,
            root,
        }
    }

    fn stack_key(&self) -> Vec<u64> {
        self.frames.iter().map(|f| f.addr).collect()
    }

    /// Charges all cycles since the last attribution to the current stack.
    pub(crate) fn attribute(&mut self, now: u64) {
        let delta = now.saturating_sub(self.last_cycles);
        if delta > 0 {
            *self.stacks.entry(self.stack_key()).or_insert(0) += delta;
            self.last_cycles = now;
        }
    }

    /// Records entry into the function at `addr`.
    pub(crate) fn enter(&mut self, addr: u64, now: u64) {
        self.frames.push(Frame {
            addr,
            entered_at: now,
        });
    }

    /// Records a return from the current function.
    pub(crate) fn exit(&mut self, now: u64) {
        // The root frame is never popped: a `ret` seen with only the root
        // on the stack belongs to a caller outside the profiled window.
        if self.frames.len() <= 1 {
            return;
        }
        if let Some(frame) = self.frames.pop() {
            self.record_span(frame, now);
        }
    }

    fn record_span(&mut self, frame: Frame, now: u64) {
        if self.spans.len() < self.max_spans {
            self.spans.push(RawSpan {
                addr: frame.addr,
                start: frame.entered_at,
                dur: now.saturating_sub(frame.entered_at),
            });
        } else {
            self.dropped += 1;
        }
    }

    /// Attributes the residual tail, closes every open frame, and resolves
    /// addresses to names via the program's symbol table.
    pub(crate) fn finish(mut self, now: u64, symbols: &HashMap<String, u64>) -> FunctionProfile {
        self.attribute(now);
        while let Some(frame) = self.frames.pop() {
            self.record_span(frame, now);
        }

        let mut names: HashMap<u64, &str> = HashMap::with_capacity(symbols.len());
        for (name, &addr) in symbols {
            // Two symbols on one address would make name resolution depend
            // on hash order; keep the lexicographically first.
            match names.get(&addr) {
                Some(existing) if *existing <= name.as_str() => {}
                _ => {
                    names.insert(addr, name.as_str());
                }
            }
        }
        let resolve = |addr: u64| -> String {
            if let Some(name) = names.get(&addr) {
                (*name).to_owned()
            } else if addr == self.root {
                "_start".to_owned()
            } else {
                format!("{addr:#x}")
            }
        };

        let stacks = self
            .stacks
            .iter()
            .map(|(key, &cycles)| {
                let joined = key
                    .iter()
                    .map(|&a| resolve(a))
                    .collect::<Vec<_>>()
                    .join(";");
                (joined, cycles)
            })
            .collect();
        let spans = self
            .spans
            .iter()
            .map(|s| ProfileSpan {
                name: resolve(s.addr),
                start: s.start,
                dur: s.dur,
            })
            .collect();
        FunctionProfile {
            stacks,
            spans,
            dropped_spans: self.dropped,
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use crate::program::Op;
    use crate::Instruction::*;
    use crate::{Cpu, Program, Reg};

    fn call_tree_program() -> Program {
        let mut p = Program::new();
        p.function_ops(
            "main",
            vec![
                Op::I(StrPre(Reg::X30, Reg::Sp, -16)),
                Op::I(MovImm(Reg::X0, 1)),
                Op::Call("leaf".into()),
                Op::Call("leaf".into()),
                Op::I(LdrPost(Reg::X30, Reg::Sp, 16)),
                Op::I(Ret),
            ],
        );
        p.function("leaf", vec![AddImm(Reg::X0, Reg::X0, 1), Ret]);
        p
    }

    #[test]
    fn self_cycles_partition_total_cycles() {
        let mut cpu = Cpu::with_seed(call_tree_program(), 7);
        cpu.enable_profile(64);
        let out = cpu.run(10_000).unwrap();
        let profile = cpu.take_profile().unwrap();
        let attributed: u64 = profile.stacks.iter().map(|(_, c)| c).sum();
        assert_eq!(attributed, out.cycles, "{profile:?}");
    }

    #[test]
    fn stacks_and_spans_name_the_call_tree() {
        let mut cpu = Cpu::with_seed(call_tree_program(), 7);
        cpu.enable_profile(64);
        cpu.run(10_000).unwrap();
        let profile = cpu.take_profile().unwrap();
        let stacks: Vec<&str> = profile.stacks.iter().map(|(s, _)| s.as_str()).collect();
        assert!(stacks.contains(&"_start;main;leaf"), "{stacks:?}");
        assert!(stacks.contains(&"_start;main"), "{stacks:?}");
        let leaves = profile.spans.iter().filter(|s| s.name == "leaf").count();
        assert_eq!(leaves, 2, "{:?}", profile.spans);
        assert_eq!(profile.dropped_spans, 0);
    }

    #[test]
    fn span_cap_counts_drops_deterministically() {
        let mut cpu = Cpu::with_seed(call_tree_program(), 7);
        cpu.enable_profile(1);
        cpu.run(10_000).unwrap();
        let profile = cpu.take_profile().unwrap();
        assert_eq!(profile.spans.len(), 1);
        // Two leaf returns, one main return, plus the root and main frames
        // closed by finish(): everything past the first span is dropped.
        assert!(profile.dropped_spans >= 2, "{profile:?}");
    }

    #[test]
    fn profiling_is_architecturally_invisible() {
        let mut plain = Cpu::with_seed(call_tree_program(), 7);
        let mut profiled = Cpu::with_seed(call_tree_program(), 7);
        profiled.enable_profile(64);
        let a = plain.run(10_000).unwrap();
        let b = profiled.run(10_000).unwrap();
        assert_eq!(a, b);
    }
}
