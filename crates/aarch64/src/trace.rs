//! Execution tracing and disassembly — the debugging surface a real
//! simulator ships with.
//!
//! The ring buffer itself now lives in `pacstack_telemetry` as the generic
//! [`Ring`]; this module keeps the CPU-specific entry type, the
//! disassembler, and a deprecated `Trace` alias for source compatibility.

use crate::{Cpu, Instruction};
use pacstack_telemetry::Ring;
use std::fmt;

/// One retired instruction in an execution trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// Program counter the instruction was fetched from.
    pub pc: u64,
    /// The instruction.
    pub insn: Instruction,
    /// Cumulative cycle count *after* this instruction retired — always
    /// equal to [`Cpu::cycles`](crate::Cpu::cycles) at the retire point,
    /// shadow-stack surcharge included, because the CPU charges the whole
    /// [`CostModel::cost`](crate::CostModel::cost) before recording.
    pub cycles: u64,
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:#010x}: {:<32} ; cycles={}",
            self.pc,
            self.insn.to_string(),
            self.cycles
        )
    }
}

/// A bounded execution trace: keeps the most recent entries.
///
/// # Examples
///
/// ```
/// # #![allow(deprecated)]
/// use pacstack_aarch64::trace::Trace;
///
/// let trace = Trace::new(128);
/// assert_eq!(trace.capacity(), 128);
/// assert!(trace.entries().is_empty());
/// ```
#[deprecated(
    since = "0.1.0",
    note = "the ring buffer moved to the telemetry subsystem; use `pacstack_telemetry::Ring<TraceEntry>`"
)]
pub type Trace = Ring<TraceEntry>;

/// Disassembles the loaded image around an address: `context` instructions
/// before and after, with a marker at `addr`.
pub fn disassemble_around(cpu: &Cpu, addr: u64, context: u64) -> String {
    let mut out = String::new();
    let start = addr.saturating_sub(context * 4);
    for i in 0..=(2 * context) {
        let pc = start + i * 4;
        match cpu.instruction_at(pc) {
            Some(insn) => {
                let marker = if pc == addr { "=>" } else { "  " };
                out.push_str(&format!("{marker} {pc:#010x}: {insn}\n"));
            }
            None => break,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use crate::Instruction::*;
    use crate::{Program, Reg};

    #[test]
    #[allow(deprecated)]
    fn deprecated_trace_alias_still_works() {
        // The pre-migration API: `Trace::new`, `record`, `entries`,
        // `dropped` — pinned so downstream users of the alias keep
        // compiling against the telemetry-backed ring.
        let mut trace = Trace::new(2);
        for i in 0..4u64 {
            trace.record(TraceEntry {
                pc: i * 4,
                insn: Nop,
                cycles: i,
            });
        }
        assert_eq!(trace.entries().len(), 2);
        assert_eq!(trace.dropped(), 2);
        assert_eq!(trace.entries()[0].pc, 8);
    }

    #[test]
    fn disassembly_marks_the_focus_instruction() {
        let mut p = Program::new();
        p.function(
            "main",
            vec![MovImm(Reg::X0, 1), AddImm(Reg::X0, Reg::X0, 2), Ret],
        );
        let cpu = Cpu::with_seed(p, 0);
        let main = cpu.symbol("main").unwrap();
        let text = disassemble_around(&cpu, main + 4, 1);
        assert!(text.contains("=>"), "{text}");
        assert!(text.contains("add x0, x0, #2"), "{text}");
    }

    #[test]
    fn trace_entry_displays_pc_and_insn() {
        let entry = TraceEntry {
            pc: 0x40_0000,
            insn: Retaa,
            cycles: 17,
        };
        let s = entry.to_string();
        assert!(s.contains("0x00400000"));
        assert!(s.contains("retaa"));
        assert!(s.contains("cycles=17"));
    }
}
