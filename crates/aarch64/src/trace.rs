//! Execution tracing and disassembly — the debugging surface a real
//! simulator ships with.

use crate::{Cpu, Instruction};
use std::fmt;

/// One retired instruction in an execution trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// Program counter the instruction was fetched from.
    pub pc: u64,
    /// The instruction.
    pub insn: Instruction,
    /// Cumulative cycle count *after* this instruction retired.
    pub cycles: u64,
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:#010x}: {:<32} ; cycles={}",
            self.pc,
            self.insn.to_string(),
            self.cycles
        )
    }
}

/// A bounded execution trace: keeps the most recent `capacity` entries.
///
/// # Examples
///
/// ```
/// use pacstack_aarch64::trace::Trace;
///
/// let trace = Trace::new(128);
/// assert_eq!(trace.capacity(), 128);
/// assert!(trace.entries().is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Trace {
    entries: Vec<TraceEntry>,
    capacity: usize,
    dropped: u64,
}

impl Trace {
    /// Creates a trace buffer holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        Self {
            entries: Vec::new(),
            capacity,
            dropped: 0,
        }
    }

    /// Records one entry, evicting the oldest if full.
    pub fn record(&mut self, entry: TraceEntry) {
        if self.entries.len() == self.capacity {
            self.entries.remove(0);
            self.dropped += 1;
        }
        self.entries.push(entry);
    }

    /// The retained entries, oldest first.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// How many entries were evicted.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.dropped > 0 {
            writeln!(f, "... {} earlier instructions elided ...", self.dropped)?;
        }
        for entry in &self.entries {
            writeln!(f, "{entry}")?;
        }
        Ok(())
    }
}

/// Disassembles the loaded image around an address: `context` instructions
/// before and after, with a marker at `addr`.
pub fn disassemble_around(cpu: &Cpu, addr: u64, context: u64) -> String {
    let mut out = String::new();
    let start = addr.saturating_sub(context * 4);
    for i in 0..=(2 * context) {
        let pc = start + i * 4;
        match cpu.instruction_at(pc) {
            Some(insn) => {
                let marker = if pc == addr { "=>" } else { "  " };
                out.push_str(&format!("{marker} {pc:#010x}: {insn}\n"));
            }
            None => break,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use crate::Instruction::*;
    use crate::{Program, Reg};

    #[test]
    fn trace_evicts_oldest() {
        let mut trace = Trace::new(2);
        for i in 0..4u64 {
            trace.record(TraceEntry {
                pc: i * 4,
                insn: Nop,
                cycles: i,
            });
        }
        assert_eq!(trace.entries().len(), 2);
        assert_eq!(trace.dropped(), 2);
        assert_eq!(trace.entries()[0].pc, 8);
    }

    #[test]
    fn disassembly_marks_the_focus_instruction() {
        let mut p = Program::new();
        p.function(
            "main",
            vec![MovImm(Reg::X0, 1), AddImm(Reg::X0, Reg::X0, 2), Ret],
        );
        let cpu = Cpu::with_seed(p, 0);
        let main = cpu.symbol("main").unwrap();
        let text = disassemble_around(&cpu, main + 4, 1);
        assert!(text.contains("=>"), "{text}");
        assert!(text.contains("add x0, x0, #2"), "{text}");
    }

    #[test]
    fn trace_entry_displays_pc_and_insn() {
        let entry = TraceEntry {
            pc: 0x40_0000,
            insn: Retaa,
            cycles: 17,
        };
        let s = entry.to_string();
        assert!(s.contains("0x00400000"));
        assert!(s.contains("retaa"));
        assert!(s.contains("cycles=17"));
    }
}
