//! Fault conditions the simulated CPU can raise.

use std::error::Error;
use std::fmt;

/// A synchronous fault that terminates the simulated process.
///
/// The paper's security argument rests on forged pointers *faulting*: a
/// failed `aut*` yields a non-canonical pointer, and using it (instruction
/// fetch or data access) raises a translation fault that kills the process,
/// costing the adversary their guess.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Fault {
    /// An access through a pointer whose high bits are not canonical —
    /// what a stripped-and-corrupted PA pointer produces.
    TranslationFault {
        /// The offending virtual address.
        addr: u64,
    },
    /// A data access to unmapped (but canonical) memory.
    AccessFault {
        /// The offending virtual address.
        addr: u64,
    },
    /// A write to a non-writable page — the W⊕X policy (assumption A1).
    PermissionFault {
        /// The offending virtual address.
        addr: u64,
    },
    /// Instruction fetch from a non-executable or unmapped address.
    FetchFault {
        /// The program-counter value that could not be fetched.
        pc: u64,
    },
    /// `aut*` failed in FPAC mode (ARMv8.6-A), which faults immediately.
    PacFault {
        /// The pointer that failed authentication.
        pointer: u64,
    },
    /// The program ran past its instruction budget (likely divergence).
    Timeout,
    /// `sigreturn` validation failed in the ACS-protected signal model
    /// (paper Appendix B): the kernel kills the process.
    SigreturnViolation,
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::TranslationFault { addr } => {
                write!(
                    f,
                    "translation fault at {addr:#018x} (non-canonical pointer)"
                )
            }
            Fault::AccessFault { addr } => write!(f, "access fault at {addr:#018x} (unmapped)"),
            Fault::PermissionFault { addr } => {
                write!(f, "permission fault at {addr:#018x} (W^X violation)")
            }
            Fault::FetchFault { pc } => write!(f, "instruction fetch fault at pc={pc:#018x}"),
            Fault::PacFault { pointer } => {
                write!(f, "pointer authentication fault on {pointer:#018x} (FPAC)")
            }
            Fault::Timeout => f.write_str("instruction budget exhausted"),
            Fault::SigreturnViolation => f.write_str("sigreturn validation failed"),
        }
    }
}

impl Error for Fault {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faults_display_their_addresses() {
        let s = Fault::TranslationFault {
            addr: 0x4000_0000_1234,
        }
        .to_string();
        assert!(s.contains("0x0000400000001234"));
        assert!(Fault::Timeout.to_string().contains("budget"));
    }
}
