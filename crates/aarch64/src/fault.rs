//! Fault conditions the simulated CPU can raise.

use std::error::Error;
use std::fmt;

/// A synchronous fault that terminates the simulated process.
///
/// The paper's security argument rests on forged pointers *faulting*: a
/// failed `aut*` yields a non-canonical pointer, and using it (instruction
/// fetch or data access) raises a translation fault that kills the process,
/// costing the adversary their guess.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Fault {
    /// An access through a pointer whose high bits are not canonical —
    /// what a stripped-and-corrupted PA pointer produces.
    TranslationFault {
        /// The offending virtual address.
        addr: u64,
    },
    /// A data access to unmapped (but canonical) memory.
    AccessFault {
        /// The offending virtual address.
        addr: u64,
    },
    /// A write to a non-writable page — the W⊕X policy (assumption A1).
    PermissionFault {
        /// The offending virtual address.
        addr: u64,
    },
    /// Instruction fetch from a non-executable or unmapped address.
    FetchFault {
        /// The program-counter value that could not be fetched.
        pc: u64,
    },
    /// `aut*` failed in FPAC mode (ARMv8.6-A), which faults immediately.
    PacFault {
        /// The pointer that failed authentication.
        pointer: u64,
    },
    /// The program ran past its instruction budget (likely divergence).
    Timeout,
    /// `sigreturn` validation failed in the ACS-protected signal model
    /// (paper Appendix B): the kernel kills the process.
    SigreturnViolation,
    /// Authentication failed while the PA key registers were known to be
    /// corrupted (chaos injection): the mismatch is attributable to the key
    /// material itself, not to a forged pointer.
    KeyFault {
        /// The pointer whose authentication failed under corrupted keys.
        pointer: u64,
    },
    /// A task was spawned at (or a call targeted) a symbol the program does
    /// not define — a structured replacement for the kernel's old
    /// `no function` host panic.
    NoSuchSymbol,
}

impl Fault {
    /// A short, stable identifier for the fault kind — the label value
    /// telemetry uses in `cpu_faults_total{kind="..."}` and chaos-campaign
    /// classification keys on. Address payloads are deliberately excluded
    /// so counters aggregate across trials.
    pub fn label(&self) -> &'static str {
        match self {
            Fault::TranslationFault { .. } => "translation",
            Fault::AccessFault { .. } => "access",
            Fault::PermissionFault { .. } => "permission",
            Fault::FetchFault { .. } => "fetch",
            Fault::PacFault { .. } => "pac",
            Fault::Timeout => "timeout",
            Fault::SigreturnViolation => "sigreturn",
            Fault::KeyFault { .. } => "key",
            Fault::NoSuchSymbol => "no-symbol",
        }
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::TranslationFault { addr } => {
                write!(
                    f,
                    "translation fault at {addr:#018x} (non-canonical pointer)"
                )
            }
            Fault::AccessFault { addr } => write!(f, "access fault at {addr:#018x} (unmapped)"),
            Fault::PermissionFault { addr } => {
                write!(f, "permission fault at {addr:#018x} (W^X violation)")
            }
            Fault::FetchFault { pc } => write!(f, "instruction fetch fault at pc={pc:#018x}"),
            Fault::PacFault { pointer } => {
                write!(f, "pointer authentication fault on {pointer:#018x} (FPAC)")
            }
            Fault::Timeout => f.write_str("instruction budget exhausted"),
            Fault::SigreturnViolation => f.write_str("sigreturn validation failed"),
            Fault::KeyFault { pointer } => {
                write!(
                    f,
                    "authentication failed on {pointer:#018x} under corrupted PA keys"
                )
            }
            Fault::NoSuchSymbol => f.write_str("no such symbol in program image"),
        }
    }
}

impl Error for Fault {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faults_display_their_addresses() {
        let s = Fault::TranslationFault {
            addr: 0x4000_0000_1234,
        }
        .to_string();
        assert!(s.contains("0x0000400000001234"));
        assert!(Fault::Timeout.to_string().contains("budget"));
    }

    #[test]
    fn key_fault_displays_pointer_and_cause() {
        let s = Fault::KeyFault {
            pointer: 0x007F_0000_BEEF,
        }
        .to_string();
        assert!(s.contains("0x0000007f0000beef"));
        assert!(s.contains("corrupted PA keys"));
    }

    #[test]
    fn every_fault_variant_displays_distinctly() {
        let faults = [
            Fault::TranslationFault { addr: 1 },
            Fault::AccessFault { addr: 1 },
            Fault::PermissionFault { addr: 1 },
            Fault::FetchFault { pc: 1 },
            Fault::PacFault { pointer: 1 },
            Fault::Timeout,
            Fault::SigreturnViolation,
            Fault::KeyFault { pointer: 1 },
            Fault::NoSuchSymbol,
        ];
        let rendered: Vec<String> = faults.iter().map(Fault::to_string).collect();
        for (i, a) in rendered.iter().enumerate() {
            assert!(!a.is_empty());
            for b in rendered.iter().skip(i + 1) {
                assert_ne!(a, b, "two fault variants render identically");
            }
        }
        assert!(Fault::NoSuchSymbol.to_string().contains("symbol"));
        // Telemetry labels must be distinct too: a shared label would
        // silently merge two fault kinds in every exported counter.
        let labels: Vec<&str> = faults.iter().map(Fault::label).collect();
        for (i, a) in labels.iter().enumerate() {
            for b in labels.iter().skip(i + 1) {
                assert_ne!(a, b, "two fault variants share telemetry label {a}");
            }
        }
    }
}
