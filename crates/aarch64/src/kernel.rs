//! The kernel model: context switches, signal delivery, `sigreturn`, and
//! process-lifecycle key management.
//!
//! The PACStack paper depends on three kernel behaviours (§5.4, §6.3.2,
//! Appendix B):
//!
//! 1. **Context switches spill CR/LR into kernel-private storage.** The
//!    adversary has full user-space memory access but cannot touch
//!    `struct cpu_context`. Modelled by [`Cpu::save_context`] returning an
//!    opaque value that never enters the simulated [`Memory`].
//! 2. **Signal frames live on the user stack** and are attacker-writable,
//!    enabling *sigreturn-oriented programming*. [`SignalDelivery`] models
//!    both the vulnerable baseline and the ACS-protected variant from
//!    Appendix B, where the kernel keeps an authenticated reference
//!    (`asigret`) and kills the process on mismatch.
//! 3. **PA keys are per-process**: regenerated on `exec`, shared across
//!    `fork` (which is what makes the §4.3 divide-and-conquer guessing
//!    strategy possible against pre-forking servers).
//!
//! [`Cpu::save_context`]: crate::Cpu::save_context
//! [`Memory`]: crate::Memory

use crate::{Cpu, Fault, Reg};

use pacstack_pauth::PaKeys;

/// Number of `u64` slots in a signal frame: PC, SP and `X0`–`X30`.
const FRAME_SLOTS: u64 = 33;

/// The syscall number the signal-handler epilogue must issue (`svc #9`)
/// to request `sigreturn`.
pub const SIGRETURN_SYSCALL: u16 = 9;

/// Kernel-side signal state for one process.
///
/// # Examples
///
/// ```
/// use pacstack_aarch64::kernel::SignalDelivery;
///
/// let unprotected = SignalDelivery::new();
/// let protected = SignalDelivery::protected();
/// assert!(!unprotected.is_protected());
/// assert!(protected.is_protected());
/// ```
#[derive(Debug, Clone, Default)]
pub struct SignalDelivery {
    /// Whether the Appendix-B ACS-based sigreturn protection is active.
    acs_protected: bool,
    /// Kernel-private stack of `asigret` reference values (one per nested
    /// signal). The paper stores older references inside newer signal
    /// frames; keeping the whole stack kernel-side is a strictly stronger
    /// simplification with the same attacker-visible behaviour.
    references: Vec<u64>,
}

impl SignalDelivery {
    /// Signal handling as mainline Linux does it: the frame on the user
    /// stack is trusted at `sigreturn` (vulnerable to SROP).
    pub fn new() -> Self {
        Self::default()
    }

    /// Appendix-B behaviour: the kernel authenticates the frame's PC and CR
    /// against a kernel-held reference before honouring `sigreturn`.
    pub fn protected() -> Self {
        Self {
            acs_protected: true,
            references: Vec::new(),
        }
    }

    /// Whether Appendix-B protection is enabled.
    pub fn is_protected(&self) -> bool {
        self.acs_protected
    }

    /// Number of signal frames currently outstanding.
    pub fn depth(&self) -> usize {
        self.references.len()
    }

    /// The kernel's `asigret` reference for the current interruption:
    /// a `pacga`-style MAC binding the interrupted PC to the chain register.
    fn reference(cpu: &Cpu, pc: u64, cr: u64) -> u64 {
        cpu.pa().pacga(cpu.keys(), pc, cr)
    }

    /// Delivers a signal: saves the interrupted context to a frame on the
    /// *user* stack (attacker-writable!) and redirects execution to
    /// `handler`. The handler must end with `svc #9` (`sigreturn`).
    ///
    /// # Errors
    ///
    /// Propagates memory faults from writing the frame (e.g. stack overflow).
    pub fn deliver(&mut self, cpu: &mut Cpu, handler: u64) -> Result<(), Fault> {
        let frame_base = cpu.reg(Reg::Sp) - FRAME_SLOTS * 8;
        let mut slots = Vec::with_capacity(FRAME_SLOTS as usize);
        slots.push(cpu.pc());
        slots.push(cpu.reg(Reg::Sp));
        for reg in (0..31).filter_map(Reg::from_index) {
            slots.push(cpu.reg(reg));
        }
        for (i, value) in slots.iter().enumerate() {
            cpu.mem_mut().write_u64(frame_base + 8 * i as u64, *value)?;
        }

        if self.acs_protected {
            self.references
                .push(Self::reference(cpu, cpu.pc(), cpu.reg(Reg::CR)));
        }

        cpu.set_reg(Reg::Sp, frame_base);
        cpu.set_pc(handler);
        Ok(())
    }

    /// Services `sigreturn` (`svc #9`): restores the context stored in the
    /// frame at `SP`.
    ///
    /// In unprotected mode the frame is trusted — a forged frame hands the
    /// adversary every register including CR. In protected mode the frame's
    /// PC/CR pair must authenticate against the kernel reference.
    ///
    /// # Errors
    ///
    /// [`Fault::SigreturnViolation`] if protection is on and validation
    /// fails (no reference outstanding, or the MAC mismatches); memory
    /// faults propagate.
    pub fn sigreturn(&mut self, cpu: &mut Cpu) -> Result<(), Fault> {
        // With protection on, a sigreturn with no signal outstanding is an
        // attack by definition — the kernel kills the process before even
        // touching the frame.
        let reference = if self.acs_protected {
            Some(self.references.pop().ok_or(Fault::SigreturnViolation)?)
        } else {
            None
        };

        let frame_base = cpu.reg(Reg::Sp);
        let read = |cpu: &Cpu, slot: u64| cpu.mem().read_u64(frame_base + slot * 8);

        let pc = read(cpu, 0)?;
        let sp = read(cpu, 1)?;
        let mut regs = [0u64; 31];
        for (i, slot) in regs.iter_mut().enumerate() {
            *slot = read(cpu, 2 + i as u64)?;
        }

        if let Some(reference) = reference {
            let cr = regs[28];
            if Self::reference(cpu, pc, cr) != reference {
                return Err(Fault::SigreturnViolation);
            }
        }

        for (i, value) in regs.iter().enumerate() {
            if let Some(reg) = Reg::from_index(i) {
                cpu.set_reg(reg, *value);
            }
        }
        cpu.set_reg(Reg::Sp, sp);
        cpu.set_pc(pc);
        Ok(())
    }
}

/// A round-robin thread scheduler over kernel-held [`Context`]s
/// (paper §5.4).
///
/// Threads share the process address space (and PA keys) but each has its
/// own stack, its own shadow-stack window, and — per the §4.3
/// recommendation — its own chain seed, so sibling ACS chains are
/// disjoint. While a thread is preempted its registers (including CR and
/// LR) live in the scheduler's task list, *outside* the simulated memory:
/// the adversary model cannot reach them, which is the property §5.4
/// argues makes PACStack thread-safe without kernel changes.
///
/// [`Context`]: crate::Context
#[derive(Debug, Default)]
pub struct Scheduler {
    tasks: Vec<Task>,
    current: usize,
    /// Next unused thread-stack base.
    next_stack: u64,
}

#[derive(Debug)]
struct Task {
    name: String,
    context: Option<crate::Context>,
    exit_code: Option<u64>,
}

/// Where thread stacks are mapped (below the main stack region).
const THREAD_STACK_AREA: u64 = 0x7f00_0000;
/// Size of one thread stack.
const THREAD_STACK_SIZE: u64 = 0x1_0000;

impl Scheduler {
    /// Creates a scheduler whose task 0 is the CPU's current state (the
    /// main thread).
    pub fn adopt_main(cpu: &Cpu) -> Self {
        Self {
            tasks: vec![Task {
                name: "main".to_owned(),
                context: Some(cpu.save_context()),
                exit_code: None,
            }],
            current: 0,
            next_stack: THREAD_STACK_AREA,
        }
    }

    /// Spawns a thread running the function `entry` with its own stack,
    /// shadow-stack window and chain seed (`CR = chain_seed`, the §4.3
    /// re-seeding that keeps sibling chains disjoint).
    ///
    /// # Errors
    ///
    /// [`Fault::NoSuchSymbol`] if `entry` is not defined by the program —
    /// a reportable outcome, not a host-process abort.
    pub fn spawn(&mut self, cpu: &mut Cpu, entry: &str, chain_seed: u64) -> Result<(), Fault> {
        let entry_addr = cpu.symbol(entry).ok_or(Fault::NoSuchSymbol)?;
        let stack_base = self.next_stack;
        self.next_stack += 2 * THREAD_STACK_SIZE; // guard gap between stacks
        cpu.mem_mut()
            .map(stack_base, THREAD_STACK_SIZE, crate::Perms::ReadWrite);

        // Build the thread's initial register state on a scratch copy of
        // the live CPU, then capture it as a context.
        let live = cpu.save_context();
        cpu.set_pc(entry_addr);
        cpu.set_reg(Reg::Sp, stack_base + THREAD_STACK_SIZE - 16);
        // Returning from the entry function lands on the start stub's
        // `svc #0`, which the scheduler interprets as thread exit.
        cpu.set_reg(Reg::LR, crate::LAYOUT.code_base + 4);
        cpu.set_reg(Reg::CR, chain_seed);
        // A private shadow-stack window, one page per thread.
        let scs_window = crate::LAYOUT.shadow_stack_base + 0x1000 * (self.tasks.len() as u64);
        cpu.set_reg(Reg::SCS, scs_window);
        let context = cpu.save_context();
        cpu.restore_context(&live);

        self.tasks.push(Task {
            name: entry.to_owned(),
            context: Some(context),
            exit_code: None,
        });
        Ok(())
    }

    /// Number of tasks still runnable.
    pub fn live_tasks(&self) -> usize {
        self.tasks.iter().filter(|t| t.context.is_some()).count()
    }

    /// Exit code of a finished task, by spawn order.
    pub fn exit_code(&self, index: usize) -> Option<u64> {
        self.tasks.get(index).and_then(|t| t.exit_code)
    }

    /// Name of a task.
    pub fn task_name(&self, index: usize) -> Option<&str> {
        self.tasks.get(index).map(|t| t.name.as_str())
    }

    /// Runs all tasks round-robin, `quantum` instructions at a time, until
    /// every task has exited or `max_slices` time slices have elapsed.
    ///
    /// Returns the exit codes in spawn order.
    ///
    /// # Errors
    ///
    /// Propagates the first non-preemption [`Fault`] any task raises, and
    /// reports [`Fault::Timeout`] if tasks are still live after
    /// `max_slices`.
    pub fn run_all(
        &mut self,
        cpu: &mut Cpu,
        quantum: u64,
        max_slices: u64,
    ) -> Result<Vec<u64>, Fault> {
        let mut slices = 0;
        while self.live_tasks() > 0 {
            if slices >= max_slices {
                return Err(Fault::Timeout);
            }
            slices += 1;
            // Pick the next runnable task, taking its context as we find it.
            let n = self.tasks.len();
            let mut selected = None;
            for i in 0..n {
                let idx = (self.current + i) % n;
                if let Some(context) = self.tasks[idx].context.take() {
                    selected = Some((idx, context));
                    break;
                }
            }
            let Some((idx, context)) = selected else {
                break;
            };
            self.current = idx;
            let task = &mut self.tasks[idx];
            cpu.restore_context(&context);

            match cpu.run(quantum) {
                Ok(out) => match out.status {
                    crate::RunStatus::Exited(code) => {
                        task.exit_code = Some(code);
                    }
                    crate::RunStatus::Syscall(_) => {
                        // Unknown syscall: treat as a yield.
                        task.context = Some(cpu.save_context());
                    }
                },
                // Quantum expiry: preempt, saving state kernel-side.
                Err(Fault::Timeout) => {
                    task.context = Some(cpu.save_context());
                }
                Err(fault) => return Err(fault),
            }
            self.current = (self.current + 1) % n;
        }
        Ok(self
            .tasks
            .iter()
            .map(|t| t.exit_code.unwrap_or(0))
            .collect())
    }
}

/// `fork`: duplicates the process. The child shares the parent's PA keys —
/// the configuration the paper's §4.3 guessing analysis targets.
pub fn fork(parent: &Cpu) -> Cpu {
    parent.clone()
}

/// `exec`: the kernel generates fresh PA keys for the process, invalidating
/// every PAC the adversary has harvested.
pub fn exec_rekey(cpu: &mut Cpu, seed: u64) {
    cpu.set_keys(PaKeys::from_seed(seed));
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use crate::program::Op;
    use crate::Instruction::*;
    use crate::{Program, RunStatus};

    /// main spins via svc #42 checkpoints; handler emits X19 and sigreturns.
    fn signal_test_program() -> Program {
        let mut p = Program::new();
        p.function(
            "main",
            vec![
                MovImm(Reg::X19, 0xAA), // callee-saved canary
                Svc(42),                // checkpoint 1: harness delivers a signal here
                Mov(Reg::X0, Reg::X19), // X19 must survive the signal
                Ret,
            ],
        );
        p.function(
            "handler",
            vec![
                MovImm(Reg::X19, 0x55), // clobber; sigreturn must restore it
                Svc(SIGRETURN_SYSCALL),
            ],
        );
        p
    }

    #[test]
    fn signal_round_trip_restores_context() {
        let mut cpu = Cpu::with_seed(signal_test_program(), 3);
        let mut signals = SignalDelivery::new();

        let out = cpu.run(1000).unwrap();
        assert_eq!(out.status, RunStatus::Syscall(42));
        let handler = cpu.symbol("handler").unwrap();
        signals.deliver(&mut cpu, handler).unwrap();

        let out = cpu.run(1000).unwrap();
        assert_eq!(out.status, RunStatus::Syscall(SIGRETURN_SYSCALL));
        signals.sigreturn(&mut cpu).unwrap();

        let out = cpu.run(1000).unwrap();
        assert_eq!(out.exit_code, 0xAA); // X19 restored across the signal
    }

    #[test]
    fn srop_forges_full_register_state_when_unprotected() {
        // Sigreturn-oriented programming (paper §6.3.2): the adversary
        // rewrites the signal frame and gains every register, including CR.
        let mut cpu = Cpu::with_seed(signal_test_program(), 3);
        let mut signals = SignalDelivery::new();

        cpu.run(1000).unwrap();
        let handler = cpu.symbol("handler").unwrap();
        signals.deliver(&mut cpu, handler).unwrap();

        // The frame sits at SP; slot 2+28 is X28 (CR), slot 0 is PC.
        let frame = cpu.reg(Reg::Sp);
        let main_addr = cpu.symbol("main").unwrap();
        cpu.mem_mut().write_u64(frame, main_addr).unwrap(); // PC
        cpu.mem_mut()
            .write_u64(frame + (2 + 28) * 8, 0x4141_4141)
            .unwrap(); // CR

        cpu.run(1000).unwrap();
        signals.sigreturn(&mut cpu).unwrap();
        assert_eq!(cpu.reg(Reg::CR), 0x4141_4141); // adversary controls CR
        assert_eq!(cpu.pc(), cpu.symbol("main").unwrap());
    }

    #[test]
    fn protected_sigreturn_detects_forged_frame() {
        let mut cpu = Cpu::with_seed(signal_test_program(), 3);
        let mut signals = SignalDelivery::protected();

        cpu.run(1000).unwrap();
        let handler = cpu.symbol("handler").unwrap();
        signals.deliver(&mut cpu, handler).unwrap();

        let frame = cpu.reg(Reg::Sp);
        cpu.mem_mut()
            .write_u64(frame + (2 + 28) * 8, 0x4141_4141)
            .unwrap();

        cpu.run(1000).unwrap();
        assert_eq!(signals.sigreturn(&mut cpu), Err(Fault::SigreturnViolation));
    }

    #[test]
    fn protected_sigreturn_accepts_genuine_frame() {
        let mut cpu = Cpu::with_seed(signal_test_program(), 3);
        let mut signals = SignalDelivery::protected();

        cpu.run(1000).unwrap();
        let handler = cpu.symbol("handler").unwrap();
        signals.deliver(&mut cpu, handler).unwrap();
        cpu.run(1000).unwrap();
        signals.sigreturn(&mut cpu).unwrap();
        assert_eq!(cpu.run(1000).unwrap().exit_code, 0xAA);
    }

    #[test]
    fn protected_sigreturn_without_delivery_is_killed() {
        let mut cpu = Cpu::with_seed(signal_test_program(), 3);
        let mut signals = SignalDelivery::protected();
        // Adversary triggers sigreturn with no signal outstanding.
        assert_eq!(signals.sigreturn(&mut cpu), Err(Fault::SigreturnViolation));
    }

    #[test]
    fn nested_signals_unwind_in_order() {
        let mut cpu = Cpu::with_seed(signal_test_program(), 3);
        let mut signals = SignalDelivery::protected();

        cpu.run(1000).unwrap();
        let handler = cpu.symbol("handler").unwrap();
        signals.deliver(&mut cpu, handler).unwrap();
        // Second signal arrives while the first handler runs.
        signals.deliver(&mut cpu, handler).unwrap();
        assert_eq!(signals.depth(), 2);

        cpu.run(1000).unwrap();
        signals.sigreturn(&mut cpu).unwrap(); // back into first handler
        assert_eq!(signals.depth(), 1);
        cpu.run(1000).unwrap();
        signals.sigreturn(&mut cpu).unwrap(); // back into main
        assert_eq!(signals.depth(), 0);
        assert_eq!(cpu.run(1000).unwrap().exit_code, 0xAA);
    }

    #[test]
    fn context_switch_preserves_cr_outside_memory() {
        // §5.4: during a context switch CR/LR live in kernel-private
        // storage; the adversary's memory writes cannot affect them.
        let mut p = Program::new();
        p.function("main", vec![MovImm(Reg::X0, 0), Ret]);
        let mut cpu = Cpu::with_seed(p, 3);
        cpu.set_reg(Reg::CR, 0xC0FFEE);
        let saved = cpu.save_context();

        // Adversary scribbles over all of user memory-visible state.
        cpu.set_reg(Reg::CR, 0xBAD);
        let stack = crate::LAYOUT.stack_top - 64;
        cpu.mem_mut().write_u64(stack, 0xBAD).unwrap();

        cpu.restore_context(&saved);
        assert_eq!(cpu.reg(Reg::CR), 0xC0FFEE);
    }

    #[test]
    fn fork_shares_keys_exec_rekeys() {
        let mut p = Program::new();
        p.function("main", vec![Ret]);
        let parent = Cpu::with_seed(p, 3);
        let mut child = fork(&parent);
        assert_eq!(child.keys(), parent.keys());
        exec_rekey(&mut child, 999);
        assert_ne!(child.keys(), parent.keys());
    }

    #[test]
    fn run_uses_ops_for_checkpoint_program() {
        // Sanity: the Op-based builder and signals interact correctly when
        // the handler address is taken before delivery.
        let mut p = Program::new();
        p.function_ops("main", vec![Op::I(MovImm(Reg::X0, 1)), Op::I(Ret)]);
        assert_eq!(Cpu::with_seed(p, 0).run(100).unwrap().exit_code, 1);
    }
}
