//! The instruction subset the simulator executes.
//!
//! This is not an encoder/decoder for real AArch64 machine code — programs
//! are held as structured instructions with a 4-byte program counter stride,
//! which preserves every property the PACStack evaluation needs (addresses,
//! W⊕X, faulting semantics, per-instruction cost) without a binary layer.

use crate::Reg;
use std::fmt;

/// A condition code for [`Instruction::BCond`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Equal (`Z == 1`).
    Eq,
    /// Not equal (`Z == 0`).
    Ne,
    /// Unsigned lower (`C == 0`).
    Lo,
    /// Unsigned higher or same (`C == 1`).
    Hs,
    /// Signed less than (`N != V`).
    Lt,
    /// Signed greater or equal (`N == V`).
    Ge,
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cond::Eq => "eq",
            Cond::Ne => "ne",
            Cond::Lo => "lo",
            Cond::Hs => "hs",
            Cond::Lt => "lt",
            Cond::Ge => "ge",
        };
        f.write_str(s)
    }
}

/// One simulated instruction.
///
/// Branch targets are absolute virtual addresses; the assembler in
/// [`Program`](crate::Program) resolves labels to addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instruction {
    // --- data movement -----------------------------------------------------
    /// `mov Xd, Xn`
    Mov(Reg, Reg),
    /// `mov Xd, #imm` (materialise a 64-bit immediate)
    MovImm(Reg, u64),

    // --- arithmetic / logic ------------------------------------------------
    /// `add Xd, Xn, Xm`
    Add(Reg, Reg, Reg),
    /// `add Xd, Xn, #imm` (imm may be negative)
    AddImm(Reg, Reg, i64),
    /// `sub Xd, Xn, Xm`
    Sub(Reg, Reg, Reg),
    /// `mul Xd, Xn, Xm`
    Mul(Reg, Reg, Reg),
    /// `eor Xd, Xn, Xm`
    Eor(Reg, Reg, Reg),
    /// `eor Xd, Xn, #imm`
    EorImm(Reg, Reg, u64),
    /// `and Xd, Xn, #imm`
    AndImm(Reg, Reg, u64),
    /// `lsr Xd, Xn, #shift`
    LsrImm(Reg, Reg, u32),
    /// `cmp Xn, Xm` (sets flags)
    Cmp(Reg, Reg),
    /// `cmp Xn, #imm` (sets flags)
    CmpImm(Reg, i64),

    // --- memory ------------------------------------------------------------
    /// `ldr Xt, [Xn, #offset]`
    Ldr(Reg, Reg, i64),
    /// `str Xt, [Xn, #offset]`
    Str(Reg, Reg, i64),
    /// `ldr Xt, [Xn], #offset` — post-indexed (pop idiom)
    LdrPost(Reg, Reg, i64),
    /// `ldr Xt, [Xn, #offset]!` — pre-indexed (shadow-stack pop idiom)
    LdrPre(Reg, Reg, i64),
    /// `str Xt, [Xn, #offset]!` — pre-indexed (push idiom)
    StrPre(Reg, Reg, i64),
    /// `str Xt, [Xn], #offset` — post-indexed (shadow-stack push idiom)
    StrPost(Reg, Reg, i64),
    /// `stp Xt1, Xt2, [Xn, #offset]`
    Stp(Reg, Reg, Reg, i64),
    /// `ldp Xt1, Xt2, [Xn, #offset]`
    Ldp(Reg, Reg, Reg, i64),

    // --- control flow ------------------------------------------------------
    /// `b target`
    B(u64),
    /// `b.cond target`
    BCond(Cond, u64),
    /// `cbz Xt, target`
    Cbz(Reg, u64),
    /// `cbnz Xt, target`
    Cbnz(Reg, u64),
    /// `bl target` — call: `LR ← return address`
    Bl(u64),
    /// `blr Xn` — indirect call
    Blr(Reg),
    /// `br Xn` — indirect jump (tail calls)
    Br(Reg),
    /// `ret` — branch to `LR`
    Ret,

    // --- pointer authentication ---------------------------------------------
    /// `pacia Xd, Xn` — sign `Xd` with instruction key A, modifier `Xn`
    Pacia(Reg, Reg),
    /// `autia Xd, Xn` — authenticate `Xd` with instruction key A
    Autia(Reg, Reg),
    /// `pacib Xd, Xn` — sign with instruction key B (the arm64e choice)
    Pacib(Reg, Reg),
    /// `autib Xd, Xn` — authenticate with instruction key B
    Autib(Reg, Reg),
    /// `paciasp` — sign `LR` with `SP` as modifier (`-mbranch-protection`)
    Paciasp,
    /// `autiasp` — authenticate `LR` with `SP` as modifier
    Autiasp,
    /// `retaa` — authenticate `LR` with `SP` as modifier, then return
    Retaa,
    /// `pacibsp` — sign `LR` with `SP`, key B
    Pacibsp,
    /// `retab` — authenticate `LR` with `SP` (key B), then return
    Retab,
    /// `bti` — branch-target indicator: a valid landing pad for indirect
    /// branches when BTI enforcement is on (assumption A2)
    Bti,
    /// `xpaci Xd` — strip the PAC from `Xd`
    Xpaci(Reg),
    /// `pacga Xd, Xn, Xm` — generic MAC of `Xn` with modifier `Xm`
    Pacga(Reg, Reg, Reg),

    // --- system --------------------------------------------------------------
    /// `svc #imm` — supervisor call; the kernel model dispatches on `X8`
    Svc(u16),
    /// `nop`
    Nop,
}

impl Instruction {
    /// Whether this instruction is one of the PA family (costed separately).
    pub fn is_pointer_auth(&self) -> bool {
        matches!(
            self,
            Instruction::Pacia(..)
                | Instruction::Autia(..)
                | Instruction::Pacib(..)
                | Instruction::Autib(..)
                | Instruction::Paciasp
                | Instruction::Autiasp
                | Instruction::Retaa
                | Instruction::Pacibsp
                | Instruction::Retab
                | Instruction::Pacga(..)
                | Instruction::Xpaci(..)
        )
    }

    /// Whether this instruction accesses data memory.
    pub fn is_memory(&self) -> bool {
        matches!(
            self,
            Instruction::Ldr(..)
                | Instruction::Str(..)
                | Instruction::LdrPost(..)
                | Instruction::LdrPre(..)
                | Instruction::StrPre(..)
                | Instruction::StrPost(..)
                | Instruction::Stp(..)
                | Instruction::Ldp(..)
        )
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Instruction::*;
        match self {
            Mov(d, n) => write!(f, "mov {d}, {n}"),
            MovImm(d, imm) => write!(f, "mov {d}, #{imm:#x}"),
            Add(d, n, m) => write!(f, "add {d}, {n}, {m}"),
            AddImm(d, n, imm) => write!(f, "add {d}, {n}, #{imm}"),
            Sub(d, n, m) => write!(f, "sub {d}, {n}, {m}"),
            Mul(d, n, m) => write!(f, "mul {d}, {n}, {m}"),
            Eor(d, n, m) => write!(f, "eor {d}, {n}, {m}"),
            EorImm(d, n, imm) => write!(f, "eor {d}, {n}, #{imm:#x}"),
            AndImm(d, n, imm) => write!(f, "and {d}, {n}, #{imm:#x}"),
            LsrImm(d, n, s) => write!(f, "lsr {d}, {n}, #{s}"),
            Cmp(n, m) => write!(f, "cmp {n}, {m}"),
            CmpImm(n, imm) => write!(f, "cmp {n}, #{imm}"),
            Ldr(t, n, o) => write!(f, "ldr {t}, [{n}, #{o}]"),
            Str(t, n, o) => write!(f, "str {t}, [{n}, #{o}]"),
            LdrPost(t, n, o) => write!(f, "ldr {t}, [{n}], #{o}"),
            LdrPre(t, n, o) => write!(f, "ldr {t}, [{n}, #{o}]!"),
            StrPre(t, n, o) => write!(f, "str {t}, [{n}, #{o}]!"),
            StrPost(t, n, o) => write!(f, "str {t}, [{n}], #{o}"),
            Stp(t1, t2, n, o) => write!(f, "stp {t1}, {t2}, [{n}, #{o}]"),
            Ldp(t1, t2, n, o) => write!(f, "ldp {t1}, {t2}, [{n}, #{o}]"),
            B(a) => write!(f, "b {a:#x}"),
            BCond(c, a) => write!(f, "b.{c} {a:#x}"),
            Cbz(t, a) => write!(f, "cbz {t}, {a:#x}"),
            Cbnz(t, a) => write!(f, "cbnz {t}, {a:#x}"),
            Bl(a) => write!(f, "bl {a:#x}"),
            Blr(n) => write!(f, "blr {n}"),
            Br(n) => write!(f, "br {n}"),
            Ret => f.write_str("ret"),
            Pacia(d, n) => write!(f, "pacia {d}, {n}"),
            Autia(d, n) => write!(f, "autia {d}, {n}"),
            Pacib(d, n) => write!(f, "pacib {d}, {n}"),
            Autib(d, n) => write!(f, "autib {d}, {n}"),
            Paciasp => f.write_str("paciasp"),
            Autiasp => f.write_str("autiasp"),
            Retaa => f.write_str("retaa"),
            Pacibsp => f.write_str("pacibsp"),
            Retab => f.write_str("retab"),
            Bti => f.write_str("bti"),
            Xpaci(d) => write!(f, "xpaci {d}"),
            Pacga(d, n, m) => write!(f, "pacga {d}, {n}, {m}"),
            Svc(imm) => write!(f, "svc #{imm}"),
            Nop => f.write_str("nop"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pa_classification() {
        assert!(Instruction::Pacia(Reg::X30, Reg::X28).is_pointer_auth());
        assert!(Instruction::Retaa.is_pointer_auth());
        assert!(!Instruction::Ret.is_pointer_auth());
        assert!(!Instruction::Ldr(Reg::X0, Reg::Sp, 0).is_pointer_auth());
    }

    #[test]
    fn memory_classification() {
        assert!(Instruction::Stp(Reg::X29, Reg::X30, Reg::Sp, -16).is_memory());
        assert!(Instruction::LdrPost(Reg::X28, Reg::Sp, 16).is_memory());
        assert!(!Instruction::Mov(Reg::X0, Reg::X1).is_memory());
    }

    #[test]
    fn display_renders_assembly() {
        assert_eq!(
            Instruction::Pacia(Reg::X30, Reg::X28).to_string(),
            "pacia lr, x28"
        );
        assert_eq!(
            Instruction::Str(Reg::X30, Reg::Sp, 8).to_string(),
            "str lr, [sp, #8]"
        );
        assert_eq!(
            Instruction::BCond(Cond::Ne, 0x400010).to_string(),
            "b.ne 0x400010"
        );
    }
}
