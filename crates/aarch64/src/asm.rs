//! A textual assembler for the simulated instruction set.
//!
//! The accepted syntax is exactly what [`Program`]'s `Display`
//! implementation prints, so any program can round-trip through text —
//! convenient for examples, golden tests, and the `pacstack-run` CLI.
//!
//! ```text
//! main:
//!     mov x0, #5
//!     bl double
//!     svc #0
//! double:
//!     add x0, x0, x0
//!     ret
//! ```
//!
//! # Examples
//!
//! ```
//! use pacstack_aarch64::asm::parse_program;
//! use pacstack_aarch64::Cpu;
//!
//! let program = parse_program("main:\n    mov x0, #41\n    add x0, x0, #1\n    ret\n")?;
//! let mut cpu = Cpu::with_seed(program, 0);
//! assert_eq!(cpu.run(100).map(|o| o.exit_code), Ok(42));
//! # Ok::<(), pacstack_aarch64::asm::ParseError>(())
//! ```

use crate::program::Op;
use crate::{Cond, Instruction as I, Program, Reg};
use std::error::Error;
use std::fmt;

/// An assembly parse error with its line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for ParseError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        line,
        message: message.into(),
    })
}

fn parse_reg(token: &str, line: usize) -> Result<Reg, ParseError> {
    let token = token.trim().trim_end_matches(',');
    match token {
        "sp" => Ok(Reg::Sp),
        "xzr" => Ok(Reg::Xzr),
        "lr" => Ok(Reg::X30),
        "fp" => Ok(Reg::X29),
        t if t.starts_with('x') => t[1..]
            .parse::<usize>()
            .ok()
            .and_then(Reg::from_index)
            .map_or_else(|| err(line, format!("bad register {t:?}")), Ok),
        other => err(line, format!("bad register {other:?}")),
    }
}

fn parse_imm(token: &str, line: usize) -> Result<i64, ParseError> {
    let t = token.trim().trim_end_matches(',');
    let t = t.strip_prefix('#').unwrap_or(t);
    let (neg, t) = if let Some(rest) = t.strip_prefix('-') {
        (true, rest)
    } else {
        (false, t)
    };
    let value = if let Some(hex) = t.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).map_err(|e| ParseError {
            line,
            message: format!("bad immediate {token:?}: {e}"),
        })?
    } else {
        t.parse::<u64>().map_err(|e| ParseError {
            line,
            message: format!("bad immediate {token:?}: {e}"),
        })?
    };
    Ok(if neg { -(value as i64) } else { value as i64 })
}

/// Parses `[reg, #imm]`, `[reg]`, `[reg, #imm]!` or `[reg], #imm` operand
/// forms, returning (base, offset, addressing mode).
#[derive(Debug, PartialEq, Eq)]
enum AddrMode {
    Offset,
    PreIndex,
    PostIndex,
}

fn parse_mem(rest: &str, line: usize) -> Result<(Reg, i64, AddrMode), ParseError> {
    let rest = rest.trim();
    let Some(open) = rest.find('[') else {
        return err(line, format!("expected memory operand in {rest:?}"));
    };
    let Some(close) = rest.find(']') else {
        return err(line, format!("unterminated memory operand in {rest:?}"));
    };
    let inside = &rest[open + 1..close];
    let after = rest[close + 1..].trim();
    let mut parts = inside.splitn(2, ',');
    let base = parse_reg(parts.next().unwrap_or(""), line)?;
    let inner_off = match parts.next() {
        Some(imm) => parse_imm(imm, line)?,
        None => 0,
    };
    if after == "!" {
        Ok((base, inner_off, AddrMode::PreIndex))
    } else if let Some(post) = after.strip_prefix(',') {
        Ok((base, parse_imm(post, line)?, AddrMode::PostIndex))
    } else if after.is_empty() {
        Ok((base, inner_off, AddrMode::Offset))
    } else {
        err(
            line,
            format!("trailing junk after memory operand: {after:?}"),
        )
    }
}

fn parse_cond(mnemonic: &str, line: usize) -> Result<Cond, ParseError> {
    match mnemonic {
        "b.eq" => Ok(Cond::Eq),
        "b.ne" => Ok(Cond::Ne),
        "b.lo" => Ok(Cond::Lo),
        "b.hs" => Ok(Cond::Hs),
        "b.lt" => Ok(Cond::Lt),
        "b.ge" => Ok(Cond::Ge),
        other => err(line, format!("unknown condition {other:?}")),
    }
}

fn parse_op(text: &str, line: usize) -> Result<Op, ParseError> {
    let text = text.trim();
    let (mnemonic, rest) = match text.split_once(char::is_whitespace) {
        Some((m, r)) => (m, r.trim()),
        None => (text, ""),
    };
    let args: Vec<&str> = if rest.is_empty() {
        Vec::new()
    } else {
        rest.split(',').map(str::trim).collect()
    };
    let reg = |i: usize| -> Result<Reg, ParseError> {
        args.get(i).map_or_else(
            || err(line, "missing register operand"),
            |t| parse_reg(t, line),
        )
    };
    let imm = |i: usize| -> Result<i64, ParseError> {
        args.get(i).map_or_else(
            || err(line, "missing immediate operand"),
            |t| parse_imm(t, line),
        )
    };

    let op = match mnemonic {
        "mov" => {
            let d = reg(0)?;
            let src = args.get(1).copied().unwrap_or("");
            if let Some(sym) = src.strip_prefix("#&.") {
                Op::LabelAddr(d, sym.to_owned())
            } else if let Some(sym) = src.strip_prefix("#&") {
                Op::FnAddr(d, sym.to_owned())
            } else if src.starts_with('#') {
                Op::I(I::MovImm(d, imm(1)? as u64))
            } else {
                Op::I(I::Mov(d, reg(1)?))
            }
        }
        "add" => {
            if args.get(2).is_some_and(|t| t.starts_with('#')) {
                Op::I(I::AddImm(reg(0)?, reg(1)?, imm(2)?))
            } else {
                Op::I(I::Add(reg(0)?, reg(1)?, reg(2)?))
            }
        }
        "sub" => Op::I(I::Sub(reg(0)?, reg(1)?, reg(2)?)),
        "mul" => Op::I(I::Mul(reg(0)?, reg(1)?, reg(2)?)),
        "eor" => {
            if args.get(2).is_some_and(|t| t.starts_with('#')) {
                Op::I(I::EorImm(reg(0)?, reg(1)?, imm(2)? as u64))
            } else {
                Op::I(I::Eor(reg(0)?, reg(1)?, reg(2)?))
            }
        }
        "and" => Op::I(I::AndImm(reg(0)?, reg(1)?, imm(2)? as u64)),
        "lsr" => Op::I(I::LsrImm(reg(0)?, reg(1)?, imm(2)? as u32)),
        "cmp" => {
            if args.get(1).is_some_and(|t| t.starts_with('#')) {
                Op::I(I::CmpImm(reg(0)?, imm(1)?))
            } else {
                Op::I(I::Cmp(reg(0)?, reg(1)?))
            }
        }
        "ldr" | "str" => {
            let t = reg(0)?;
            let (base, off, mode) = parse_mem(rest, line)?;
            match (mnemonic, mode) {
                ("ldr", AddrMode::Offset) => Op::I(I::Ldr(t, base, off)),
                ("ldr", AddrMode::PreIndex) => Op::I(I::LdrPre(t, base, off)),
                ("ldr", AddrMode::PostIndex) => Op::I(I::LdrPost(t, base, off)),
                ("str", AddrMode::Offset) => Op::I(I::Str(t, base, off)),
                ("str", AddrMode::PreIndex) => Op::I(I::StrPre(t, base, off)),
                ("str", AddrMode::PostIndex) => Op::I(I::StrPost(t, base, off)),
                _ => unreachable!(),
            }
        }
        "stp" | "ldp" => {
            let t1 = reg(0)?;
            let t2 = reg(1)?;
            let (base, off, mode) = parse_mem(rest, line)?;
            if mode != AddrMode::Offset {
                return err(line, "stp/ldp support only base+offset addressing");
            }
            if mnemonic == "stp" {
                Op::I(I::Stp(t1, t2, base, off))
            } else {
                Op::I(I::Ldp(t1, t2, base, off))
            }
        }
        "b" => {
            let target = args.first().copied().unwrap_or("");
            if let Some(label) = target.strip_prefix('.') {
                Op::Jump(label.to_owned())
            } else {
                Op::TailCall(target.to_owned())
            }
        }
        "bl" => Op::Call(args.first().copied().unwrap_or("").to_owned()),
        "blr" => Op::I(I::Blr(reg(0)?)),
        "br" => Op::I(I::Br(reg(0)?)),
        "ret" => Op::I(I::Ret),
        "cbz" | "cbnz" => {
            let r = reg(0)?;
            let target = args.get(1).copied().unwrap_or("");
            let Some(label) = target.strip_prefix('.') else {
                return err(line, "cbz/cbnz target must be a local .label");
            };
            if mnemonic == "cbz" {
                Op::JumpZero(r, label.to_owned())
            } else {
                Op::JumpNonZero(r, label.to_owned())
            }
        }
        m if m.starts_with("b.") => {
            let cond = parse_cond(m, line)?;
            let target = args.first().copied().unwrap_or("");
            let Some(label) = target.strip_prefix('.') else {
                return err(line, "b.<cond> target must be a local .label");
            };
            Op::JumpCond(cond, label.to_owned())
        }
        "pacia" => Op::I(I::Pacia(reg(0)?, reg(1)?)),
        "autia" => Op::I(I::Autia(reg(0)?, reg(1)?)),
        "pacib" => Op::I(I::Pacib(reg(0)?, reg(1)?)),
        "autib" => Op::I(I::Autib(reg(0)?, reg(1)?)),
        "paciasp" => Op::I(I::Paciasp),
        "autiasp" => Op::I(I::Autiasp),
        "retaa" => Op::I(I::Retaa),
        "pacibsp" => Op::I(I::Pacibsp),
        "retab" => Op::I(I::Retab),
        "bti" => Op::I(I::Bti),
        "xpaci" => Op::I(I::Xpaci(reg(0)?)),
        "pacga" => Op::I(I::Pacga(reg(0)?, reg(1)?, reg(2)?)),
        "svc" => Op::I(I::Svc(imm(0)? as u16)),
        "nop" => Op::I(I::Nop),
        other => return err(line, format!("unknown mnemonic {other:?}")),
    };
    Ok(op)
}

/// Parses an assembly listing into a [`Program`].
///
/// # Errors
///
/// Returns a [`ParseError`] naming the offending line.
pub fn parse_program(source: &str) -> Result<Program, ParseError> {
    let mut program = Program::new();
    let mut current: Option<(String, Vec<Op>)> = None;

    for (idx, raw) in source.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw
            .split(';')
            .next()
            .unwrap_or("")
            .split("//")
            .next()
            .unwrap_or("")
            .trim();
        if line.is_empty() {
            continue;
        }
        if let Some(label) = line.strip_suffix(':') {
            let label = label.trim();
            if let Some(local) = label.strip_prefix('.') {
                // Local label inside the current function.
                match &mut current {
                    Some((_, ops)) => ops.push(Op::Label(local.to_owned())),
                    None => return err(line_no, "local label before any function"),
                }
            } else {
                // New function: flush the previous one.
                if let Some((name, ops)) = current.take() {
                    program.function_ops(&name, ops);
                }
                current = Some((label.to_owned(), Vec::new()));
            }
            continue;
        }
        match &mut current {
            Some((_, ops)) => ops.push(parse_op(line, line_no)?),
            None => return err(line_no, "instruction before any function label"),
        }
    }
    if let Some((name, ops)) = current {
        program.function_ops(&name, ops);
    }
    Ok(program)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use crate::Cpu;

    #[test]
    fn parses_and_runs_a_simple_program() {
        let program = parse_program(
            "main:\n    mov x0, #20\n    bl double\n    add x0, x0, #2\n    ret\n\
             double:\n    add x0, x0, x0\n    ret\n",
        )
        .unwrap();
        // `double` clobbers nothing main needs beyond LR... main must spill
        // — but the bl overwrites LR, so main's final ret goes to double's
        // return point. Keep the test honest: use a leaf-only main.
        let _ = program;
        let program =
            parse_program("main:\n    mov x0, #21\n    add x0, x0, x0\n    ret\n").unwrap();
        let mut cpu = Cpu::with_seed(program, 0);
        assert_eq!(cpu.run(100).unwrap().exit_code, 42);
    }

    #[test]
    fn parses_memory_addressing_modes() {
        let program = parse_program(
            "main:\n    mov x1, #7\n    str x1, [sp, #-16]!\n    ldr x0, [sp], #16\n    ret\n",
        )
        .unwrap();
        let mut cpu = Cpu::with_seed(program, 0);
        assert_eq!(cpu.run(100).unwrap().exit_code, 7);
    }

    #[test]
    fn parses_local_labels_and_branches() {
        let source = "main:\n    mov x0, #0\n    mov x1, #5\n.loop:\n    add x0, x0, #3\n    \
                      add x1, x1, #-1\n    cbnz x1, .loop\n    ret\n";
        let program = parse_program(source).unwrap();
        let mut cpu = Cpu::with_seed(program, 0);
        assert_eq!(cpu.run(1000).unwrap().exit_code, 15);
    }

    #[test]
    fn parses_pa_instructions() {
        let source = "main:\n    mov x0, #0x1234\n    mov x1, #9\n    pacia x0, x1\n    \
                      autia x0, x1\n    ret\n";
        let program = parse_program(source).unwrap();
        let mut cpu = Cpu::with_seed(program, 3);
        assert_eq!(cpu.run(100).unwrap().exit_code, 0x1234);
    }

    #[test]
    fn round_trips_through_display() {
        let source = "main:\n    paciasp\n    str lr, [sp, #-16]!\n    mov x9, #&helper\n    \
                      blr x9\n    ldr lr, [sp], #16\n    retaa\nhelper:\n    eor x0, x0, x0\n    ret\n";
        let program = parse_program(source).unwrap();
        let reparsed = parse_program(&format!("{program}")).unwrap();
        assert_eq!(format!("{program}"), format!("{reparsed}"));
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let source =
            "; full line comment\nmain:\n    mov x0, #1 ; trailing\n\n    ret // c++ style\n";
        let program = parse_program(source).unwrap();
        let mut cpu = Cpu::with_seed(program, 0);
        assert_eq!(cpu.run(100).unwrap().exit_code, 1);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_program("main:\n    bogus x0\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bogus"));
        let e = parse_program("    mov x0, #1\n").unwrap_err();
        assert_eq!(e.line, 1);
    }

    #[test]
    fn condition_codes_parse() {
        let source = "main:\n    mov x0, #1\n    cmp x0, #1\n    b.eq .ok\n    mov x0, #0\n\
                      .ok:\n    ret\n";
        let program = parse_program(source).unwrap();
        let mut cpu = Cpu::with_seed(program, 0);
        assert_eq!(cpu.run(100).unwrap().exit_code, 1);
    }
}
