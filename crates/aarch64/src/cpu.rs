//! The CPU interpreter.

use crate::memory::LAYOUT;
use crate::program::LinkError;
use crate::regs::RegisterFile;
use crate::{Cond, CostModel, Fault, Instruction, Memory, Program, Reg};
use pacstack_pauth::{AuthFailure, PaKey, PaKeys, PointerAuth, VaLayout};
use std::collections::HashMap;

/// NZCV condition flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct Flags {
    n: bool,
    z: bool,
    c: bool,
    v: bool,
}

impl Flags {
    fn holds(&self, cond: Cond) -> bool {
        match cond {
            Cond::Eq => self.z,
            Cond::Ne => !self.z,
            Cond::Lo => !self.c,
            Cond::Hs => self.c,
            Cond::Lt => self.n != self.v,
            Cond::Ge => self.n == self.v,
        }
    }
}

/// A saved user-space execution context (`struct cpu_context` in Linux).
///
/// Produced by [`Cpu::save_context`] during a modelled context switch or
/// signal delivery. Its fields are private and it lives *outside* the
/// simulated [`Memory`](crate::Memory): this is the paper's §5.4 argument —
/// CR and LR of a non-executing task sit in kernel-owned storage the
/// adversary cannot reach.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Context {
    regs: RegisterFile,
    pc: u64,
    flags: Flags,
}

impl Context {
    /// Reads one register from the saved context (kernel/harness use).
    pub fn reg(&self, reg: Reg) -> u64 {
        self.regs.read(reg)
    }

    /// The saved program counter.
    pub fn pc(&self) -> u64 {
        self.pc
    }
}

/// Why [`Cpu::run`] stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunStatus {
    /// The program exited via `svc #0`; carries `X0`.
    Exited(u64),
    /// An `svc` the CPU does not service internally; the kernel model (or
    /// test harness) should handle it and resume.
    Syscall(u16),
}

/// Retired-instruction counters by class — the "added instructions"
/// accounting the paper's §7.1 discussion rests on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InsnCounters {
    /// Pointer-authentication instructions (`pacia`, `autia`, `retaa`, ...).
    pub pointer_auth: u64,
    /// Loads/stores (pairs count once).
    pub memory: u64,
    /// Taken and untaken branches, calls and returns.
    pub branches: u64,
    /// Everything else (ALU, moves, system).
    pub other: u64,
}

impl InsnCounters {
    /// Total retired instructions.
    pub fn total(&self) -> u64 {
        self.pointer_auth + self.memory + self.branches + self.other
    }
}

/// The result of a completed run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outcome {
    /// Exit code (`X0` at `svc #0`); zero if stopped by a foreign syscall.
    pub exit_code: u64,
    /// Why execution stopped.
    pub status: RunStatus,
    /// Total simulated cycles so far (cumulative across resumed runs).
    pub cycles: u64,
    /// Total retired instructions so far.
    pub instructions: u64,
}

/// The simulated CPU: register file, PC, flags, memory, PA unit and cost
/// accounting.
///
/// # Examples
///
/// A return-address overwrite faulting under `retaa` (pac-ret):
///
/// ```
/// use pacstack_aarch64::{Cpu, Fault, Instruction::*, Program, Reg};
///
/// let mut p = Program::new();
/// p.function("main", vec![
///     Paciasp,                       // sign LR with SP
///     StrPre(Reg::X30, Reg::Sp, -16),// spill
///     LdrPost(Reg::X30, Reg::Sp, 16),// reload
///     EorImm(Reg::X30, Reg::X30, 8), // "attacker" redirects the return
///     Retaa,                         // authenticate + return
/// ]);
/// let mut cpu = Cpu::with_seed(p, 1);
/// assert!(matches!(cpu.run(100), Err(Fault::TranslationFault { .. })));
/// ```
#[derive(Debug, Clone)]
pub struct Cpu {
    regs: RegisterFile,
    pc: u64,
    flags: Flags,
    mem: Memory,
    image: Vec<Instruction>,
    code_base: u64,
    symbols: HashMap<String, u64>,
    pa: PointerAuth,
    keys: PaKeys,
    /// Set when the key registers were corrupted out-of-band (fault
    /// injection); lets authentication failures surface as
    /// [`Fault::KeyFault`] instead of a generic mismatch.
    keys_tainted: bool,
    cost: CostModel,
    cycles: u64,
    instructions: u64,
    counters: InsnCounters,
    output: Vec<u64>,
    trace: Option<crate::trace::Trace>,
    pac_log: Option<Vec<(u64, u64)>>,
    bti: bool,
}

impl Cpu {
    /// Builds a CPU for `program` with PA keys derived from `seed`, the
    /// standard memory layout and the default cost model.
    ///
    /// # Panics
    ///
    /// Panics if the program does not link; use [`Cpu::try_with_seed`] to
    /// handle malformed programs as data.
    pub fn with_seed(program: Program, seed: u64) -> Self {
        match Self::try_with_seed(program, seed) {
            Ok(cpu) => cpu,
            Err(e) => panic!("program does not link: {e}"),
        }
    }

    /// Fallible variant of [`Cpu::with_seed`].
    ///
    /// # Errors
    ///
    /// Returns the [`LinkError`] if the program does not assemble.
    pub fn try_with_seed(program: Program, seed: u64) -> Result<Self, LinkError> {
        Self::try_with_parts(
            program,
            PaKeys::from_seed(seed),
            PointerAuth::new(VaLayout::default()),
            CostModel::default(),
        )
    }

    /// Builds a CPU with explicit keys, PA configuration and cost model.
    ///
    /// # Panics
    ///
    /// Panics if the program does not link; use [`Cpu::try_with_parts`] to
    /// handle malformed programs as data.
    pub fn with_parts(program: Program, keys: PaKeys, pa: PointerAuth, cost: CostModel) -> Self {
        match Self::try_with_parts(program, keys, pa, cost) {
            Ok(cpu) => cpu,
            Err(e) => panic!("program does not link: {e}"),
        }
    }

    /// Fallible variant of [`Cpu::with_parts`] — the entry point for
    /// harnesses (fault injection, fuzzing) that must never abort the host
    /// process on a malformed program.
    ///
    /// # Errors
    ///
    /// Returns the [`LinkError`] if the program does not assemble.
    pub fn try_with_parts(
        program: Program,
        keys: PaKeys,
        pa: PointerAuth,
        cost: CostModel,
    ) -> Result<Self, LinkError> {
        let image = program.assemble(LAYOUT.code_base)?;
        let mut regs = RegisterFile::new();
        regs.write(Reg::Sp, LAYOUT.stack_top - 16);
        regs.write(Reg::SCS, LAYOUT.shadow_stack_base);
        Ok(Self {
            regs,
            pc: image.entry,
            flags: Flags::default(),
            mem: Memory::with_standard_layout(),
            image: image.instructions,
            code_base: LAYOUT.code_base,
            symbols: image.symbols,
            pa,
            keys,
            keys_tainted: false,
            cost,
            cycles: 0,
            instructions: 0,
            counters: InsnCounters::default(),
            output: Vec::new(),
            trace: None,
            pac_log: None,
            bti: false,
        })
    }

    /// Switches the PA unit to ARMv8.6-A FPAC semantics (fault on `aut*`).
    pub fn enable_fpac(&mut self) {
        self.pa = PointerAuth::with_failure(self.pa.layout(), AuthFailure::Fault);
    }

    /// Enables branch-target-indicator enforcement (ARMv8.5-A BTI): every
    /// indirect branch (`blr`/`br`) must land on a function entry or an
    /// explicit `bti` landing pad. This is one concrete way of satisfying
    /// the paper's assumption A2 (coarse-grained forward-edge CFI).
    pub fn enable_bti(&mut self) {
        self.bti = true;
    }

    fn check_branch_target(&self, target: u64) -> Result<(), Fault> {
        if !self.bti {
            return Ok(());
        }
        let is_entry = self.symbols.values().any(|&addr| addr == target);
        let is_pad = matches!(self.instruction_at(target), Some(Instruction::Bti));
        if is_entry || is_pad {
            Ok(())
        } else {
            Err(Fault::FetchFault { pc: target })
        }
    }

    /// Reads a register.
    pub fn reg(&self, reg: Reg) -> u64 {
        self.regs.read(reg)
    }

    /// Writes a register (trusted-harness access; user code cannot do this).
    pub fn set_reg(&mut self, reg: Reg, value: u64) {
        self.regs.write(reg, value);
    }

    /// The current program counter.
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// Redirects execution (kernel/harness use: signal delivery, resume).
    pub fn set_pc(&mut self, pc: u64) {
        self.pc = pc;
    }

    /// The process memory — also the adversary's read/write surface.
    pub fn mem(&self) -> &Memory {
        &self.mem
    }

    /// Mutable memory access (adversary primitive or kernel use).
    pub fn mem_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// The PA unit.
    pub fn pa(&self) -> &PointerAuth {
        &self.pa
    }

    /// The process PA keys (kernel-owned; not reachable from simulated code).
    pub fn keys(&self) -> &PaKeys {
        &self.keys
    }

    /// Replaces the PA keys, as the kernel does on `exec`. Legitimate
    /// kernel re-keying clears any corruption taint.
    pub fn set_keys(&mut self, keys: PaKeys) {
        self.keys = keys;
        self.keys_tainted = false;
    }

    /// Overwrites the PA keys *as a fault*, not as kernel policy: models a
    /// glitch on the key registers. Subsequent authentication failures
    /// surface as [`Fault::KeyFault`] so campaigns can attribute the
    /// mismatch to key corruption rather than a forged pointer.
    pub fn corrupt_keys(&mut self, keys: PaKeys) {
        self.keys = keys;
        self.keys_tainted = true;
    }

    /// Whether the PA keys were corrupted via [`Cpu::corrupt_keys`] and not
    /// yet legitimately replaced.
    pub fn keys_tainted(&self) -> bool {
        self.keys_tainted
    }

    /// Address of a function, if defined.
    pub fn symbol(&self, name: &str) -> Option<u64> {
        self.symbols.get(name).copied()
    }

    /// Saves the user-visible execution state into kernel-private storage,
    /// as `kernel_entry` does on EL0→EL1 transitions (paper §5.4).
    pub fn save_context(&self) -> Context {
        Context {
            regs: self.regs.clone(),
            pc: self.pc,
            flags: self.flags,
        }
    }

    /// Restores a previously saved context.
    pub fn restore_context(&mut self, ctx: &Context) {
        self.regs = ctx.regs.clone();
        self.pc = ctx.pc;
        self.flags = ctx.flags;
    }

    /// Cycles consumed so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Instructions retired so far.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Retired-instruction counters by class.
    pub fn counters(&self) -> InsnCounters {
        self.counters
    }

    /// Values emitted via `svc #1`.
    pub fn output(&self) -> &[u64] {
        &self.output
    }

    /// The instruction at a code address, if the address is mapped
    /// executable — the disassembler's entry point.
    pub fn instruction_at(&self, pc: u64) -> Option<Instruction> {
        if self.mem.check_execute(pc).is_err() {
            return None;
        }
        let idx = (pc - self.code_base) / 4;
        self.image.get(idx as usize).copied()
    }

    /// Enables execution tracing into a ring buffer of `capacity` entries.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(crate::trace::Trace::new(capacity));
    }

    /// The execution trace, if tracing is enabled.
    pub fn trace(&self) -> Option<&crate::trace::Trace> {
        self.trace.as_ref()
    }

    /// Starts recording every return-address *signing* event as a
    /// `(modifier, stripped pointer)` pair — the raw material of the
    /// paper's §6.1 reuse analysis: two events with equal modifiers but
    /// different pointers are interchangeable signed pointers.
    pub fn enable_pac_log(&mut self) {
        self.pac_log = Some(Vec::new());
    }

    /// The recorded signing events, if logging is enabled.
    pub fn pac_log(&self) -> Option<&[(u64, u64)]> {
        self.pac_log.as_deref()
    }

    fn log_pac(&mut self, modifier: u64, pointer: u64) {
        let stripped = self.pa.strip(pointer);
        if let Some(log) = &mut self.pac_log {
            log.push((modifier, stripped));
        }
    }

    fn fetch(&self) -> Result<Instruction, Fault> {
        self.mem.check_execute(self.pc)?;
        let idx = (self.pc - self.code_base) / 4;
        self.image
            .get(idx as usize)
            .copied()
            .ok_or(Fault::FetchFault { pc: self.pc })
    }

    fn set_flags_from_cmp(&mut self, a: u64, b: u64) {
        let (result, borrow) = a.overflowing_sub(b);
        self.flags.n = (result >> 63) & 1 == 1;
        self.flags.z = result == 0;
        self.flags.c = !borrow;
        self.flags.v = ((a ^ b) & (a ^ result)) >> 63 == 1;
    }

    /// Performs an `aut*`-style authentication, honouring the configured
    /// failure mode: in FPAC mode a failure faults immediately; otherwise
    /// the corrupted pointer is produced and will fault on use.
    fn authenticate(&self, pointer: u64, modifier: u64) -> Result<u64, Fault> {
        self.authenticate_with(PaKey::Ia, pointer, modifier)
    }

    fn authenticate_with(&self, key: PaKey, pointer: u64, modifier: u64) -> Result<u64, Fault> {
        match self.pa.aut(&self.keys, key, pointer, modifier) {
            Ok(p) => Ok(p),
            // Failures under glitched key registers are attributable to the
            // key material itself; surfacing them as a distinct fault keeps
            // chaos-campaign classification honest. (A strictly-more-
            // detectable simplification in error-bit mode, where hardware
            // would fault one use later.)
            Err(_) if self.keys_tainted => Err(Fault::KeyFault { pointer }),
            Err(err) => match self.pa.failure() {
                AuthFailure::Fault => Err(Fault::PacFault { pointer }),
                AuthFailure::ErrorBit => Ok(err.corrupted),
            },
        }
    }

    /// Executes one instruction — the interposition point for fault
    /// injection: a harness can perturb architectural state between any two
    /// retired instructions.
    ///
    /// Returns `Ok(None)` while the program is still running, or
    /// `Ok(Some(status))` on exit / unhandled syscall.
    ///
    /// # Errors
    ///
    /// Propagates any [`Fault`].
    pub fn step(&mut self) -> Result<Option<RunStatus>, Fault> {
        use Instruction::*;
        let insn = self.fetch()?;
        self.cycles += self.cost.cost(&insn);
        // Accesses through the shadow-stack pointer hit a distant region
        // with worse locality than the hot stack.
        if let Instruction::StrPost(_, base, _)
        | Instruction::LdrPre(_, base, _)
        | Instruction::Ldr(_, base, _)
        | Instruction::Str(_, base, _) = insn
        {
            if base == Reg::SCS {
                self.cycles += self.cost.shadow_penalty;
            }
        }
        self.instructions += 1;
        {
            use Instruction::*;
            if insn.is_pointer_auth() {
                self.counters.pointer_auth += 1;
            } else if insn.is_memory() {
                self.counters.memory += 1;
            } else if matches!(
                insn,
                B(..) | BCond(..) | Cbz(..) | Cbnz(..) | Bl(..) | Blr(..) | Br(..) | Ret
            ) {
                self.counters.branches += 1;
            } else {
                self.counters.other += 1;
            }
        }
        if let Some(trace) = &mut self.trace {
            trace.record(crate::trace::TraceEntry {
                pc: self.pc,
                insn,
                cycles: self.cycles,
            });
        }
        let mut next_pc = self.pc.wrapping_add(4);

        match insn {
            Mov(d, n) => self.regs.write(d, self.regs.read(n)),
            MovImm(d, imm) => self.regs.write(d, imm),
            Add(d, n, m) => {
                let v = self.regs.read(n).wrapping_add(self.regs.read(m));
                self.regs.write(d, v);
            }
            AddImm(d, n, imm) => {
                let v = self.regs.read(n).wrapping_add(imm as u64);
                self.regs.write(d, v);
            }
            Sub(d, n, m) => {
                let v = self.regs.read(n).wrapping_sub(self.regs.read(m));
                self.regs.write(d, v);
            }
            Mul(d, n, m) => {
                let v = self.regs.read(n).wrapping_mul(self.regs.read(m));
                self.regs.write(d, v);
            }
            Eor(d, n, m) => self.regs.write(d, self.regs.read(n) ^ self.regs.read(m)),
            EorImm(d, n, imm) => self.regs.write(d, self.regs.read(n) ^ imm),
            AndImm(d, n, imm) => self.regs.write(d, self.regs.read(n) & imm),
            LsrImm(d, n, s) => self.regs.write(d, self.regs.read(n) >> s),
            Cmp(n, m) => self.set_flags_from_cmp(self.regs.read(n), self.regs.read(m)),
            CmpImm(n, imm) => self.set_flags_from_cmp(self.regs.read(n), imm as u64),

            Ldr(t, n, off) => {
                let addr = self.regs.read(n).wrapping_add(off as u64);
                let v = self.mem.read_u64(addr)?;
                self.regs.write(t, v);
            }
            Str(t, n, off) => {
                let addr = self.regs.read(n).wrapping_add(off as u64);
                self.mem.write_u64(addr, self.regs.read(t))?;
            }
            LdrPost(t, n, off) => {
                let addr = self.regs.read(n);
                let v = self.mem.read_u64(addr)?;
                self.regs.write(t, v);
                self.regs.write(n, addr.wrapping_add(off as u64));
            }
            LdrPre(t, n, off) => {
                let addr = self.regs.read(n).wrapping_add(off as u64);
                let v = self.mem.read_u64(addr)?;
                self.regs.write(t, v);
                self.regs.write(n, addr);
            }
            StrPre(t, n, off) => {
                let addr = self.regs.read(n).wrapping_add(off as u64);
                self.mem.write_u64(addr, self.regs.read(t))?;
                self.regs.write(n, addr);
            }
            StrPost(t, n, off) => {
                let addr = self.regs.read(n);
                self.mem.write_u64(addr, self.regs.read(t))?;
                self.regs.write(n, addr.wrapping_add(off as u64));
            }
            Stp(t1, t2, n, off) => {
                let addr = self.regs.read(n).wrapping_add(off as u64);
                self.mem.write_u64(addr, self.regs.read(t1))?;
                self.mem
                    .write_u64(addr.wrapping_add(8), self.regs.read(t2))?;
            }
            Ldp(t1, t2, n, off) => {
                let addr = self.regs.read(n).wrapping_add(off as u64);
                let v1 = self.mem.read_u64(addr)?;
                let v2 = self.mem.read_u64(addr.wrapping_add(8))?;
                self.regs.write(t1, v1);
                self.regs.write(t2, v2);
            }

            B(target) => next_pc = target,
            BCond(cond, target) => {
                if self.flags.holds(cond) {
                    next_pc = target;
                }
            }
            Cbz(t, target) => {
                if self.regs.read(t) == 0 {
                    next_pc = target;
                }
            }
            Cbnz(t, target) => {
                if self.regs.read(t) != 0 {
                    next_pc = target;
                }
            }
            Bl(target) => {
                self.regs.write(Reg::LR, next_pc);
                next_pc = target;
            }
            Blr(n) => {
                let target = self.regs.read(n);
                self.check_branch_target(target)?;
                self.regs.write(Reg::LR, next_pc);
                next_pc = target;
            }
            Br(n) => {
                let target = self.regs.read(n);
                self.check_branch_target(target)?;
                next_pc = target;
            }
            Ret => next_pc = self.regs.read(Reg::LR),

            Pacia(d, n) => {
                let signed =
                    self.pa
                        .pac(&self.keys, PaKey::Ia, self.regs.read(d), self.regs.read(n));
                self.regs.write(d, signed);
            }
            Autia(d, n) => {
                let v = self.authenticate(self.regs.read(d), self.regs.read(n))?;
                self.regs.write(d, v);
            }
            Pacib(d, n) => {
                let signed =
                    self.pa
                        .pac(&self.keys, PaKey::Ib, self.regs.read(d), self.regs.read(n));
                self.regs.write(d, signed);
            }
            Autib(d, n) => {
                let v = self.authenticate_with(PaKey::Ib, self.regs.read(d), self.regs.read(n))?;
                self.regs.write(d, v);
            }
            Paciasp => {
                let (value, modifier) = (self.regs.read(Reg::LR), self.regs.read(Reg::Sp));
                self.log_pac(modifier, value);
                let signed = self.pa.pac(&self.keys, PaKey::Ia, value, modifier);
                self.regs.write(Reg::LR, signed);
            }
            Autiasp => {
                let v = self.authenticate(self.regs.read(Reg::LR), self.regs.read(Reg::Sp))?;
                self.regs.write(Reg::LR, v);
            }
            Retaa => {
                let v = self.authenticate(self.regs.read(Reg::LR), self.regs.read(Reg::Sp))?;
                self.regs.write(Reg::LR, v);
                next_pc = v;
            }
            Pacibsp => {
                let signed = self.pa.pac(
                    &self.keys,
                    PaKey::Ib,
                    self.regs.read(Reg::LR),
                    self.regs.read(Reg::Sp),
                );
                self.regs.write(Reg::LR, signed);
            }
            Retab => {
                let v = self.authenticate_with(
                    PaKey::Ib,
                    self.regs.read(Reg::LR),
                    self.regs.read(Reg::Sp),
                )?;
                self.regs.write(Reg::LR, v);
                next_pc = v;
            }
            Bti => {}
            Xpaci(d) => {
                let v = self.pa.strip(self.regs.read(d));
                self.regs.write(d, v);
            }
            Pacga(d, n, m) => {
                let v = self
                    .pa
                    .pacga(&self.keys, self.regs.read(n), self.regs.read(m));
                self.regs.write(d, v);
            }

            Svc(0) => {
                self.pc = next_pc;
                return Ok(Some(RunStatus::Exited(self.regs.read(Reg::X0))));
            }
            Svc(1) => {
                self.output.push(self.regs.read(Reg::X0));
            }
            Svc(imm) => {
                self.pc = next_pc;
                return Ok(Some(RunStatus::Syscall(imm)));
            }
            Nop => {}
        }

        self.pc = next_pc;
        Ok(None)
    }

    /// Runs until exit, an unhandled syscall, a fault, or `budget` retired
    /// instructions.
    ///
    /// # Errors
    ///
    /// Returns the [`Fault`] that terminated execution, or
    /// [`Fault::Timeout`] if the budget ran out.
    pub fn run(&mut self, budget: u64) -> Result<Outcome, Fault> {
        for _ in 0..budget {
            if let Some(status) = self.step()? {
                let exit_code = match status {
                    RunStatus::Exited(code) => code,
                    RunStatus::Syscall(_) => 0,
                };
                return Ok(Outcome {
                    exit_code,
                    status,
                    cycles: self.cycles,
                    instructions: self.instructions,
                });
            }
        }
        Err(Fault::Timeout)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use crate::program::Op;
    use crate::Instruction::*;

    fn run_program(p: Program) -> Result<Outcome, Fault> {
        Cpu::with_seed(p, 7).run(1_000_000)
    }

    #[test]
    fn exit_code_is_x0() {
        let mut p = Program::new();
        p.function("main", vec![MovImm(Reg::X0, 5), Ret]);
        assert_eq!(run_program(p).unwrap().exit_code, 5);
    }

    #[test]
    fn call_and_return_through_stack() {
        let mut p = Program::new();
        p.function_ops(
            "main",
            vec![
                Op::I(StrPre(Reg::X30, Reg::Sp, -16)),
                Op::I(MovImm(Reg::X0, 20)),
                Op::Call("add_one".into()),
                Op::Call("add_one".into()),
                Op::I(LdrPost(Reg::X30, Reg::Sp, 16)),
                Op::I(Ret),
            ],
        );
        p.function("add_one", vec![AddImm(Reg::X0, Reg::X0, 1), Ret]);
        assert_eq!(run_program(p).unwrap().exit_code, 22);
    }

    #[test]
    fn recursion_computes_factorial() {
        // fact(n): if n == 0 { 1 } else { n * fact(n-1) }
        let mut p = Program::new();
        p.function_ops(
            "main",
            vec![
                Op::I(StrPre(Reg::X30, Reg::Sp, -16)),
                Op::I(MovImm(Reg::X0, 5)),
                Op::Call("fact".into()),
                Op::I(LdrPost(Reg::X30, Reg::Sp, 16)),
                Op::I(Ret),
            ],
        );
        p.function_ops(
            "fact",
            vec![
                Op::JumpZero(Reg::X0, "base".into()),
                Op::I(Stp(Reg::X0, Reg::X30, Reg::Sp, -16)),
                Op::I(AddImm(Reg::Sp, Reg::Sp, -16)),
                Op::I(AddImm(Reg::X0, Reg::X0, -1)),
                Op::Call("fact".into()),
                Op::I(AddImm(Reg::Sp, Reg::Sp, 16)),
                Op::I(Ldp(Reg::X1, Reg::X30, Reg::Sp, -16)),
                Op::I(Mul(Reg::X0, Reg::X0, Reg::X1)),
                Op::I(Ret),
                Op::Label("base".into()),
                Op::I(MovImm(Reg::X0, 1)),
                Op::I(Ret),
            ],
        );
        assert_eq!(run_program(p).unwrap().exit_code, 120);
    }

    #[test]
    fn indirect_call_via_blr() {
        let mut p = Program::new();
        p.function_ops(
            "main",
            vec![
                Op::I(StrPre(Reg::X30, Reg::Sp, -16)),
                Op::FnAddr(Reg::X9, "forty".into()),
                Op::I(Blr(Reg::X9)),
                Op::I(LdrPost(Reg::X30, Reg::Sp, 16)),
                Op::I(Ret),
            ],
        );
        p.function("forty", vec![MovImm(Reg::X0, 40), Ret]);
        assert_eq!(run_program(p).unwrap().exit_code, 40);
    }

    #[test]
    fn tail_call_returns_to_original_caller() {
        let mut p = Program::new();
        p.function_ops(
            "main",
            vec![
                Op::I(StrPre(Reg::X30, Reg::Sp, -16)),
                Op::Call("outer".into()),
                Op::I(LdrPost(Reg::X30, Reg::Sp, 16)),
                Op::I(Ret),
            ],
        );
        p.function_ops("outer", vec![Op::TailCall("inner".into())]);
        p.function("inner", vec![MovImm(Reg::X0, 9), Ret]);
        assert_eq!(run_program(p).unwrap().exit_code, 9);
    }

    #[test]
    fn pac_ret_round_trip_succeeds() {
        let mut p = Program::new();
        p.function(
            "main",
            vec![
                Paciasp,
                StrPre(Reg::X30, Reg::Sp, -16),
                MovImm(Reg::X0, 3),
                LdrPost(Reg::X30, Reg::Sp, 16),
                Retaa,
            ],
        );
        assert_eq!(run_program(p).unwrap().exit_code, 3);
    }

    #[test]
    fn classic_rop_overwrite_succeeds_without_protection() {
        // Without PA, overwriting the spilled LR redirects the return: the
        // attack the whole paper is about. "gadget" exits with 0x41.
        let mut p = Program::new();
        p.function_ops(
            "main",
            vec![
                Op::I(StrPre(Reg::X30, Reg::Sp, -16)),
                // Attacker overwrite of the stack slot, modelled in-program:
                Op::FnAddr(Reg::X9, "gadget".into()),
                Op::I(Str(Reg::X9, Reg::Sp, 0)),
                Op::I(LdrPost(Reg::X30, Reg::Sp, 16)),
                Op::I(Ret),
            ],
        );
        p.function("gadget", vec![MovImm(Reg::X0, 0x41), Svc(0)]);
        assert_eq!(run_program(p).unwrap().exit_code, 0x41);
    }

    #[test]
    fn corrupted_pac_ret_faults_at_fetch() {
        let mut p = Program::new();
        p.function(
            "main",
            vec![
                Paciasp,
                StrPre(Reg::X30, Reg::Sp, -16),
                LdrPost(Reg::X30, Reg::Sp, 16),
                EorImm(Reg::X30, Reg::X30, 16), // tamper with the address bits
                Retaa,
            ],
        );
        assert!(matches!(
            run_program(p),
            Err(Fault::TranslationFault { .. })
        ));
    }

    #[test]
    fn corrupted_keys_raise_key_fault() {
        // Sign under the real keys, glitch the key registers, authenticate:
        // the mismatch is attributed to the keys, not a forged pointer.
        let mut p = Program::new();
        p.function(
            "main",
            vec![Paciasp, Svc(40), Retaa], // svc #40: harness corrupts keys
        );
        let mut cpu = Cpu::with_seed(p, 7);
        let out = cpu.run(100).unwrap();
        assert_eq!(out.status, RunStatus::Syscall(40));
        cpu.corrupt_keys(PaKeys::from_seed(999));
        assert!(cpu.keys_tainted());
        assert!(matches!(cpu.run(100), Err(Fault::KeyFault { .. })));
    }

    #[test]
    fn rekeying_clears_key_taint() {
        let mut p = Program::new();
        p.function("main", vec![MovImm(Reg::X0, 0), Ret]);
        let mut cpu = Cpu::with_seed(p, 7);
        cpu.corrupt_keys(PaKeys::from_seed(999));
        cpu.set_keys(PaKeys::from_seed(7));
        assert!(!cpu.keys_tainted());
    }

    #[test]
    fn try_with_seed_reports_link_errors() {
        let mut p = Program::new();
        p.function_ops("main", vec![Op::Call("ghost".into())]);
        assert!(matches!(
            Cpu::try_with_seed(p, 7),
            Err(LinkError::UnresolvedFunction { .. })
        ));
    }

    #[test]
    fn fpac_faults_inside_autia() {
        let mut p = Program::new();
        p.function("main", vec![Paciasp, EorImm(Reg::X30, Reg::X30, 16), Retaa]);
        let mut cpu = Cpu::with_seed(p, 7);
        cpu.enable_fpac();
        assert!(matches!(cpu.run(100), Err(Fault::PacFault { .. })));
    }

    #[test]
    fn svc1_emits_output() {
        let mut p = Program::new();
        p.function(
            "main",
            vec![
                MovImm(Reg::X0, 10),
                Svc(1),
                MovImm(Reg::X0, 20),
                Svc(1),
                MovImm(Reg::X0, 0),
                Ret,
            ],
        );
        let mut cpu = Cpu::with_seed(p, 7);
        cpu.run(1000).unwrap();
        assert_eq!(cpu.output(), &[10, 20]);
    }

    #[test]
    fn foreign_syscall_suspends_to_caller() {
        let mut p = Program::new();
        p.function("main", vec![Svc(42), MovImm(Reg::X0, 1), Ret]);
        let mut cpu = Cpu::with_seed(p, 7);
        let out = cpu.run(100).unwrap();
        assert_eq!(out.status, RunStatus::Syscall(42));
        // Resumable: continues after the svc.
        let out = cpu.run(100).unwrap();
        assert_eq!(out.exit_code, 1);
    }

    #[test]
    fn budget_exhaustion_reports_timeout() {
        let mut p = Program::new();
        p.function_ops(
            "main",
            vec![Op::Label("spin".into()), Op::Jump("spin".into())],
        );
        assert_eq!(Cpu::with_seed(p, 7).run(1000), Err(Fault::Timeout));
    }

    #[test]
    fn cycles_accumulate_per_cost_model() {
        let mut p = Program::new();
        p.function(
            "main",
            vec![Paciasp, Xpaci(Reg::X30), MovImm(Reg::X0, 0), Ret],
        );
        let mut cpu = Cpu::with_seed(p, 7);
        let out = cpu.run(100).unwrap();
        // bl(1) + paciasp(4) + xpaci(4) + mov(1) + ret(1) + svc(200)
        assert_eq!(out.cycles, 211);
        assert_eq!(out.instructions, 6);
    }

    #[test]
    fn conditional_branches_follow_flags() {
        let mut p = Program::new();
        p.function_ops(
            "main",
            vec![
                Op::I(MovImm(Reg::X0, 0)),
                Op::I(MovImm(Reg::X1, 3)),
                Op::Label("loop".into()),
                Op::I(AddImm(Reg::X0, Reg::X0, 2)),
                Op::I(AddImm(Reg::X1, Reg::X1, -1)),
                Op::I(CmpImm(Reg::X1, 0)),
                Op::JumpCond(Cond::Ne, "loop".into()),
                Op::I(Ret),
            ],
        );
        assert_eq!(run_program(p).unwrap().exit_code, 6);
    }

    #[test]
    fn signed_and_unsigned_conditions() {
        // -1 (as u64::MAX) vs 1: signed less-than, unsigned higher-or-same.
        let mut p = Program::new();
        p.function_ops(
            "main",
            vec![
                Op::I(MovImm(Reg::X2, u64::MAX)),
                Op::I(CmpImm(Reg::X2, 1)),
                Op::JumpCond(Cond::Lt, "signed_lt".into()),
                Op::I(MovImm(Reg::X0, 1)),
                Op::I(Ret),
                Op::Label("signed_lt".into()),
                Op::I(CmpImm(Reg::X2, 1)),
                Op::JumpCond(Cond::Hs, "uns_hs".into()),
                Op::I(MovImm(Reg::X0, 2)),
                Op::I(Ret),
                Op::Label("uns_hs".into()),
                Op::I(MovImm(Reg::X0, 0)),
                Op::I(Ret),
            ],
        );
        assert_eq!(run_program(p).unwrap().exit_code, 0);
    }
}
