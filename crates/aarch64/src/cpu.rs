//! The CPU interpreter.

use crate::memory::LAYOUT;
use crate::profile::{FunctionProfile, Profiler};
use crate::program::LinkError;
use crate::regs::RegisterFile;
use crate::trace::TraceEntry;
use crate::{Cond, CostModel, Fault, Instruction, Memory, Program, Reg};
use pacstack_pauth::{AuthFailure, PaKey, PaKeys, PointerAuth, VaLayout};
use pacstack_telemetry as telemetry;
use pacstack_telemetry::Ring;
use std::collections::HashMap;

/// NZCV condition flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct Flags {
    n: bool,
    z: bool,
    c: bool,
    v: bool,
}

impl Flags {
    fn holds(&self, cond: Cond) -> bool {
        match cond {
            Cond::Eq => self.z,
            Cond::Ne => !self.z,
            Cond::Lo => !self.c,
            Cond::Hs => self.c,
            Cond::Lt => self.n != self.v,
            Cond::Ge => self.n == self.v,
        }
    }
}

/// A saved user-space execution context (`struct cpu_context` in Linux).
///
/// Produced by [`Cpu::save_context`] during a modelled context switch or
/// signal delivery. Its fields are private and it lives *outside* the
/// simulated [`Memory`](crate::Memory): this is the paper's §5.4 argument —
/// CR and LR of a non-executing task sit in kernel-owned storage the
/// adversary cannot reach.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Context {
    regs: RegisterFile,
    pc: u64,
    flags: Flags,
}

impl Context {
    /// Reads one register from the saved context (kernel/harness use).
    pub fn reg(&self, reg: Reg) -> u64 {
        self.regs.read(reg)
    }

    /// The saved program counter.
    pub fn pc(&self) -> u64 {
        self.pc
    }
}

/// Why [`Cpu::run`] stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunStatus {
    /// The program exited via `svc #0`; carries `X0`.
    Exited(u64),
    /// An `svc` the CPU does not service internally; the kernel model (or
    /// test harness) should handle it and resume.
    Syscall(u16),
}

/// Retired-instruction counters by class — the "added instructions"
/// accounting the paper's §7.1 discussion rests on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InsnCounters {
    /// Pointer-authentication instructions (`pacia`, `autia`, `retaa`, ...).
    pub pointer_auth: u64,
    /// Loads/stores (pairs count once).
    pub memory: u64,
    /// Taken and untaken branches, calls and returns.
    pub branches: u64,
    /// Everything else (ALU, moves, system).
    pub other: u64,
}

impl InsnCounters {
    /// Total retired instructions.
    pub fn total(&self) -> u64 {
        self.pointer_auth + self.memory + self.branches + self.other
    }
}

/// The result of a completed run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outcome {
    /// Exit code (`X0` at `svc #0`); zero if stopped by a foreign syscall.
    pub exit_code: u64,
    /// Why execution stopped.
    pub status: RunStatus,
    /// Total simulated cycles so far (cumulative across resumed runs).
    pub cycles: u64,
    /// Total retired instructions so far.
    pub instructions: u64,
}

/// The simulated CPU: register file, PC, flags, memory, PA unit and cost
/// accounting.
///
/// # Examples
///
/// One slot of the direct-mapped PAC memo cache: the last MAC computed for a
/// `(key, canonical pointer, modifier)` triple that hashed to this index.
///
/// `epoch` tags the entry with the value of [`Cpu`]'s key epoch at fill time;
/// `0` never matches a live epoch, so zeroed slots are empty. The epoch (not
/// the key material) is what invalidates the whole cache on `set_keys` /
/// `corrupt_keys` in O(1), including the case where the new `PaKeys` happens
/// to carry the same generation counter as the old one.
#[derive(Debug, Clone, Copy, Default)]
struct PacSlot {
    epoch: u64,
    key: u8,
    pointer: u64,
    modifier: u64,
    pac: u64,
}

/// Number of slots in the PAC memo cache. Direct-mapped; 256 slots cover the
/// working set of return-address signatures for call depths far beyond what
/// the workloads reach, at ~10 KiB per CPU.
const PAC_CACHE_SLOTS: usize = 256;

/// Cache tag for `pacga` entries. `pacga` truncates differently from the
/// pointer PACs (upper 32 bits, not `pac_bits`), so its entries must never
/// alias a hypothetical pointer-PAC under the GA key (tag 4).
const PACGA_TAG: u8 = 5;

fn pac_slot_index(key_tag: u8, pointer: u64, modifier: u64) -> usize {
    let mixed =
        (pointer ^ modifier.rotate_left(32) ^ key_tag as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    (mixed >> 56) as usize
}

fn pac_key_tag(key: PaKey) -> u8 {
    match key {
        PaKey::Ia => 0,
        PaKey::Ib => 1,
        PaKey::Da => 2,
        PaKey::Db => 3,
        PaKey::Ga => 4,
    }
}

/// A return-address overwrite faulting under `retaa` (pac-ret):
///
/// ```
/// use pacstack_aarch64::{Cpu, Fault, Instruction::*, Program, Reg};
///
/// let mut p = Program::new();
/// p.function("main", vec![
///     Paciasp,                       // sign LR with SP
///     StrPre(Reg::X30, Reg::Sp, -16),// spill
///     LdrPost(Reg::X30, Reg::Sp, 16),// reload
///     EorImm(Reg::X30, Reg::X30, 8), // "attacker" redirects the return
///     Retaa,                         // authenticate + return
/// ]);
/// let mut cpu = Cpu::with_seed(p, 1);
/// assert!(matches!(cpu.run(100), Err(Fault::TranslationFault { .. })));
/// ```
#[derive(Debug)]
pub struct Cpu {
    regs: RegisterFile,
    pc: u64,
    flags: Flags,
    mem: Memory,
    image: Vec<Instruction>,
    code_base: u64,
    symbols: HashMap<String, u64>,
    pa: PointerAuth,
    keys: PaKeys,
    /// Set when the key registers were corrupted out-of-band (fault
    /// injection); lets authentication failures surface as
    /// [`Fault::KeyFault`] instead of a generic mismatch.
    keys_tainted: bool,
    /// Direct-mapped memo of recently computed PACs; see [`PacSlot`].
    pac_cache: Box<[PacSlot; PAC_CACHE_SLOTS]>,
    /// Monotonic key epoch, starting at 1 and bumped on *every* key-register
    /// write — legitimate (`set_keys`) or glitched (`corrupt_keys`) — so a
    /// key change can never be answered from a stale [`PacSlot`].
    key_epoch: u64,
    /// Whether the PAC memo cache is consulted at all. Disabled when
    /// `PACSTACK_REFERENCE_PAC` pins the process to the pre-optimisation
    /// pipeline, and togglable for differential testing and benchmarking.
    pac_memo: bool,
    /// `(hits, misses)` on the PAC memo cache, for the perf harness.
    pac_cache_stats: (u64, u64),
    cost: CostModel,
    cycles: u64,
    instructions: u64,
    counters: InsnCounters,
    /// Memory accesses through the shadow-stack pointer (always counted,
    /// like `pac_cache_stats`; the cycle surcharge itself is part of
    /// [`CostModel::cost`]).
    shadow_accesses: u64,
    output: Vec<u64>,
    trace: Option<Ring<TraceEntry>>,
    profiler: Option<Box<Profiler>>,
    /// Watermark of what [`Cpu::publish_telemetry`] has already emitted, so
    /// resumed runs publish deltas exactly once.
    tmark: TelemetryMark,
    pac_log: Option<Vec<(u64, u64)>>,
    bti: bool,
}

/// Snapshot of the monotonic performance counters at the last telemetry
/// publish.
#[derive(Debug, Clone, Copy, Default)]
struct TelemetryMark {
    cycles: u64,
    instructions: u64,
    counters: InsnCounters,
    pac_hits: u64,
    pac_misses: u64,
    shadow_accesses: u64,
}

// Manual impl so snapshot restores can reuse allocations: `clone_from`
// copies the memory image, instruction image and PAC memo into the buffers
// the destination already owns. Fault-injection campaigns restore a base
// snapshot before every trial, and with the derived impl that restore cost
// was dominated by mapping and unmapping the ~3 MiB of fresh segments.
// Every field must appear in BOTH methods; the struct-literal `clone`
// keeps the list compiler-checked when fields are added.
impl Clone for Cpu {
    fn clone(&self) -> Self {
        Self {
            regs: self.regs.clone(),
            pc: self.pc,
            flags: self.flags,
            mem: self.mem.clone(),
            image: self.image.clone(),
            code_base: self.code_base,
            symbols: self.symbols.clone(),
            pa: self.pa,
            keys: self.keys.clone(),
            keys_tainted: self.keys_tainted,
            pac_cache: self.pac_cache.clone(),
            key_epoch: self.key_epoch,
            pac_memo: self.pac_memo,
            pac_cache_stats: self.pac_cache_stats,
            cost: self.cost,
            cycles: self.cycles,
            instructions: self.instructions,
            counters: self.counters,
            shadow_accesses: self.shadow_accesses,
            output: self.output.clone(),
            trace: self.trace.clone(),
            profiler: self.profiler.clone(),
            tmark: self.tmark,
            pac_log: self.pac_log.clone(),
            bti: self.bti,
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.regs.clone_from(&source.regs);
        self.pc = source.pc;
        self.flags = source.flags;
        self.mem.clone_from(&source.mem);
        self.image.clone_from(&source.image);
        self.code_base = source.code_base;
        self.symbols.clone_from(&source.symbols);
        self.pa = source.pa;
        self.keys.clone_from(&source.keys);
        self.keys_tainted = source.keys_tainted;
        self.pac_cache.clone_from(&source.pac_cache);
        self.key_epoch = source.key_epoch;
        self.pac_memo = source.pac_memo;
        self.pac_cache_stats = source.pac_cache_stats;
        self.cost = source.cost;
        self.cycles = source.cycles;
        self.instructions = source.instructions;
        self.counters = source.counters;
        self.shadow_accesses = source.shadow_accesses;
        self.output.clone_from(&source.output);
        self.trace.clone_from(&source.trace);
        self.profiler.clone_from(&source.profiler);
        self.tmark = source.tmark;
        self.pac_log.clone_from(&source.pac_log);
        self.bti = source.bti;
    }
}

impl Cpu {
    /// Builds a CPU for `program` with PA keys derived from `seed`, the
    /// standard memory layout and the default cost model.
    ///
    /// # Panics
    ///
    /// Panics if the program does not link; use [`Cpu::try_with_seed`] to
    /// handle malformed programs as data.
    pub fn with_seed(program: Program, seed: u64) -> Self {
        match Self::try_with_seed(program, seed) {
            Ok(cpu) => cpu,
            Err(e) => panic!("program does not link: {e}"),
        }
    }

    /// Fallible variant of [`Cpu::with_seed`].
    ///
    /// # Errors
    ///
    /// Returns the [`LinkError`] if the program does not assemble.
    pub fn try_with_seed(program: Program, seed: u64) -> Result<Self, LinkError> {
        Self::try_with_parts(
            program,
            PaKeys::from_seed(seed),
            PointerAuth::new(VaLayout::default()),
            CostModel::default(),
        )
    }

    /// Builds a CPU with explicit keys, PA configuration and cost model.
    ///
    /// # Panics
    ///
    /// Panics if the program does not link; use [`Cpu::try_with_parts`] to
    /// handle malformed programs as data.
    pub fn with_parts(program: Program, keys: PaKeys, pa: PointerAuth, cost: CostModel) -> Self {
        match Self::try_with_parts(program, keys, pa, cost) {
            Ok(cpu) => cpu,
            Err(e) => panic!("program does not link: {e}"),
        }
    }

    /// Fallible variant of [`Cpu::with_parts`] — the entry point for
    /// harnesses (fault injection, fuzzing) that must never abort the host
    /// process on a malformed program.
    ///
    /// # Errors
    ///
    /// Returns the [`LinkError`] if the program does not assemble.
    pub fn try_with_parts(
        program: Program,
        keys: PaKeys,
        pa: PointerAuth,
        cost: CostModel,
    ) -> Result<Self, LinkError> {
        let image = program.assemble(LAYOUT.code_base)?;
        let mut regs = RegisterFile::new();
        regs.write(Reg::Sp, LAYOUT.stack_top - 16);
        regs.write(Reg::SCS, LAYOUT.shadow_stack_base);
        Ok(Self {
            regs,
            pc: image.entry,
            flags: Flags::default(),
            mem: Memory::with_standard_layout(),
            image: image.instructions,
            code_base: LAYOUT.code_base,
            symbols: image.symbols,
            pa,
            keys,
            keys_tainted: false,
            pac_cache: Box::new([PacSlot::default(); PAC_CACHE_SLOTS]),
            key_epoch: 1,
            pac_memo: !pacstack_pauth::reference_pac_forced(),
            pac_cache_stats: (0, 0),
            cost,
            cycles: 0,
            instructions: 0,
            counters: InsnCounters::default(),
            shadow_accesses: 0,
            output: Vec::new(),
            trace: None,
            profiler: None,
            tmark: TelemetryMark::default(),
            pac_log: None,
            bti: false,
        })
    }

    /// Switches the PA unit to ARMv8.6-A FPAC semantics (fault on `aut*`).
    pub fn enable_fpac(&mut self) {
        self.pa = PointerAuth::with_failure(self.pa.layout(), AuthFailure::Fault);
    }

    /// Enables branch-target-indicator enforcement (ARMv8.5-A BTI): every
    /// indirect branch (`blr`/`br`) must land on a function entry or an
    /// explicit `bti` landing pad. This is one concrete way of satisfying
    /// the paper's assumption A2 (coarse-grained forward-edge CFI).
    pub fn enable_bti(&mut self) {
        self.bti = true;
    }

    fn check_branch_target(&self, target: u64) -> Result<(), Fault> {
        if !self.bti {
            return Ok(());
        }
        let is_entry = self.symbols.values().any(|&addr| addr == target);
        let is_pad = matches!(self.instruction_at(target), Some(Instruction::Bti));
        if is_entry || is_pad {
            Ok(())
        } else {
            Err(Fault::FetchFault { pc: target })
        }
    }

    /// Reads a register.
    pub fn reg(&self, reg: Reg) -> u64 {
        self.regs.read(reg)
    }

    /// Writes a register (trusted-harness access; user code cannot do this).
    pub fn set_reg(&mut self, reg: Reg, value: u64) {
        self.regs.write(reg, value);
    }

    /// The current program counter.
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// Redirects execution (kernel/harness use: signal delivery, resume).
    pub fn set_pc(&mut self, pc: u64) {
        self.pc = pc;
    }

    /// The process memory — also the adversary's read/write surface.
    pub fn mem(&self) -> &Memory {
        &self.mem
    }

    /// Mutable memory access (adversary primitive or kernel use).
    pub fn mem_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// The PA unit.
    pub fn pa(&self) -> &PointerAuth {
        &self.pa
    }

    /// The process PA keys (kernel-owned; not reachable from simulated code).
    pub fn keys(&self) -> &PaKeys {
        &self.keys
    }

    /// Replaces the PA keys, as the kernel does on `exec`. Legitimate
    /// kernel re-keying clears any corruption taint.
    pub fn set_keys(&mut self, keys: PaKeys) {
        self.keys = keys;
        self.keys_tainted = false;
        self.key_epoch += 1;
    }

    /// Overwrites the PA keys *as a fault*, not as kernel policy: models a
    /// glitch on the key registers. Subsequent authentication failures
    /// surface as [`Fault::KeyFault`] so campaigns can attribute the
    /// mismatch to key corruption rather than a forged pointer.
    pub fn corrupt_keys(&mut self, keys: PaKeys) {
        self.keys = keys;
        self.keys_tainted = true;
        // A glitch invalidates the memo exactly like a re-key: any PAC cached
        // under the old keys must recompute, so post-corruption `aut*` fails
        // against the *new* (wrong) keys and is attributed as a KeyFault
        // rather than silently passing off a stale cached MAC.
        self.key_epoch += 1;
    }

    /// Whether the PA keys were corrupted via [`Cpu::corrupt_keys`] and not
    /// yet legitimately replaced.
    pub fn keys_tainted(&self) -> bool {
        self.keys_tainted
    }

    /// Address of a function, if defined.
    pub fn symbol(&self, name: &str) -> Option<u64> {
        self.symbols.get(name).copied()
    }

    /// Saves the user-visible execution state into kernel-private storage,
    /// as `kernel_entry` does on EL0→EL1 transitions (paper §5.4).
    pub fn save_context(&self) -> Context {
        Context {
            regs: self.regs.clone(),
            pc: self.pc,
            flags: self.flags,
        }
    }

    /// Restores a previously saved context.
    pub fn restore_context(&mut self, ctx: &Context) {
        self.regs = ctx.regs.clone();
        self.pc = ctx.pc;
        self.flags = ctx.flags;
    }

    /// Cycles consumed so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Instructions retired so far.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Retired-instruction counters by class.
    pub fn counters(&self) -> InsnCounters {
        self.counters
    }

    /// Values emitted via `svc #1`.
    pub fn output(&self) -> &[u64] {
        &self.output
    }

    /// The instruction at a code address, if the address is mapped
    /// executable — the disassembler's entry point.
    pub fn instruction_at(&self, pc: u64) -> Option<Instruction> {
        if self.mem.check_execute(pc).is_err() {
            return None;
        }
        let idx = (pc - self.code_base) / 4;
        self.image.get(idx as usize).copied()
    }

    /// Enables execution tracing into a ring buffer of `capacity` entries.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(Ring::new(capacity));
    }

    /// The execution trace, if tracing is enabled.
    pub fn trace(&self) -> Option<&Ring<TraceEntry>> {
        self.trace.as_ref()
    }

    /// Enables per-function cycle attribution, rooted at the current PC.
    /// Completed call spans beyond `max_spans` are counted as dropped
    /// rather than recorded, bounding memory on call-heavy workloads.
    pub fn enable_profile(&mut self, max_spans: usize) {
        self.profiler = Some(Box::new(Profiler::new(self.pc, self.cycles, max_spans)));
    }

    /// Finishes profiling and returns the attribution, or `None` if
    /// [`Cpu::enable_profile`] was never called. Open frames are closed at
    /// the current cycle count and addresses resolve via the symbol table.
    pub fn take_profile(&mut self) -> Option<FunctionProfile> {
        let profiler = self.profiler.take()?;
        Some(profiler.finish(self.cycles, &self.symbols))
    }

    /// Memory accesses made through the shadow-stack pointer so far.
    pub fn shadow_accesses(&self) -> u64 {
        self.shadow_accesses
    }

    /// Starts recording every return-address *signing* event as a
    /// `(modifier, stripped pointer)` pair — the raw material of the
    /// paper's §6.1 reuse analysis: two events with equal modifiers but
    /// different pointers are interchangeable signed pointers.
    pub fn enable_pac_log(&mut self) {
        self.pac_log = Some(Vec::new());
    }

    /// The recorded signing events, if logging is enabled.
    pub fn pac_log(&self) -> Option<&[(u64, u64)]> {
        self.pac_log.as_deref()
    }

    fn log_pac(&mut self, modifier: u64, pointer: u64) {
        let stripped = self.pa.strip(pointer);
        if let Some(log) = &mut self.pac_log {
            log.push((modifier, stripped));
        }
    }

    fn fetch(&self) -> Result<Instruction, Fault> {
        self.mem.check_execute(self.pc)?;
        let idx = (self.pc - self.code_base) / 4;
        self.image
            .get(idx as usize)
            .copied()
            .ok_or(Fault::FetchFault { pc: self.pc })
    }

    fn set_flags_from_cmp(&mut self, a: u64, b: u64) {
        let (result, borrow) = a.overflowing_sub(b);
        self.flags.n = (result >> 63) & 1 == 1;
        self.flags.z = result == 0;
        self.flags.c = !borrow;
        self.flags.v = ((a ^ b) & (a ^ result)) >> 63 == 1;
    }

    /// Enables or disables the PAC memo cache. Architecturally invisible:
    /// the cache only ever replays MACs the PA unit would recompute
    /// identically, so outcomes, outputs and cycle counts do not depend on
    /// this switch — a property the test suite pins differentially.
    pub fn set_pac_memo(&mut self, enabled: bool) {
        self.pac_memo = enabled;
        if !enabled {
            *self.pac_cache = [PacSlot::default(); PAC_CACHE_SLOTS];
        }
    }

    /// `(hits, misses)` recorded by the PAC memo cache since construction.
    pub fn pac_cache_stats(&self) -> (u64, u64) {
        self.pac_cache_stats
    }

    /// The raw PAC for `(key, pointer, modifier)`, answered from the memo
    /// cache when possible. Entries are keyed on the canonical address (PAC
    /// field stripped), so `pac*` followed by `aut*` of the signed pointer is
    /// a hit, and tagged with the key epoch so no key write can be bridged.
    fn cached_pac(&mut self, key: PaKey, pointer: u64, modifier: u64) -> u64 {
        if !self.pac_memo {
            return self.pa.compute_pac(&self.keys, key, pointer, modifier);
        }
        let canonical = self.pa.strip(pointer);
        let tag = pac_key_tag(key);
        let idx = pac_slot_index(tag, canonical, modifier);
        let slot = &self.pac_cache[idx];
        if slot.epoch == self.key_epoch
            && slot.key == tag
            && slot.pointer == canonical
            && slot.modifier == modifier
        {
            self.pac_cache_stats.0 += 1;
            return slot.pac;
        }
        self.pac_cache_stats.1 += 1;
        let pac = self.pa.compute_pac(&self.keys, key, canonical, modifier);
        self.pac_cache[idx] = PacSlot {
            epoch: self.key_epoch,
            key: tag,
            pointer: canonical,
            modifier,
            pac,
        };
        pac
    }

    /// `pacga` through the memo cache. Uses a tag outside the key-register
    /// range because `pacga` hashes the full 64-bit operand (no
    /// canonicalisation) and truncates to the upper 32 bits.
    fn cached_pacga(&mut self, x: u64, y: u64) -> u64 {
        if !self.pac_memo {
            return self.pa.pacga(&self.keys, x, y);
        }
        let idx = pac_slot_index(PACGA_TAG, x, y);
        let slot = &self.pac_cache[idx];
        if slot.epoch == self.key_epoch
            && slot.key == PACGA_TAG
            && slot.pointer == x
            && slot.modifier == y
        {
            self.pac_cache_stats.0 += 1;
            return slot.pac;
        }
        self.pac_cache_stats.1 += 1;
        let pac = self.pa.pacga(&self.keys, x, y);
        self.pac_cache[idx] = PacSlot {
            epoch: self.key_epoch,
            key: PACGA_TAG,
            pointer: x,
            modifier: y,
            pac,
        };
        pac
    }

    /// `pac*`-style signing through the memo cache: compute (or replay) the
    /// MAC, then insert it with the architectural poison-bit semantics.
    fn sign_with(&mut self, key: PaKey, pointer: u64, modifier: u64) -> u64 {
        let pac = self.cached_pac(key, pointer, modifier);
        self.pa.sign_with_pac(pac, pointer)
    }

    /// Performs an `aut*`-style authentication, honouring the configured
    /// failure mode: in FPAC mode a failure faults immediately; otherwise
    /// the corrupted pointer is produced and will fault on use.
    fn authenticate(&mut self, pointer: u64, modifier: u64) -> Result<u64, Fault> {
        self.authenticate_with(PaKey::Ia, pointer, modifier)
    }

    fn authenticate_with(&mut self, key: PaKey, pointer: u64, modifier: u64) -> Result<u64, Fault> {
        let expected = self.cached_pac(key, pointer, modifier);
        match self.pa.verify_with_pac(expected, pointer, key) {
            Ok(p) => Ok(p),
            // Failures under glitched key registers are attributable to the
            // key material itself; surfacing them as a distinct fault keeps
            // chaos-campaign classification honest. (A strictly-more-
            // detectable simplification in error-bit mode, where hardware
            // would fault one use later.)
            Err(_) if self.keys_tainted => Err(Fault::KeyFault { pointer }),
            Err(err) => match self.pa.failure() {
                AuthFailure::Fault => Err(Fault::PacFault { pointer }),
                AuthFailure::ErrorBit => Ok(err.corrupted),
            },
        }
    }

    /// Executes one instruction — the interposition point for fault
    /// injection: a harness can perturb architectural state between any two
    /// retired instructions.
    ///
    /// Returns `Ok(None)` while the program is still running, or
    /// `Ok(Some(status))` on exit / unhandled syscall.
    ///
    /// # Errors
    ///
    /// Propagates any [`Fault`].
    pub fn step(&mut self) -> Result<Option<RunStatus>, Fault> {
        use Instruction::*;
        let insn = self.fetch()?;
        self.cycles += self.cost.cost(&insn);
        self.instructions += 1;
        {
            use Instruction::*;
            if insn.is_pointer_auth() {
                self.counters.pointer_auth += 1;
            } else if insn.is_memory() {
                self.counters.memory += 1;
            } else if matches!(
                insn,
                B(..) | BCond(..) | Cbz(..) | Cbnz(..) | Bl(..) | Blr(..) | Br(..) | Ret
            ) {
                self.counters.branches += 1;
            } else {
                self.counters.other += 1;
            }
        }
        if let Some(trace) = &mut self.trace {
            trace.record(TraceEntry {
                pc: self.pc,
                insn,
                cycles: self.cycles,
            });
        }
        if let Some(prof) = &mut self.profiler {
            // Attribute this instruction's (fully charged) cost to the
            // frame that issued it, then move the frame stack: calls are
            // charged to the caller, returns to the returning function.
            prof.attribute(self.cycles);
            match insn {
                Bl(target) => prof.enter(target, self.cycles),
                Blr(n) => {
                    let target = self.regs.read(n);
                    prof.enter(target, self.cycles);
                }
                Ret | Retaa | Retab => prof.exit(self.cycles),
                _ => {}
            }
        }
        let mut next_pc = self.pc.wrapping_add(4);

        match insn {
            Mov(d, n) => self.regs.write(d, self.regs.read(n)),
            MovImm(d, imm) => self.regs.write(d, imm),
            Add(d, n, m) => {
                let v = self.regs.read(n).wrapping_add(self.regs.read(m));
                self.regs.write(d, v);
            }
            AddImm(d, n, imm) => {
                let v = self.regs.read(n).wrapping_add(imm as u64);
                self.regs.write(d, v);
            }
            Sub(d, n, m) => {
                let v = self.regs.read(n).wrapping_sub(self.regs.read(m));
                self.regs.write(d, v);
            }
            Mul(d, n, m) => {
                let v = self.regs.read(n).wrapping_mul(self.regs.read(m));
                self.regs.write(d, v);
            }
            Eor(d, n, m) => self.regs.write(d, self.regs.read(n) ^ self.regs.read(m)),
            EorImm(d, n, imm) => self.regs.write(d, self.regs.read(n) ^ imm),
            AndImm(d, n, imm) => self.regs.write(d, self.regs.read(n) & imm),
            LsrImm(d, n, s) => self.regs.write(d, self.regs.read(n) >> s),
            Cmp(n, m) => self.set_flags_from_cmp(self.regs.read(n), self.regs.read(m)),
            CmpImm(n, imm) => self.set_flags_from_cmp(self.regs.read(n), imm as u64),

            Ldr(t, n, off) => {
                // Accesses through the shadow-stack pointer hit a distant
                // region with worse locality than the hot stack; the cycle
                // surcharge is part of `CostModel::cost` (charged at fetch,
                // even if the access then faults), so here we only count.
                if n == Reg::SCS {
                    self.shadow_accesses += 1;
                }
                let addr = self.regs.read(n).wrapping_add(off as u64);
                let v = self.mem.read_u64(addr)?;
                self.regs.write(t, v);
            }
            Str(t, n, off) => {
                if n == Reg::SCS {
                    self.shadow_accesses += 1;
                }
                let addr = self.regs.read(n).wrapping_add(off as u64);
                self.mem.write_u64(addr, self.regs.read(t))?;
            }
            LdrPost(t, n, off) => {
                let addr = self.regs.read(n);
                let v = self.mem.read_u64(addr)?;
                self.regs.write(t, v);
                self.regs.write(n, addr.wrapping_add(off as u64));
            }
            LdrPre(t, n, off) => {
                if n == Reg::SCS {
                    self.shadow_accesses += 1;
                }
                let addr = self.regs.read(n).wrapping_add(off as u64);
                let v = self.mem.read_u64(addr)?;
                self.regs.write(t, v);
                self.regs.write(n, addr);
            }
            StrPre(t, n, off) => {
                let addr = self.regs.read(n).wrapping_add(off as u64);
                self.mem.write_u64(addr, self.regs.read(t))?;
                self.regs.write(n, addr);
            }
            StrPost(t, n, off) => {
                if n == Reg::SCS {
                    self.shadow_accesses += 1;
                }
                let addr = self.regs.read(n);
                self.mem.write_u64(addr, self.regs.read(t))?;
                self.regs.write(n, addr.wrapping_add(off as u64));
            }
            Stp(t1, t2, n, off) => {
                let addr = self.regs.read(n).wrapping_add(off as u64);
                self.mem.write_u64(addr, self.regs.read(t1))?;
                self.mem
                    .write_u64(addr.wrapping_add(8), self.regs.read(t2))?;
            }
            Ldp(t1, t2, n, off) => {
                let addr = self.regs.read(n).wrapping_add(off as u64);
                let v1 = self.mem.read_u64(addr)?;
                let v2 = self.mem.read_u64(addr.wrapping_add(8))?;
                self.regs.write(t1, v1);
                self.regs.write(t2, v2);
            }

            B(target) => next_pc = target,
            BCond(cond, target) => {
                if self.flags.holds(cond) {
                    next_pc = target;
                }
            }
            Cbz(t, target) => {
                if self.regs.read(t) == 0 {
                    next_pc = target;
                }
            }
            Cbnz(t, target) => {
                if self.regs.read(t) != 0 {
                    next_pc = target;
                }
            }
            Bl(target) => {
                self.regs.write(Reg::LR, next_pc);
                next_pc = target;
            }
            Blr(n) => {
                let target = self.regs.read(n);
                self.check_branch_target(target)?;
                self.regs.write(Reg::LR, next_pc);
                next_pc = target;
            }
            Br(n) => {
                let target = self.regs.read(n);
                self.check_branch_target(target)?;
                next_pc = target;
            }
            Ret => next_pc = self.regs.read(Reg::LR),

            Pacia(d, n) => {
                let signed = self.sign_with(PaKey::Ia, self.regs.read(d), self.regs.read(n));
                self.regs.write(d, signed);
            }
            Autia(d, n) => {
                let v = self.authenticate(self.regs.read(d), self.regs.read(n))?;
                self.regs.write(d, v);
            }
            Pacib(d, n) => {
                let signed = self.sign_with(PaKey::Ib, self.regs.read(d), self.regs.read(n));
                self.regs.write(d, signed);
            }
            Autib(d, n) => {
                let v = self.authenticate_with(PaKey::Ib, self.regs.read(d), self.regs.read(n))?;
                self.regs.write(d, v);
            }
            Paciasp => {
                let (value, modifier) = (self.regs.read(Reg::LR), self.regs.read(Reg::Sp));
                self.log_pac(modifier, value);
                let signed = self.sign_with(PaKey::Ia, value, modifier);
                self.regs.write(Reg::LR, signed);
            }
            Autiasp => {
                let v = self.authenticate(self.regs.read(Reg::LR), self.regs.read(Reg::Sp))?;
                self.regs.write(Reg::LR, v);
            }
            Retaa => {
                let v = self.authenticate(self.regs.read(Reg::LR), self.regs.read(Reg::Sp))?;
                self.regs.write(Reg::LR, v);
                next_pc = v;
            }
            Pacibsp => {
                let signed =
                    self.sign_with(PaKey::Ib, self.regs.read(Reg::LR), self.regs.read(Reg::Sp));
                self.regs.write(Reg::LR, signed);
            }
            Retab => {
                let v = self.authenticate_with(
                    PaKey::Ib,
                    self.regs.read(Reg::LR),
                    self.regs.read(Reg::Sp),
                )?;
                self.regs.write(Reg::LR, v);
                next_pc = v;
            }
            Bti => {}
            Xpaci(d) => {
                let v = self.pa.strip(self.regs.read(d));
                self.regs.write(d, v);
            }
            Pacga(d, n, m) => {
                let v = self.cached_pacga(self.regs.read(n), self.regs.read(m));
                self.regs.write(d, v);
            }

            Svc(0) => {
                self.pc = next_pc;
                return Ok(Some(RunStatus::Exited(self.regs.read(Reg::X0))));
            }
            Svc(1) => {
                self.output.push(self.regs.read(Reg::X0));
            }
            Svc(imm) => {
                self.pc = next_pc;
                return Ok(Some(RunStatus::Syscall(imm)));
            }
            Nop => {}
        }

        self.pc = next_pc;
        Ok(None)
    }

    /// Runs until exit, an unhandled syscall, a fault, or `budget` retired
    /// instructions.
    ///
    /// # Errors
    ///
    /// Returns the [`Fault`] that terminated execution, or
    /// [`Fault::Timeout`] if the budget ran out.
    pub fn run(&mut self, budget: u64) -> Result<Outcome, Fault> {
        let result = self.run_inner(budget);
        if telemetry::enabled() {
            if let Err(fault) = &result {
                telemetry::counter(
                    &format!("cpu_faults_total{{kind=\"{}\"}}", fault.label()),
                    1,
                );
            }
            self.publish_telemetry();
        }
        result
    }

    fn run_inner(&mut self, budget: u64) -> Result<Outcome, Fault> {
        for _ in 0..budget {
            if let Some(status) = self.step()? {
                let exit_code = match status {
                    RunStatus::Exited(code) => code,
                    RunStatus::Syscall(_) => 0,
                };
                return Ok(Outcome {
                    exit_code,
                    status,
                    cycles: self.cycles,
                    instructions: self.instructions,
                });
            }
        }
        Err(Fault::Timeout)
    }

    /// Publishes the delta of every monotonic performance counter since the
    /// previous publish into the active telemetry sink. [`Cpu::run`] calls
    /// this on every exit path; harnesses that drive [`Cpu::step`] directly
    /// (fault-injection trials) call it at trial end. No-op, with no
    /// watermark movement, while telemetry is disabled.
    pub fn publish_telemetry(&mut self) {
        if !telemetry::enabled() {
            return;
        }
        let mark = self.tmark;
        let (hits, misses) = self.pac_cache_stats;
        let deltas = [
            ("cpu_cycles_total", self.cycles - mark.cycles),
            ("cpu_insns_total", self.instructions - mark.instructions),
            (
                "cpu_insns_class_total{class=\"pointer_auth\"}",
                self.counters.pointer_auth - mark.counters.pointer_auth,
            ),
            (
                "cpu_insns_class_total{class=\"memory\"}",
                self.counters.memory - mark.counters.memory,
            ),
            (
                "cpu_insns_class_total{class=\"branch\"}",
                self.counters.branches - mark.counters.branches,
            ),
            (
                "cpu_insns_class_total{class=\"other\"}",
                self.counters.other - mark.counters.other,
            ),
            ("cpu_pac_memo_total{result=\"hit\"}", hits - mark.pac_hits),
            (
                "cpu_pac_memo_total{result=\"miss\"}",
                misses - mark.pac_misses,
            ),
            (
                "cpu_shadow_accesses_total",
                self.shadow_accesses - mark.shadow_accesses,
            ),
        ];
        for (name, delta) in deltas {
            if delta > 0 {
                telemetry::counter(name, delta);
            }
        }
        self.tmark = TelemetryMark {
            cycles: self.cycles,
            instructions: self.instructions,
            counters: self.counters,
            pac_hits: hits,
            pac_misses: misses,
            shadow_accesses: self.shadow_accesses,
        };
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use crate::program::Op;
    use crate::Instruction::*;

    fn run_program(p: Program) -> Result<Outcome, Fault> {
        Cpu::with_seed(p, 7).run(1_000_000)
    }

    #[test]
    fn exit_code_is_x0() {
        let mut p = Program::new();
        p.function("main", vec![MovImm(Reg::X0, 5), Ret]);
        assert_eq!(run_program(p).unwrap().exit_code, 5);
    }

    #[test]
    fn call_and_return_through_stack() {
        let mut p = Program::new();
        p.function_ops(
            "main",
            vec![
                Op::I(StrPre(Reg::X30, Reg::Sp, -16)),
                Op::I(MovImm(Reg::X0, 20)),
                Op::Call("add_one".into()),
                Op::Call("add_one".into()),
                Op::I(LdrPost(Reg::X30, Reg::Sp, 16)),
                Op::I(Ret),
            ],
        );
        p.function("add_one", vec![AddImm(Reg::X0, Reg::X0, 1), Ret]);
        assert_eq!(run_program(p).unwrap().exit_code, 22);
    }

    #[test]
    fn recursion_computes_factorial() {
        // fact(n): if n == 0 { 1 } else { n * fact(n-1) }
        let mut p = Program::new();
        p.function_ops(
            "main",
            vec![
                Op::I(StrPre(Reg::X30, Reg::Sp, -16)),
                Op::I(MovImm(Reg::X0, 5)),
                Op::Call("fact".into()),
                Op::I(LdrPost(Reg::X30, Reg::Sp, 16)),
                Op::I(Ret),
            ],
        );
        p.function_ops(
            "fact",
            vec![
                Op::JumpZero(Reg::X0, "base".into()),
                Op::I(Stp(Reg::X0, Reg::X30, Reg::Sp, -16)),
                Op::I(AddImm(Reg::Sp, Reg::Sp, -16)),
                Op::I(AddImm(Reg::X0, Reg::X0, -1)),
                Op::Call("fact".into()),
                Op::I(AddImm(Reg::Sp, Reg::Sp, 16)),
                Op::I(Ldp(Reg::X1, Reg::X30, Reg::Sp, -16)),
                Op::I(Mul(Reg::X0, Reg::X0, Reg::X1)),
                Op::I(Ret),
                Op::Label("base".into()),
                Op::I(MovImm(Reg::X0, 1)),
                Op::I(Ret),
            ],
        );
        assert_eq!(run_program(p).unwrap().exit_code, 120);
    }

    #[test]
    fn indirect_call_via_blr() {
        let mut p = Program::new();
        p.function_ops(
            "main",
            vec![
                Op::I(StrPre(Reg::X30, Reg::Sp, -16)),
                Op::FnAddr(Reg::X9, "forty".into()),
                Op::I(Blr(Reg::X9)),
                Op::I(LdrPost(Reg::X30, Reg::Sp, 16)),
                Op::I(Ret),
            ],
        );
        p.function("forty", vec![MovImm(Reg::X0, 40), Ret]);
        assert_eq!(run_program(p).unwrap().exit_code, 40);
    }

    #[test]
    fn tail_call_returns_to_original_caller() {
        let mut p = Program::new();
        p.function_ops(
            "main",
            vec![
                Op::I(StrPre(Reg::X30, Reg::Sp, -16)),
                Op::Call("outer".into()),
                Op::I(LdrPost(Reg::X30, Reg::Sp, 16)),
                Op::I(Ret),
            ],
        );
        p.function_ops("outer", vec![Op::TailCall("inner".into())]);
        p.function("inner", vec![MovImm(Reg::X0, 9), Ret]);
        assert_eq!(run_program(p).unwrap().exit_code, 9);
    }

    #[test]
    fn pac_ret_round_trip_succeeds() {
        let mut p = Program::new();
        p.function(
            "main",
            vec![
                Paciasp,
                StrPre(Reg::X30, Reg::Sp, -16),
                MovImm(Reg::X0, 3),
                LdrPost(Reg::X30, Reg::Sp, 16),
                Retaa,
            ],
        );
        assert_eq!(run_program(p).unwrap().exit_code, 3);
    }

    #[test]
    fn classic_rop_overwrite_succeeds_without_protection() {
        // Without PA, overwriting the spilled LR redirects the return: the
        // attack the whole paper is about. "gadget" exits with 0x41.
        let mut p = Program::new();
        p.function_ops(
            "main",
            vec![
                Op::I(StrPre(Reg::X30, Reg::Sp, -16)),
                // Attacker overwrite of the stack slot, modelled in-program:
                Op::FnAddr(Reg::X9, "gadget".into()),
                Op::I(Str(Reg::X9, Reg::Sp, 0)),
                Op::I(LdrPost(Reg::X30, Reg::Sp, 16)),
                Op::I(Ret),
            ],
        );
        p.function("gadget", vec![MovImm(Reg::X0, 0x41), Svc(0)]);
        assert_eq!(run_program(p).unwrap().exit_code, 0x41);
    }

    #[test]
    fn corrupted_pac_ret_faults_at_fetch() {
        let mut p = Program::new();
        p.function(
            "main",
            vec![
                Paciasp,
                StrPre(Reg::X30, Reg::Sp, -16),
                LdrPost(Reg::X30, Reg::Sp, 16),
                EorImm(Reg::X30, Reg::X30, 16), // tamper with the address bits
                Retaa,
            ],
        );
        assert!(matches!(
            run_program(p),
            Err(Fault::TranslationFault { .. })
        ));
    }

    #[test]
    fn corrupted_keys_raise_key_fault() {
        // Sign under the real keys, glitch the key registers, authenticate:
        // the mismatch is attributed to the keys, not a forged pointer.
        let mut p = Program::new();
        p.function(
            "main",
            vec![Paciasp, Svc(40), Retaa], // svc #40: harness corrupts keys
        );
        let mut cpu = Cpu::with_seed(p, 7);
        let out = cpu.run(100).unwrap();
        assert_eq!(out.status, RunStatus::Syscall(40));
        cpu.corrupt_keys(PaKeys::from_seed(999));
        assert!(cpu.keys_tainted());
        assert!(matches!(cpu.run(100), Err(Fault::KeyFault { .. })));
    }

    #[test]
    fn key_corruption_is_never_bridged_by_the_pac_memo() {
        // Warm the memo with a sign + authenticate of the same (LR, SP)
        // pair, sign again (a guaranteed cache hit), then glitch the keys:
        // the final authenticate must recompute under the new keys and fail
        // as a KeyFault — a stale cached MAC would make it succeed.
        let mut p = Program::new();
        p.function("main", vec![Paciasp, Autiasp, Paciasp, Svc(40), Retaa]);
        let mut cpu = Cpu::with_seed(p, 7);
        let out = cpu.run(100).unwrap();
        assert_eq!(out.status, RunStatus::Syscall(40));
        let (hits, _) = cpu.pac_cache_stats();
        assert!(hits >= 2, "memo never hit; the test exercises nothing");
        cpu.corrupt_keys(PaKeys::from_seed(999));
        assert!(matches!(cpu.run(100), Err(Fault::KeyFault { .. })));
    }

    #[test]
    fn rekeying_also_invalidates_the_pac_memo() {
        // set_keys (legitimate re-key) must invalidate like corrupt_keys
        // does — even when the replacement PaKeys carries the same
        // generation counter as the old instance.
        let mut p = Program::new();
        p.function("main", vec![Paciasp, Svc(40), Retaa]);
        let mut cpu = Cpu::with_seed(p, 7);
        let out = cpu.run(100).unwrap();
        assert_eq!(out.status, RunStatus::Syscall(40));
        cpu.set_keys(PaKeys::from_seed(999)); // same generation (0) as before
        assert!(!cpu.keys_tainted());
        // Not a KeyFault (no taint), but it must *fail* — success would mean
        // the memo replayed a MAC from the previous key epoch.
        assert!(cpu.run(100).is_err());
    }

    #[test]
    fn pac_memo_is_architecturally_invisible() {
        // Same program, memo on vs off: identical outcome, output, cycles
        // and instruction counts.
        let build = || {
            use crate::program::Op;
            let mut p = Program::new();
            p.function_ops(
                "main",
                vec![
                    Op::I(MovImm(Reg::X1, 5)),
                    // loop: sign/auth LR repeatedly, emit a MAC each pass
                    Op::Label("loop".into()),
                    Op::I(Paciasp),
                    Op::I(Autiasp),
                    Op::I(Pacga(Reg::X0, Reg::X30, Reg::Sp)),
                    Op::I(Svc(1)),
                    Op::I(AddImm(Reg::X1, Reg::X1, -1)),
                    Op::JumpNonZero(Reg::X1, "loop".into()),
                    Op::I(MovImm(Reg::X0, 0)),
                    Op::I(Ret),
                ],
            );
            p
        };
        let mut fast = Cpu::with_seed(build(), 3);
        let mut slow = Cpu::with_seed(build(), 3);
        slow.set_pac_memo(false);
        let a = fast.run(10_000).unwrap();
        let b = slow.run(10_000).unwrap();
        assert_eq!(a.status, b.status);
        assert_eq!(fast.output(), slow.output());
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.instructions, b.instructions);
        let (hits, _) = fast.pac_cache_stats();
        assert!(hits > 0, "fast CPU never hit the memo");
        assert_eq!(slow.pac_cache_stats(), (0, 0));
    }

    #[test]
    fn rekeying_clears_key_taint() {
        let mut p = Program::new();
        p.function("main", vec![MovImm(Reg::X0, 0), Ret]);
        let mut cpu = Cpu::with_seed(p, 7);
        cpu.corrupt_keys(PaKeys::from_seed(999));
        cpu.set_keys(PaKeys::from_seed(7));
        assert!(!cpu.keys_tainted());
    }

    #[test]
    fn try_with_seed_reports_link_errors() {
        let mut p = Program::new();
        p.function_ops("main", vec![Op::Call("ghost".into())]);
        assert!(matches!(
            Cpu::try_with_seed(p, 7),
            Err(LinkError::UnresolvedFunction { .. })
        ));
    }

    #[test]
    fn fpac_faults_inside_autia() {
        let mut p = Program::new();
        p.function("main", vec![Paciasp, EorImm(Reg::X30, Reg::X30, 16), Retaa]);
        let mut cpu = Cpu::with_seed(p, 7);
        cpu.enable_fpac();
        assert!(matches!(cpu.run(100), Err(Fault::PacFault { .. })));
    }

    #[test]
    fn svc1_emits_output() {
        let mut p = Program::new();
        p.function(
            "main",
            vec![
                MovImm(Reg::X0, 10),
                Svc(1),
                MovImm(Reg::X0, 20),
                Svc(1),
                MovImm(Reg::X0, 0),
                Ret,
            ],
        );
        let mut cpu = Cpu::with_seed(p, 7);
        cpu.run(1000).unwrap();
        assert_eq!(cpu.output(), &[10, 20]);
    }

    #[test]
    fn foreign_syscall_suspends_to_caller() {
        let mut p = Program::new();
        p.function("main", vec![Svc(42), MovImm(Reg::X0, 1), Ret]);
        let mut cpu = Cpu::with_seed(p, 7);
        let out = cpu.run(100).unwrap();
        assert_eq!(out.status, RunStatus::Syscall(42));
        // Resumable: continues after the svc.
        let out = cpu.run(100).unwrap();
        assert_eq!(out.exit_code, 1);
    }

    #[test]
    fn budget_exhaustion_reports_timeout() {
        let mut p = Program::new();
        p.function_ops(
            "main",
            vec![Op::Label("spin".into()), Op::Jump("spin".into())],
        );
        assert_eq!(Cpu::with_seed(p, 7).run(1000), Err(Fault::Timeout));
    }

    #[test]
    fn cycles_accumulate_per_cost_model() {
        let mut p = Program::new();
        p.function(
            "main",
            vec![Paciasp, Xpaci(Reg::X30), MovImm(Reg::X0, 0), Ret],
        );
        let mut cpu = Cpu::with_seed(p, 7);
        let out = cpu.run(100).unwrap();
        // bl(1) + paciasp(4) + xpaci(4) + mov(1) + ret(1) + svc(200)
        assert_eq!(out.cycles, 211);
        assert_eq!(out.instructions, 6);
    }

    #[test]
    fn conditional_branches_follow_flags() {
        let mut p = Program::new();
        p.function_ops(
            "main",
            vec![
                Op::I(MovImm(Reg::X0, 0)),
                Op::I(MovImm(Reg::X1, 3)),
                Op::Label("loop".into()),
                Op::I(AddImm(Reg::X0, Reg::X0, 2)),
                Op::I(AddImm(Reg::X1, Reg::X1, -1)),
                Op::I(CmpImm(Reg::X1, 0)),
                Op::JumpCond(Cond::Ne, "loop".into()),
                Op::I(Ret),
            ],
        );
        assert_eq!(run_program(p).unwrap().exit_code, 6);
    }

    #[test]
    fn signed_and_unsigned_conditions() {
        // -1 (as u64::MAX) vs 1: signed less-than, unsigned higher-or-same.
        let mut p = Program::new();
        p.function_ops(
            "main",
            vec![
                Op::I(MovImm(Reg::X2, u64::MAX)),
                Op::I(CmpImm(Reg::X2, 1)),
                Op::JumpCond(Cond::Lt, "signed_lt".into()),
                Op::I(MovImm(Reg::X0, 1)),
                Op::I(Ret),
                Op::Label("signed_lt".into()),
                Op::I(CmpImm(Reg::X2, 1)),
                Op::JumpCond(Cond::Hs, "uns_hs".into()),
                Op::I(MovImm(Reg::X0, 2)),
                Op::I(Ret),
                Op::Label("uns_hs".into()),
                Op::I(MovImm(Reg::X0, 0)),
                Op::I(Ret),
            ],
        );
        assert_eq!(run_program(p).unwrap().exit_code, 0);
    }
}
