//! An AArch64-subset CPU simulator for the PACStack reproduction.
//!
//! The PACStack paper evaluates on two platforms neither of which is
//! available to a pure-Rust reproduction: the ARM Fixed Virtual Platform
//! (for functional correctness, since it implements ARMv8.3-A pointer
//! authentication) and Amazon EC2 a1.metal machines running a *PA-analogue*
//! (for performance, since no PA silicon was publicly programmable). This
//! crate plays both roles:
//!
//! * **Functional**: a register-accurate interpreter for the instruction
//!   subset the PACStack instrumentation emits — loads/stores, branches,
//!   `bl`/`blr`/`ret`, and the PA instructions `pacia`, `autia`, `paciasp`,
//!   `retaa`, `xpaci`, `pacga` — over a memory model that enforces W⊕X and
//!   faults on non-canonical pointers, exactly the behaviours the paper's
//!   security argument depends on.
//! * **Performance**: a deterministic per-instruction cycle model
//!   ([`CostModel`]) in which a PAC computation costs ~4 cycles, the figure
//!   the paper adopts from QARMA hardware evaluations, so instrumentation
//!   overheads can be measured as cycle ratios.
//!
//! A small kernel model ([`kernel`]) covers what §5.4 of the paper relies
//! on: per-process PA keys owned at EL1, context switches that spill CR/LR
//! into kernel-private storage, and signal delivery/`sigreturn`.
//!
//! # Examples
//!
//! ```
//! use pacstack_aarch64::{Cpu, Instruction::*, Program, Reg};
//!
//! let mut program = Program::new();
//! program.function("main", vec![
//!     MovImm(Reg::X0, 41),
//!     AddImm(Reg::X0, Reg::X0, 1),
//!     Svc(0), // exit(X0)
//! ]);
//! let mut cpu = Cpu::with_seed(program, 0);
//! let outcome = cpu.run(1_000)?;
//! assert_eq!(outcome.exit_code, 42);
//! # Ok::<(), pacstack_aarch64::Fault>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Panic paths must not silently return: fault injection requires structured
// errors end to end ([`Fault`], [`LinkError`]). Tests opt back in locally.
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod asm;
mod cost;
mod cpu;
mod fault;
mod insn;
pub mod kernel;
mod memory;
pub mod profile;
pub mod program;
mod regs;
pub mod trace;

pub use cost::CostModel;
pub use cpu::{Context, Cpu, InsnCounters, Outcome, RunStatus};
pub use fault::Fault;
pub use insn::{Cond, Instruction};
pub use memory::{Memory, Perms, LAYOUT};
pub use profile::{FunctionProfile, ProfileSpan};
pub use program::{LinkError, Program};
pub use regs::Reg;
