//! Program construction: functions of symbolic ops assembled to an image.

use crate::{Cond, Instruction, Reg};
use std::collections::HashMap;
use std::fmt;

/// A symbolic operation: either a resolved [`Instruction`] or a reference to
/// a function or local label that assembly resolves to an address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// A fully resolved instruction.
    I(Instruction),
    /// `bl <function>`.
    Call(String),
    /// `b <function>` — a tail call (paper §6.3.1).
    TailCall(String),
    /// `mov Xd, #address_of(function)` — materialise a function pointer.
    FnAddr(Reg, String),
    /// `mov Xd, #address_of(.label)` — materialise a local label address
    /// (the setjmp resume-point idiom).
    LabelAddr(Reg, String),
    /// `b .label` within the current function.
    Jump(String),
    /// `b.cond .label` within the current function.
    JumpCond(Cond, String),
    /// `cbz Xt, .label` within the current function.
    JumpZero(Reg, String),
    /// `cbnz Xt, .label` within the current function.
    JumpNonZero(Reg, String),
    /// Defines a local label (occupies no space).
    Label(String),
}

impl Op {
    fn occupies_slot(&self) -> bool {
        !matches!(self, Op::Label(_))
    }
}

impl From<Instruction> for Op {
    fn from(insn: Instruction) -> Self {
        Op::I(insn)
    }
}

#[derive(Debug, Clone)]
struct Function {
    name: String,
    ops: Vec<Op>,
}

/// A program under construction: an ordered list of named functions.
///
/// Assembly lays functions out contiguously from the code base, prepending a
/// start stub that calls `main` and exits with its return value (`X0`).
///
/// # Examples
///
/// ```
/// use pacstack_aarch64::{Instruction::*, Program, Reg};
/// use pacstack_aarch64::program::Op;
///
/// let mut p = Program::new();
/// p.function_ops("main", vec![
///     Op::I(MovImm(Reg::X0, 1)),
///     Op::Call("double".into()),
///     Op::I(Ret), // LR still holds the stub's return here only because
///                 // `double` preserved it; real functions must spill LR.
/// ]);
/// p.function("double", vec![Add(Reg::X0, Reg::X0, Reg::X0), Ret]);
/// assert!(p.contains("double"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Program {
    functions: Vec<Function>,
}

/// A fully assembled program image.
#[derive(Debug, Clone)]
pub struct Image {
    /// Instructions, indexed by `(pc - code_base) / 4`.
    pub instructions: Vec<Instruction>,
    /// Function name → entry address.
    pub symbols: HashMap<String, u64>,
    /// Entry point (the start stub).
    pub entry: u64,
}

/// A structured link-time failure raised by [`Program::assemble`].
///
/// These used to be host-process panics; a fault-injection campaign that
/// perturbs program construction needs them to be reportable outcomes
/// instead of aborts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinkError {
    /// The program defines no `main` function.
    MissingMain,
    /// A call/tail-call/address-of refers to a function that does not exist.
    UnresolvedFunction {
        /// Function containing the dangling reference.
        function: String,
        /// The missing callee.
        name: String,
    },
    /// A branch or label-address op refers to a label the function lacks.
    UnresolvedLabel {
        /// Function containing the dangling reference.
        function: String,
        /// The missing local label.
        label: String,
    },
    /// The same local label is defined twice within one function.
    DuplicateLabel {
        /// Function containing the clash.
        function: String,
        /// The label defined twice.
        label: String,
    },
}

impl fmt::Display for LinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkError::MissingMain => write!(f, "program has no `main`"),
            LinkError::UnresolvedFunction { function, name } => {
                write!(f, "unresolved function {name:?} in {function}")
            }
            LinkError::UnresolvedLabel { function, label } => {
                write!(f, "unresolved label {label:?} in {function}")
            }
            LinkError::DuplicateLabel { function, label } => {
                write!(f, "duplicate label {label:?} in {function}")
            }
        }
    }
}

impl std::error::Error for LinkError {}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a function given plain instructions.
    ///
    /// # Panics
    ///
    /// Panics if a function with the same name exists.
    pub fn function(&mut self, name: &str, insns: Vec<Instruction>) -> &mut Self {
        self.function_ops(name, insns.into_iter().map(Op::I).collect())
    }

    /// Appends a function given symbolic ops.
    ///
    /// # Panics
    ///
    /// Panics if a function with the same name exists.
    pub fn function_ops(&mut self, name: &str, ops: Vec<Op>) -> &mut Self {
        assert!(!self.contains(name), "duplicate function {name:?}");
        self.functions.push(Function {
            name: name.to_owned(),
            ops,
        });
        self
    }

    /// Whether a function with this name has been added.
    pub fn contains(&self, name: &str) -> bool {
        self.functions.iter().any(|f| f.name == name)
    }

    /// Names of all functions, in layout order.
    pub fn function_names(&self) -> impl Iterator<Item = &str> {
        self.functions.iter().map(|f| f.name.as_str())
    }

    /// Assembles the program at `code_base`.
    ///
    /// # Errors
    ///
    /// Returns a [`LinkError`] on unresolved function or label references,
    /// duplicate local labels, or a missing `main`.
    pub fn assemble(&self, code_base: u64) -> Result<Image, LinkError> {
        if !self.contains("main") {
            return Err(LinkError::MissingMain);
        }

        // The start stub: bl main; svc #0 (exit with X0).
        let stub_len = 2u64;

        // Pass 1: assign addresses.
        let mut symbols = HashMap::new();
        let mut addr = code_base + stub_len * 4;
        for f in &self.functions {
            symbols.insert(f.name.clone(), addr);
            let slots = f.ops.iter().filter(|op| op.occupies_slot()).count() as u64;
            addr += slots * 4;
        }

        // Pass 2: emit.
        let main = symbols.get("main").copied().ok_or(LinkError::MissingMain)?;
        let mut instructions = vec![Instruction::Bl(main), Instruction::Svc(0)];
        for f in &self.functions {
            // Local label addresses within this function.
            let mut labels = HashMap::new();
            let mut pc = symbols.get(&f.name).copied().unwrap_or(code_base);
            for op in &f.ops {
                match op {
                    Op::Label(l) => {
                        if labels.insert(l.clone(), pc).is_some() {
                            return Err(LinkError::DuplicateLabel {
                                function: f.name.clone(),
                                label: l.clone(),
                            });
                        }
                    }
                    _ => pc += 4,
                }
            }

            let fn_sym = |name: &str| -> Result<u64, LinkError> {
                symbols
                    .get(name)
                    .copied()
                    .ok_or_else(|| LinkError::UnresolvedFunction {
                        function: f.name.clone(),
                        name: name.to_owned(),
                    })
            };
            let label_sym = |name: &str| -> Result<u64, LinkError> {
                labels
                    .get(name)
                    .copied()
                    .ok_or_else(|| LinkError::UnresolvedLabel {
                        function: f.name.clone(),
                        label: name.to_owned(),
                    })
            };

            for op in &f.ops {
                let insn = match op {
                    Op::I(i) => *i,
                    Op::Call(name) => Instruction::Bl(fn_sym(name)?),
                    Op::TailCall(name) => Instruction::B(fn_sym(name)?),
                    Op::FnAddr(reg, name) => Instruction::MovImm(*reg, fn_sym(name)?),
                    Op::LabelAddr(reg, name) => Instruction::MovImm(*reg, label_sym(name)?),
                    Op::Jump(l) => Instruction::B(label_sym(l)?),
                    Op::JumpCond(c, l) => Instruction::BCond(*c, label_sym(l)?),
                    Op::JumpZero(r, l) => Instruction::Cbz(*r, label_sym(l)?),
                    Op::JumpNonZero(r, l) => Instruction::Cbnz(*r, label_sym(l)?),
                    Op::Label(_) => continue,
                };
                instructions.push(insn);
            }
        }

        Ok(Image {
            instructions,
            symbols,
            entry: code_base,
        })
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for func in &self.functions {
            writeln!(f, "{}:", func.name)?;
            for op in &func.ops {
                match op {
                    Op::I(i) => writeln!(f, "    {i}")?,
                    Op::Call(n) => writeln!(f, "    bl {n}")?,
                    Op::TailCall(n) => writeln!(f, "    b {n}")?,
                    Op::FnAddr(r, n) => writeln!(f, "    mov {r}, #&{n}")?,
                    Op::LabelAddr(r, n) => writeln!(f, "    mov {r}, #&.{n}")?,
                    Op::Jump(l) => writeln!(f, "    b .{l}")?,
                    Op::JumpCond(c, l) => writeln!(f, "    b.{c} .{l}")?,
                    Op::JumpZero(r, l) => writeln!(f, "    cbz {r}, .{l}")?,
                    Op::JumpNonZero(r, l) => writeln!(f, "    cbnz {r}, .{l}")?,
                    Op::Label(l) => writeln!(f, "  .{l}:")?,
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use crate::Instruction::*;

    #[test]
    fn assembles_stub_and_symbols() {
        let mut p = Program::new();
        p.function("main", vec![MovImm(Reg::X0, 7), Ret]);
        let image = p.assemble(0x40_0000).unwrap();
        assert_eq!(image.entry, 0x40_0000);
        assert_eq!(image.symbols["main"], 0x40_0008);
        assert_eq!(image.instructions[0], Bl(0x40_0008));
        assert_eq!(image.instructions[1], Svc(0));
    }

    #[test]
    fn resolves_cross_function_calls() {
        let mut p = Program::new();
        p.function_ops("main", vec![Op::Call("helper".into()), Op::I(Ret)]);
        p.function("helper", vec![Ret]);
        let image = p.assemble(0x40_0000).unwrap();
        let main_addr = image.symbols["main"];
        let helper_addr = image.symbols["helper"];
        let idx = ((main_addr - 0x40_0000) / 4) as usize;
        assert_eq!(image.instructions[idx], Bl(helper_addr));
    }

    #[test]
    fn resolves_local_labels_without_consuming_space() {
        let mut p = Program::new();
        p.function_ops(
            "main",
            vec![
                Op::I(MovImm(Reg::X0, 3)),
                Op::Label("loop".into()),
                Op::I(AddImm(Reg::X0, Reg::X0, -1)),
                Op::JumpNonZero(Reg::X0, "loop".into()),
                Op::I(Ret),
            ],
        );
        let image = p.assemble(0x40_0000).unwrap();
        let main_addr = image.symbols["main"];
        // The label points at the AddImm, one slot after the MovImm.
        let idx = ((main_addr - 0x40_0000) / 4) as usize;
        assert_eq!(image.instructions[idx + 2], Cbnz(Reg::X0, main_addr + 4));
    }

    #[test]
    fn fn_addr_materialises_entry_address() {
        let mut p = Program::new();
        p.function_ops(
            "main",
            vec![Op::FnAddr(Reg::X9, "target".into()), Op::I(Ret)],
        );
        p.function("target", vec![Ret]);
        let image = p.assemble(0x40_0000).unwrap();
        let idx = ((image.symbols["main"] - 0x40_0000) / 4) as usize;
        assert_eq!(
            image.instructions[idx],
            MovImm(Reg::X9, image.symbols["target"])
        );
    }

    #[test]
    fn missing_main_is_a_link_error() {
        assert_eq!(
            Program::new().assemble(0x40_0000).unwrap_err(),
            LinkError::MissingMain
        );
    }

    #[test]
    fn unresolved_call_is_a_link_error() {
        let mut p = Program::new();
        p.function_ops("main", vec![Op::Call("ghost".into())]);
        let err = p.assemble(0x40_0000).unwrap_err();
        assert_eq!(
            err,
            LinkError::UnresolvedFunction {
                function: "main".into(),
                name: "ghost".into(),
            }
        );
        assert_eq!(err.to_string(), "unresolved function \"ghost\" in main");
    }

    #[test]
    fn unresolved_label_is_a_link_error() {
        let mut p = Program::new();
        p.function_ops("main", vec![Op::Jump("nowhere".into()), Op::I(Ret)]);
        let err = p.assemble(0x40_0000).unwrap_err();
        assert_eq!(
            err,
            LinkError::UnresolvedLabel {
                function: "main".into(),
                label: "nowhere".into(),
            }
        );
        assert_eq!(err.to_string(), "unresolved label \"nowhere\" in main");
    }

    #[test]
    fn duplicate_label_is_a_link_error() {
        let mut p = Program::new();
        p.function_ops(
            "main",
            vec![
                Op::Label("twice".into()),
                Op::I(Nop),
                Op::Label("twice".into()),
                Op::I(Ret),
            ],
        );
        assert_eq!(
            p.assemble(0x40_0000).unwrap_err(),
            LinkError::DuplicateLabel {
                function: "main".into(),
                label: "twice".into(),
            }
        );
    }

    #[test]
    #[should_panic(expected = "duplicate function")]
    fn duplicate_function_panics() {
        let mut p = Program::new();
        p.function("main", vec![Ret]);
        p.function("main", vec![Ret]);
    }
}
