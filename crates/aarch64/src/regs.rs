//! The general-purpose register file.

use std::fmt;

/// An AArch64 general-purpose register, plus `SP` and the zero register.
///
/// Registers with an ABI role relevant to the paper:
///
/// * `X30` = **LR**, the link register set by `bl`/`blr`;
/// * `X29` = **FP**, the frame pointer;
/// * `X28` = **CR**, the chain register PACStack reserves (paper §5.1);
/// * `X18` = the platform register ShadowCallStack reserves for its shadow
///   stack base;
/// * `X15` is the scratch register the PACStack masking sequences use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum Reg {
    X0,
    X1,
    X2,
    X3,
    X4,
    X5,
    X6,
    X7,
    X8,
    X9,
    X10,
    X11,
    X12,
    X13,
    X14,
    X15,
    X16,
    X17,
    X18,
    X19,
    X20,
    X21,
    X22,
    X23,
    X24,
    X25,
    X26,
    X27,
    X28,
    X29,
    X30,
    /// The stack pointer.
    Sp,
    /// The zero register: reads as 0, writes are discarded.
    Xzr,
}

impl Reg {
    /// The link register alias.
    pub const LR: Reg = Reg::X30;
    /// The frame-pointer alias.
    pub const FP: Reg = Reg::X29;
    /// PACStack's chain register (paper §5.1).
    pub const CR: Reg = Reg::X28;
    /// ShadowCallStack's shadow-stack pointer.
    pub const SCS: Reg = Reg::X18;

    /// All 31 general-purpose registers (excluding `SP`/`XZR`).
    pub fn general_purpose() -> impl Iterator<Item = Reg> {
        (0..31).filter_map(Reg::from_index)
    }

    /// Whether the AAPCS64 calling convention makes this register
    /// callee-saved (`X19`–`X28`, plus `FP`).
    pub fn is_callee_saved(self) -> bool {
        matches!(
            self,
            Reg::X19
                | Reg::X20
                | Reg::X21
                | Reg::X22
                | Reg::X23
                | Reg::X24
                | Reg::X25
                | Reg::X26
                | Reg::X27
                | Reg::X28
                | Reg::X29
        )
    }

    /// Maps an index `0..=30` to `X0..=X30`.
    pub fn from_index(i: usize) -> Option<Reg> {
        use Reg::*;
        const TABLE: [Reg; 31] = [
            X0, X1, X2, X3, X4, X5, X6, X7, X8, X9, X10, X11, X12, X13, X14, X15, X16, X17, X18,
            X19, X20, X21, X22, X23, X24, X25, X26, X27, X28, X29, X30,
        ];
        TABLE.get(i).copied()
    }

    fn index(self) -> usize {
        match self {
            Reg::Sp => 31,
            Reg::Xzr => 32,
            other => {
                // X0..X30 are declared in order.
                other as usize
            }
        }
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Reg::Sp => f.write_str("sp"),
            Reg::Xzr => f.write_str("xzr"),
            Reg::X30 => f.write_str("lr"),
            Reg::X29 => f.write_str("fp"),
            other => write!(f, "x{}", other.index()),
        }
    }
}

/// The register file: `X0`–`X30` plus `SP`; `XZR` is hardwired to zero.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RegisterFile {
    values: [u64; 32],
}

impl RegisterFile {
    /// Creates a zeroed register file.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads a register (`XZR` reads as zero).
    pub fn read(&self, reg: Reg) -> u64 {
        match reg {
            Reg::Xzr => 0,
            other => self.values[other.index()],
        }
    }

    /// Writes a register (writes to `XZR` are discarded).
    pub fn write(&mut self, reg: Reg, value: u64) {
        if reg != Reg::Xzr {
            self.values[reg.index()] = value;
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    #[test]
    fn aliases_resolve() {
        assert_eq!(Reg::LR, Reg::X30);
        assert_eq!(Reg::FP, Reg::X29);
        assert_eq!(Reg::CR, Reg::X28);
        assert_eq!(Reg::SCS, Reg::X18);
    }

    #[test]
    fn xzr_reads_zero_and_ignores_writes() {
        let mut rf = RegisterFile::new();
        rf.write(Reg::Xzr, 99);
        assert_eq!(rf.read(Reg::Xzr), 0);
    }

    #[test]
    fn sp_is_distinct_from_gprs() {
        let mut rf = RegisterFile::new();
        rf.write(Reg::Sp, 0x1000);
        rf.write(Reg::X30, 0x2000);
        assert_eq!(rf.read(Reg::Sp), 0x1000);
        assert_eq!(rf.read(Reg::X30), 0x2000);
    }

    #[test]
    fn callee_saved_set_matches_aapcs() {
        assert!(Reg::X19.is_callee_saved());
        assert!(Reg::X28.is_callee_saved());
        assert!(Reg::X29.is_callee_saved());
        assert!(!Reg::X30.is_callee_saved()); // LR is special, not in the set
        assert!(!Reg::X18.is_callee_saved()); // platform register
        assert!(!Reg::X0.is_callee_saved());
    }

    #[test]
    fn display_uses_abi_names() {
        assert_eq!(Reg::X30.to_string(), "lr");
        assert_eq!(Reg::X29.to_string(), "fp");
        assert_eq!(Reg::Sp.to_string(), "sp");
        assert_eq!(Reg::X5.to_string(), "x5");
    }

    #[test]
    fn from_index_round_trips() {
        for i in 0..31 {
            let reg = Reg::from_index(i).unwrap();
            assert_eq!(reg.index(), i);
        }
        assert_eq!(Reg::from_index(31), None);
    }
}
