//! The deterministic cycle cost model.
//!
//! The paper could not measure PA instructions on real silicon; it adopts
//! the ~4-cycle PAC latency estimated from QARMA hardware evaluations
//! (Avanzi 2017, via Liljestrand et al. 2019) and measures everything else
//! on ARMv8.2 cores with a PA-analogue. This model plays the same role: it
//! assigns each instruction class a fixed cost so instrumentation overhead
//! can be compared across schemes as a cycle ratio.

use crate::{Instruction, Reg};

/// Per-class cycle costs.
///
/// # Examples
///
/// ```
/// use pacstack_aarch64::{CostModel, Instruction, Reg};
///
/// let model = CostModel::default();
/// assert_eq!(model.cost(&Instruction::Pacia(Reg::X30, Reg::X28)), 4);
/// assert_eq!(model.cost(&Instruction::Nop), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CostModel {
    /// Simple ALU / move / branch instructions.
    pub base: u64,
    /// Loads and stores (L1-hit latency); `stp`/`ldp` count once.
    pub memory: u64,
    /// PA instructions (`pacia`, `autia`, ...), the paper's ~4-cycle figure.
    pub pointer_auth: u64,
    /// Integer multiply.
    pub multiply: u64,
    /// Supervisor call (EL0→EL1 round trip).
    pub syscall: u64,
    /// Extra cycles for memory accesses into the shadow-stack region: it
    /// lives far from the hot stack, costing additional cache/TLB traffic.
    pub shadow_penalty: u64,
}

impl CostModel {
    /// The model used throughout the reproduction: 1-cycle ALU, 2-cycle
    /// L1 accesses, 4-cycle PAC, 3-cycle multiply, 200-cycle syscall.
    pub fn new() -> Self {
        Self {
            base: 1,
            memory: 2,
            pointer_auth: 4,
            multiply: 3,
            syscall: 200,
            shadow_penalty: 2,
        }
    }

    /// Cycles charged for one instruction. This is the *single* authority
    /// on cycle accounting: the CPU adds exactly this value per retired
    /// instruction, so execution traces, telemetry and the perf harness all
    /// read one consistent counter.
    ///
    /// `retaa` combines an authentication and a return and is charged
    /// `pointer_auth + base`. Accesses whose base register is the
    /// shadow-stack pointer carry `shadow_penalty` on top of the memory
    /// latency (charged at fetch time, even if the access then faults) —
    /// the addressing mode is static, so the surcharge is a property of the
    /// instruction, not of dynamic state.
    pub fn cost(&self, insn: &Instruction) -> u64 {
        use Instruction::*;
        match insn {
            Retaa => self.pointer_auth + self.base,
            i if i.is_pointer_auth() => self.pointer_auth,
            i if Self::is_shadow_access(i) => self.memory + self.shadow_penalty,
            i if i.is_memory() => self.memory,
            Mul(..) => self.multiply,
            Svc(..) => self.syscall,
            _ => self.base,
        }
    }

    /// Whether an instruction accesses memory through the shadow-stack
    /// pointer in one of the addressing modes the instrumentation emits
    /// (plain, pre-indexed push, post-indexed pop).
    pub fn is_shadow_access(insn: &Instruction) -> bool {
        use Instruction::*;
        matches!(
            insn,
            Ldr(_, Reg::SCS, _)
                | Str(_, Reg::SCS, _)
                | LdrPre(_, Reg::SCS, _)
                | StrPost(_, Reg::SCS, _)
        )
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Reg;

    #[test]
    fn pac_costs_four_cycles() {
        let m = CostModel::default();
        assert_eq!(m.cost(&Instruction::Pacia(Reg::X30, Reg::X28)), 4);
        assert_eq!(m.cost(&Instruction::Autia(Reg::X30, Reg::X28)), 4);
        assert_eq!(m.cost(&Instruction::Paciasp), 4);
        assert_eq!(m.cost(&Instruction::Pacga(Reg::X0, Reg::X1, Reg::X2)), 4);
    }

    #[test]
    fn retaa_costs_auth_plus_return() {
        let m = CostModel::default();
        assert_eq!(m.cost(&Instruction::Retaa), 5);
    }

    #[test]
    fn memory_ops_cost_memory_latency() {
        let m = CostModel::default();
        assert_eq!(m.cost(&Instruction::Ldr(Reg::X0, Reg::Sp, 0)), 2);
        assert_eq!(
            m.cost(&Instruction::Stp(Reg::X29, Reg::X30, Reg::Sp, -16)),
            2
        );
    }

    #[test]
    fn shadow_stack_accesses_carry_the_penalty() {
        let m = CostModel::default();
        assert_eq!(m.cost(&Instruction::Str(Reg::X30, Reg::SCS, 0)), 4);
        assert_eq!(m.cost(&Instruction::LdrPre(Reg::X30, Reg::SCS, -8)), 4);
        assert_eq!(m.cost(&Instruction::StrPost(Reg::X30, Reg::SCS, 8)), 4);
        // Non-shadow bases are plain memory ops.
        assert_eq!(m.cost(&Instruction::Str(Reg::X30, Reg::Sp, 0)), 2);
        // Addressing modes the instrumentation never uses against the
        // shadow stack stay at memory latency.
        assert_eq!(m.cost(&Instruction::StrPre(Reg::X30, Reg::SCS, -8)), 2);
        assert_eq!(m.cost(&Instruction::LdrPost(Reg::X30, Reg::SCS, 8)), 2);
    }

    #[test]
    fn alu_and_branches_cost_base() {
        let m = CostModel::default();
        assert_eq!(m.cost(&Instruction::Add(Reg::X0, Reg::X1, Reg::X2)), 1);
        assert_eq!(m.cost(&Instruction::Bl(0x40_0000)), 1);
        assert_eq!(m.cost(&Instruction::Ret), 1);
    }
}
