//! Property test: random programs round-trip through the textual assembler
//! (`display → parse → display` is a fixed point), and parse errors never
//! panic.

use pacstack_aarch64::asm::parse_program;
use pacstack_aarch64::program::Op;
use pacstack_aarch64::{Cond, Instruction as I, Program, Reg};
use proptest::prelude::*;

fn arb_reg() -> impl Strategy<Value = Reg> {
    prop_oneof![
        (0usize..31).prop_map(|i| Reg::from_index(i).expect("in range")),
        Just(Reg::Sp),
        Just(Reg::Xzr),
    ]
}

fn arb_cond() -> impl Strategy<Value = Cond> {
    prop_oneof![
        Just(Cond::Eq),
        Just(Cond::Ne),
        Just(Cond::Lo),
        Just(Cond::Hs),
        Just(Cond::Lt),
        Just(Cond::Ge),
    ]
}

/// Instructions whose display form the parser accepts (everything except
/// the raw-address branch forms, which the builder API never produces).
fn arb_insn() -> impl Strategy<Value = I> {
    let r = arb_reg;
    prop_oneof![
        (r(), r()).prop_map(|(a, b)| I::Mov(a, b)),
        (r(), any::<u32>()).prop_map(|(a, v)| I::MovImm(a, u64::from(v))),
        (r(), r(), r()).prop_map(|(a, b, c)| I::Add(a, b, c)),
        (r(), r(), -4096i64..4096).prop_map(|(a, b, v)| I::AddImm(a, b, v)),
        (r(), r(), r()).prop_map(|(a, b, c)| I::Sub(a, b, c)),
        (r(), r(), r()).prop_map(|(a, b, c)| I::Mul(a, b, c)),
        (r(), r(), r()).prop_map(|(a, b, c)| I::Eor(a, b, c)),
        (r(), r(), any::<u32>()).prop_map(|(a, b, v)| I::EorImm(a, b, u64::from(v))),
        (r(), r(), any::<u32>()).prop_map(|(a, b, v)| I::AndImm(a, b, u64::from(v))),
        (r(), r(), 0u32..64).prop_map(|(a, b, s)| I::LsrImm(a, b, s)),
        (r(), r()).prop_map(|(a, b)| I::Cmp(a, b)),
        (r(), -4096i64..4096).prop_map(|(a, v)| I::CmpImm(a, v)),
        (r(), r(), -512i64..512).prop_map(|(a, b, o)| I::Ldr(a, b, o * 8)),
        (r(), r(), -512i64..512).prop_map(|(a, b, o)| I::Str(a, b, o * 8)),
        (r(), r(), -512i64..512).prop_map(|(a, b, o)| I::LdrPost(a, b, o * 8)),
        (r(), r(), -512i64..512).prop_map(|(a, b, o)| I::LdrPre(a, b, o * 8)),
        (r(), r(), -512i64..512).prop_map(|(a, b, o)| I::StrPre(a, b, o * 8)),
        (r(), r(), -512i64..512).prop_map(|(a, b, o)| I::StrPost(a, b, o * 8)),
        (r(), r(), r(), -256i64..256).prop_map(|(a, b, c, o)| I::Stp(a, b, c, o * 8)),
        (r(), r(), r(), -256i64..256).prop_map(|(a, b, c, o)| I::Ldp(a, b, c, o * 8)),
        (r(),).prop_map(|(a,)| I::Blr(a)),
        (r(),).prop_map(|(a,)| I::Br(a)),
        Just(I::Ret),
        (r(), r()).prop_map(|(a, b)| I::Pacia(a, b)),
        (r(), r()).prop_map(|(a, b)| I::Autia(a, b)),
        (r(), r()).prop_map(|(a, b)| I::Pacib(a, b)),
        (r(), r()).prop_map(|(a, b)| I::Autib(a, b)),
        Just(I::Paciasp),
        Just(I::Autiasp),
        Just(I::Retaa),
        Just(I::Pacibsp),
        Just(I::Retab),
        (r(),).prop_map(|(a,)| I::Xpaci(a)),
        (r(), r(), r()).prop_map(|(a, b, c)| I::Pacga(a, b, c)),
        (0u16..100).prop_map(I::Svc),
        Just(I::Nop),
        Just(I::Bti),
    ]
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        arb_insn().prop_map(Op::I),
        Just(Op::Call("callee".to_owned())),
        Just(Op::TailCall("callee".to_owned())),
        arb_reg().prop_map(|r| Op::FnAddr(r, "callee".to_owned())),
        arb_reg().prop_map(|r| Op::LabelAddr(r, "here".to_owned())),
        Just(Op::Jump("here".to_owned())),
        (arb_cond(),).prop_map(|(c,)| Op::JumpCond(c, "here".to_owned())),
        arb_reg().prop_map(|r| Op::JumpZero(r, "here".to_owned())),
        arb_reg().prop_map(|r| Op::JumpNonZero(r, "here".to_owned())),
    ]
}

proptest! {
    #[test]
    fn display_parse_display_is_a_fixed_point(
        ops in prop::collection::vec(arb_op(), 0..40),
    ) {
        let mut program = Program::new();
        let mut body = vec![Op::Label("here".to_owned())];
        body.extend(ops);
        program.function_ops("main", body);
        program.function("callee", vec![I::Ret]);

        let printed = format!("{program}");
        let reparsed = parse_program(&printed)
            .unwrap_or_else(|e| panic!("parse failed: {e}\n{printed}"));
        prop_assert_eq!(printed.clone(), format!("{reparsed}"));
    }

    #[test]
    fn garbage_never_panics(source in "\\PC{0,200}") {
        let _ = parse_program(&source);
    }

    #[test]
    fn line_noise_inside_valid_programs_errors_with_line_numbers(
        junk in "[a-z]{2,8} [a-z0-9, ]{0,16}",
    ) {
        let source = format!("main:\n    nop\n    {junk}\n    ret\n");
        match parse_program(&source) {
            Ok(_) => {} // the junk happened to be a valid instruction
            Err(e) => prop_assert_eq!(e.line, 3),
        }
    }
}
