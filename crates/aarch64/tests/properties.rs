//! Differential property tests: random straight-line programs executed on
//! the CPU must match a direct Rust evaluation of the same operations.

use pacstack_aarch64::{Cpu, Instruction as I, Program, Reg};
use proptest::prelude::*;

/// One random ALU operation on the accumulator.
#[derive(Debug, Clone, Copy)]
enum AluOp {
    AddImm(i32),
    EorImm(u32),
    AndImm(u64),
    Lsr(u32),
    AddSelf,
    SubSelf,
    MulSelf,
}

fn arb_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        any::<i32>().prop_map(AluOp::AddImm),
        any::<u32>().prop_map(AluOp::EorImm),
        any::<u64>().prop_map(AluOp::AndImm),
        (0u32..64).prop_map(AluOp::Lsr),
        Just(AluOp::AddSelf),
        Just(AluOp::SubSelf),
        Just(AluOp::MulSelf),
    ]
}

fn lower_op(op: AluOp) -> I {
    match op {
        AluOp::AddImm(v) => I::AddImm(Reg::X0, Reg::X0, i64::from(v)),
        AluOp::EorImm(v) => I::EorImm(Reg::X0, Reg::X0, u64::from(v)),
        AluOp::AndImm(v) => I::AndImm(Reg::X0, Reg::X0, v),
        AluOp::Lsr(s) => I::LsrImm(Reg::X0, Reg::X0, s),
        AluOp::AddSelf => I::Add(Reg::X0, Reg::X0, Reg::X0),
        AluOp::SubSelf => I::Sub(Reg::X0, Reg::X0, Reg::X0),
        AluOp::MulSelf => I::Mul(Reg::X0, Reg::X0, Reg::X0),
    }
}

fn eval_op(acc: u64, op: AluOp) -> u64 {
    match op {
        AluOp::AddImm(v) => acc.wrapping_add(i64::from(v) as u64),
        AluOp::EorImm(v) => acc ^ u64::from(v),
        AluOp::AndImm(v) => acc & v,
        AluOp::Lsr(s) => acc >> s,
        AluOp::AddSelf => acc.wrapping_add(acc),
        AluOp::SubSelf => acc.wrapping_sub(acc),
        AluOp::MulSelf => acc.wrapping_mul(acc),
    }
}

proptest! {
    #[test]
    fn alu_matches_reference_semantics(
        start in any::<u64>(),
        ops in prop::collection::vec(arb_op(), 0..40),
    ) {
        let mut insns = vec![I::MovImm(Reg::X0, start)];
        insns.extend(ops.iter().map(|&op| lower_op(op)));
        insns.push(I::Ret);
        let mut p = Program::new();
        p.function("main", insns);
        let mut cpu = Cpu::with_seed(p, 0);
        let outcome = cpu.run(1000).expect("straight-line code runs clean");

        let expected = ops.iter().fold(start, |acc, &op| eval_op(acc, op));
        prop_assert_eq!(outcome.exit_code, expected);
    }

    #[test]
    fn memory_round_trips_preserve_values(
        values in prop::collection::vec(any::<u64>(), 1..8),
    ) {
        // Store each value to a distinct stack slot, reload in reverse,
        // and fold with XOR; compare against the direct fold.
        let mut insns = vec![I::MovImm(Reg::X1, 0)];
        for (i, &v) in values.iter().enumerate() {
            insns.push(I::MovImm(Reg::X0, v));
            insns.push(I::Str(Reg::X0, Reg::Sp, -(8 * (i as i64 + 1))));
        }
        for i in (0..values.len()).rev() {
            insns.push(I::Ldr(Reg::X0, Reg::Sp, -(8 * (i as i64 + 1))));
            insns.push(I::Eor(Reg::X1, Reg::X1, Reg::X0));
        }
        insns.push(I::Mov(Reg::X0, Reg::X1));
        insns.push(I::Ret);
        let mut p = Program::new();
        p.function("main", insns);
        let mut cpu = Cpu::with_seed(p, 0);
        let outcome = cpu.run(1000).expect("runs clean");
        let expected = values.iter().fold(0u64, |a, v| a ^ v);
        prop_assert_eq!(outcome.exit_code, expected);
    }

    #[test]
    fn pac_strip_recovers_any_canonical_pointer(addr in 0u64..(1 << 39)) {
        // pacia → xpaci is the identity on address bits for any address.
        let mut p = Program::new();
        p.function(
            "main",
            vec![
                I::MovImm(Reg::X0, addr),
                I::MovImm(Reg::X1, 0x1234),
                I::Pacia(Reg::X0, Reg::X1),
                I::Xpaci(Reg::X0),
                I::Ret,
            ],
        );
        let mut cpu = Cpu::with_seed(p, 3);
        let outcome = cpu.run(100).expect("runs clean");
        prop_assert_eq!(outcome.exit_code, addr);
    }

    #[test]
    fn pacia_autia_round_trip_via_registers(
        addr in 0u64..(1 << 39),
        modifier in any::<u64>(),
    ) {
        let mut p = Program::new();
        p.function(
            "main",
            vec![
                I::MovImm(Reg::X0, addr),
                I::MovImm(Reg::X1, modifier),
                I::Pacia(Reg::X0, Reg::X1),
                I::Autia(Reg::X0, Reg::X1),
                I::Ret,
            ],
        );
        let mut cpu = Cpu::with_seed(p, 9);
        let outcome = cpu.run(100).expect("runs clean");
        prop_assert_eq!(outcome.exit_code, addr);
    }
}
