//! The NGINX SSL-TPS experiment (paper §7.2, Table 3) as a standalone demo.
//!
//! ```text
//! cargo run --release --example server_tps
//! ```

use pacstack::compiler::Scheme;
use pacstack::workloads::nginx::ssl_tps;

fn main() {
    println!("NGINX SSL transactions-per-second model (paper Table 3)");
    println!("one HTTPS request per connection, 0-byte response, CPU-bound\n");
    println!(
        "{:>8} {:<18} {:>14} {:>10} {:>8}",
        "workers", "configuration", "req/sec", "σ", "loss"
    );
    for workers in [4u32, 8] {
        let baseline = ssl_tps(Scheme::Baseline, workers, 10, 42);
        for (label, scheme) in [
            ("baseline", Scheme::Baseline),
            ("PACStack-nomask", Scheme::PacStackNomask),
            ("PACStack", Scheme::PacStack),
        ] {
            let result = ssl_tps(scheme, workers, 10, 42);
            let loss = (1.0 - result.mean_tps / baseline.mean_tps) * 100.0;
            println!(
                "{:>8} {:<18} {:>14.0} {:>10.0} {:>7.1}%",
                workers, label, result.mean_tps, result.sigma, loss
            );
        }
        println!();
    }
    println!("paper: 4 workers 14.2k → 13.7k → 13.5k; 8 workers 30.7k → 28.6k → 27.2k");
    println!("(absolute TPS differs — simulated clock and handshake cost are modelled —");
    println!(" but the overhead band matches: nomask 4–7%, full PACStack 6–13%)");
}
