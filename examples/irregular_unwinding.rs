//! Irregular stack unwinding with ACS-bound `setjmp`/`longjmp`
//! (paper §4.4, §5.3, Listings 4–5) — including the validating unwinder
//! proposed in §9.1 that rejects expired buffers.
//!
//! ```text
//! cargo run --example irregular_unwinding
//! ```

use pacstack::acs::{AcsConfig, AuthenticatedCallStack};
use pacstack::pauth::{PaKeys, PointerAuth, VaLayout};

fn main() {
    let pa = PointerAuth::new(VaLayout::default());
    let mut acs = AuthenticatedCallStack::new(pa, PaKeys::from_seed(2024), AcsConfig::default());

    // main → run_with_recovery ... setjmp here ... → parse → eval (throws)
    acs.call(0x40_1000);
    let env = acs.setjmp(0x40_1100, 0x7fff_e000);
    println!(
        "setjmp at depth {} → buffer binds ret, SP and aret_i:",
        acs.depth()
    );
    println!("  bound_ret = {:#018x}", env.bound_ret);
    println!("  chain     = {:#018x}", env.chain);

    acs.call(0x40_2000); // parse
    acs.call(0x40_3000); // eval
    println!(
        "\n\"exception\" at depth {} — longjmp back to the handler",
        acs.depth()
    );
    let target = acs.longjmp(&env).expect("genuine buffer verifies");
    println!("  resumed at {target:#x}, depth {}", acs.depth());

    // A forged buffer is caught.
    let mut forged = acs.setjmp(0x40_1100, 0x7fff_e000);
    forged.bound_ret ^= 0x200; // point it somewhere else
    match acs.longjmp(&forged) {
        Ok(_) => println!("\nforged buffer slipped through (2^-16 chance)"),
        Err(violation) => println!("\nforged buffer rejected: {violation}"),
    }

    // The §9.1 validating unwinder also rejects *expired* buffers, which
    // plain longjmp (like plain C) cannot.
    acs.call(0x40_2000);
    let expired = acs.setjmp(0x40_1100, 0x7fff_d000);
    acs.ret()
        .expect("the setjmp frame returns — buffer now expired");
    match acs.longjmp_validating(&expired) {
        Ok(_) => println!("expired buffer accepted?!"),
        Err(violation) => println!("expired buffer rejected by validating unwinder: {violation}"),
    }
}
