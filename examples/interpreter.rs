//! Domain example: a bytecode-interpreter-shaped program — the workload
//! class the paper's evaluation shows is *most* affected by return-address
//! protection (perlbench-style: a hot dispatch loop calling tiny opcode
//! handlers).
//!
//! The dispatch is data-dependent (`IfEven` on the evolving accumulator),
//! so the executed handler sequence is only known at run time — exactly
//! what makes interpreter return addresses such attractive ROP material.
//!
//! ```text
//! cargo run --release --example interpreter
//! ```

use pacstack::compiler::{FuncDef, Module, Scheme, Stmt};
use pacstack::workloads::measure::{overhead_percent, run_module};

/// Builds the interpreter: `run_loop` dispatches on the accumulator's
/// low bit between two handler families, each of which calls helpers.
fn interpreter_module(steps: u32) -> Module {
    let mut m = Module::new();
    m.push(FuncDef::new(
        "main",
        vec![
            Stmt::Compute(1),
            Stmt::Call("run_loop".into()),
            Stmt::Emit,
            Stmt::Return,
        ],
    ));
    m.push(FuncDef::new(
        "run_loop",
        vec![
            Stmt::Loop(
                steps,
                vec![Stmt::IfEven(
                    vec![Stmt::Call("op_arith".into())],
                    vec![Stmt::Call("op_load_store".into())],
                )],
            ),
            Stmt::Return,
        ],
    ));
    m.push(FuncDef::new(
        "op_arith",
        vec![
            Stmt::Compute(60),
            Stmt::Call("update_flags".into()),
            Stmt::Return,
        ],
    ));
    m.push(FuncDef::new(
        "op_load_store",
        vec![
            Stmt::MemAccess(12),
            Stmt::Compute(30),
            Stmt::Call("update_flags".into()),
            Stmt::Return,
        ],
    ));
    m.push(FuncDef::new(
        "update_flags",
        vec![Stmt::Compute(15), Stmt::Return],
    ));
    m
}

fn main() {
    let module = interpreter_module(400);

    let baseline = run_module(&module, Scheme::Baseline, 100_000_000);
    println!("interpreter: 400 dispatched 'opcodes', data-dependent handlers");
    println!(
        "baseline: {} cycles, {} instructions, result {:#x}\n",
        baseline.cycles, baseline.instructions, baseline.exit_code
    );

    println!("{:<28} {:>10}", "scheme", "overhead");
    for scheme in Scheme::ALL {
        let o = overhead_percent(&module, scheme, 100_000_000);
        println!("{:<28} {:>9.2}%", scheme.to_string(), o);
    }

    println!("\nDispatch-heavy code pays the most for return-address protection");
    println!("(compare `cargo run --release --example spec_overhead -- lbm`,");
    println!(" a loop kernel that pays essentially nothing).");
}
