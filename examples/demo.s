; A hand-written PACStack-instrumented function (paper Listing 3 shape),
; runnable with: cargo run --bin pacstack-run -- examples/demo.s --trace
main:
    ; prologue: extend the chain
    str x28, [sp, #-32]!        ; spill aret_{i-1}
    stp fp, lr, [sp, #16]       ; plain frame record
    mov x15, xzr
    pacia lr, x28               ; aret_i (unmasked)
    pacia x15, x28              ; mask_i
    eor lr, lr, x15
    mov x15, xzr
    mov x28, lr                 ; CR <- aret_i

    mov x0, #6
    bl square
    svc #1                      ; emit 36

    ; epilogue: verify and return
    mov lr, x28
    ldr fp, [sp, #16]
    ldr x28, [sp], #32
    mov x15, xzr
    pacia x15, x28
    eor lr, lr, x15
    mov x15, xzr
    autia lr, x28
    ret
square:
    mul x0, x0, x0
    ret
