//! Quickstart: protect a call stack with ACS, watch an attack get caught.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use pacstack::acs::{AcsConfig, AuthenticatedCallStack, Masking};
use pacstack::pauth::{PaKeys, PointerAuth, VaLayout};

fn main() {
    // A pointer-authentication unit with the paper's default layout:
    // Linux VA_SIZE = 39 with address tagging, leaving a 16-bit PAC.
    let layout = VaLayout::default();
    let pa = PointerAuth::new(layout);
    println!("pointer layout: {layout}");

    // The kernel generates per-process PA keys on exec.
    let keys = PaKeys::from_seed(0xFEED);

    // Build the authenticated call stack (full PACStack: masked tokens).
    let mut acs = AuthenticatedCallStack::new(pa, keys, AcsConfig::default());

    // A call chain: main → parse → eval → apply.
    println!("\ncalling main → parse → eval → apply");
    acs.call(0x40_1000); // return address into main
    acs.call(0x40_2000); // into parse
    acs.call(0x40_3000); // into eval
    println!("chain register (aret_n): {:#018x}", acs.chain_register());
    println!("stack slots (attacker-visible):");
    for (i, frame) in acs.frames().iter().enumerate() {
        println!("  depth {i}: stored chain {:#018x}", frame.stored_chain);
    }

    // Benign returns verify.
    println!("\nbenign unwind:");
    let mut benign = acs.clone();
    while benign.depth() > 0 {
        let ret = benign.ret().expect("benign chain must verify");
        println!("  returned to {ret:#x}");
    }

    // The adversary rewrites a stored chain value — caught at unwind.
    println!("\nadversary corrupts the stack slot at depth 1...");
    acs.frames_mut()[1].stored_chain ^= 0x40;
    acs.ret().expect("innermost link untouched");
    match acs.ret() {
        Ok(ret) => println!("  UNDETECTED return to {ret:#x} (probability 2^-16)"),
        Err(violation) => println!("  caught: {violation}"),
    }

    // Compare with the unmasked variant: tokens are directly visible.
    let mut nomask = AuthenticatedCallStack::new(
        pa,
        PaKeys::from_seed(0xFEED),
        AcsConfig::default().masking(Masking::Unmasked),
    );
    nomask.call(0x40_1000);
    nomask.call(0x40_2000);
    println!(
        "\nunmasked variant stores raw tokens on the stack: {:#018x}",
        nomask.frames()[1].stored_chain
    );
    println!("(masking hides MAC collisions from an adversary who reads them — paper §6.2.1)");
}
