//! Attack gallery: run the paper's attack classes against every protection
//! scheme on the simulated CPU and print the outcome matrix.
//!
//! ```text
//! cargo run --release --example rop_gallery
//! ```

use pacstack::attacks::rop::{run_attack, WriteTarget};
use pacstack::attacks::{gadget, reuse};
use pacstack::compiler::Scheme;

fn main() {
    println!("Return-address overwrite (classic ROP, §2.1):");
    for scheme in Scheme::ALL {
        let outcome = run_attack(scheme, WriteTarget::SavedReturnAddress);
        println!("  {scheme:<28} {outcome}");
    }

    println!("\nLinear stack overflow (what canaries are for):");
    for scheme in Scheme::ALL {
        let outcome = run_attack(scheme, WriteTarget::LinearOverflow);
        println!("  {scheme:<28} {outcome}");
    }

    println!("\nShadow-stack overwrite (location leaked):");
    for scheme in [Scheme::ShadowCallStack, Scheme::PacStack] {
        let outcome = run_attack(scheme, WriteTarget::ShadowStackTop);
        println!("  {scheme:<28} {outcome}");
    }

    println!("\nSigned-return-address reuse at equal SP (§2.2.1, Listing 6):");
    for scheme in [Scheme::PacRet, Scheme::PacStackNomask, Scheme::PacStack] {
        let result = reuse::run_reuse(scheme, true);
        println!("  {scheme:<28} {} ({} emits)", result.outcome, result.emits);
    }

    println!("\nTail-call signing gadget (§6.3.1, Listings 7–8):");
    for scheme in [Scheme::PacStackNomask, Scheme::PacStack] {
        let outcome = gadget::tail_call_gadget_attack(scheme);
        println!("  {scheme:<28} {outcome}");
    }

    println!("\nLegend: hijacked = adversary gadget ran; crashed = attack detected");
    println!("        (process killed); ineffective = write changed nothing.");
}
