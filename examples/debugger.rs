//! Debugger's-eye view of a PACStack process: execution trace,
//! disassembly, frame-record backtrace (works unmodified — the paper's §5
//! compatibility claim) and the §9.1 validating unwinder that catches what
//! the debugger cannot.
//!
//! ```text
//! cargo run --example debugger
//! ```

use pacstack::aarch64::trace::disassemble_around;
use pacstack::aarch64::{Cpu, Reg, RunStatus};
use pacstack::acs::Masking;
use pacstack::compiler::unwind::{backtrace, validated_backtrace};
use pacstack::compiler::{frame, lower, FuncDef, Module, Scheme, Stmt};

fn main() {
    let mut m = Module::new();
    m.push(FuncDef::new(
        "main",
        vec![Stmt::Call("parse".into()), Stmt::Return],
    ));
    m.push(FuncDef::new(
        "parse",
        vec![Stmt::MemAccess(1), Stmt::Call("eval".into()), Stmt::Return],
    ));
    m.push(FuncDef::new(
        "eval",
        vec![
            Stmt::Checkpoint(42),
            Stmt::Call("apply".into()),
            Stmt::Return,
        ],
    ));
    m.push(FuncDef::new("apply", vec![Stmt::Compute(3), Stmt::Return]));

    let mut cpu = Cpu::with_seed(lower(&m, Scheme::PacStack), 7);
    cpu.enable_trace(12);
    let out = cpu.run(100_000).expect("reaches breakpoint");
    assert_eq!(out.status, RunStatus::Syscall(42));

    println!("== stopped at 'breakpoint' inside eval() ==\n");

    println!("last instructions executed:");
    println!("{}", cpu.trace().expect("tracing enabled"));

    println!("disassembly around pc:");
    println!("{}", disassemble_around(&cpu, cpu.pc() - 4, 3));

    println!("backtrace (frame records, plain addresses — gdb-compatible):");
    for (i, ret) in backtrace(&cpu).iter().enumerate() {
        println!("  #{i} {ret:#010x}");
    }

    println!("\nvalidated backtrace (ACS chain, §9.1):");
    match validated_backtrace(&cpu, Masking::Masked) {
        Ok(rets) => {
            for (i, ret) in rets.iter().enumerate() {
                println!("  #{i} {ret:#010x}  [authenticated]");
            }
        }
        Err(v) => println!("  {v}"),
    }

    // Now the adversary corrupts a chain slot. The debugger view is
    // unchanged; the validating unwinder pinpoints the broken frame.
    let fp = cpu.reg(Reg::FP);
    let parse_record = cpu.mem().read_u64(fp).expect("fp chain");
    let parse_chain = parse_record - frame::FP_SLOT as u64 + frame::CHAIN_SLOT as u64;
    let old = cpu.mem().read_u64(parse_chain).expect("chain slot");
    cpu.mem_mut()
        .write_u64(parse_chain, old ^ 0x40)
        .expect("writable");
    println!("\n== adversary corrupts parse()'s chain slot ==\n");

    println!(
        "backtrace (frame records): unchanged — {} frames",
        backtrace(&cpu).len()
    );
    match validated_backtrace(&cpu, Masking::Masked) {
        Ok(_) => println!("validated backtrace: (2^-16 collision, undetected)"),
        Err(v) => println!("validated backtrace: {v}"),
    }
}
