//! Measure instrumentation overhead on one SPEC-profile workload, the way
//! Figure 5 is produced — with the full per-scheme cycle breakdown.
//!
//! ```text
//! cargo run --release --example spec_overhead [benchmark]
//! ```

use pacstack::compiler::Scheme;
use pacstack::workloads::measure::{overhead_percent, run_module};
use pacstack::workloads::spec::{c_benchmark, Suite, C_BENCHMARKS};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "gcc".to_owned());
    let Some(profile) = c_benchmark(&name) else {
        eprintln!(
            "unknown benchmark {name:?}; available: {}",
            C_BENCHMARKS
                .iter()
                .map(|b| b.name)
                .collect::<Vec<_>>()
                .join(", ")
        );
        std::process::exit(1);
    };

    println!(
        "benchmark: {} (profile: depth {}, {} leaf calls/function)",
        profile.name, profile.depth, profile.leaf_calls
    );
    for suite in [Suite::Rate, Suite::Speed] {
        let module = profile.module(suite);
        let baseline = run_module(&module, Scheme::Baseline, 2_000_000_000);
        println!(
            "\n{suite}: baseline {} cycles, {} instructions",
            baseline.cycles, baseline.instructions
        );
        println!("  {:<28} {:>12} {:>10}", "scheme", "cycles", "overhead");
        for scheme in Scheme::ALL {
            let m = run_module(&module, scheme, 2_000_000_000);
            let overhead = overhead_percent(&module, scheme, 2_000_000_000);
            println!(
                "  {:<28} {:>12} {:>9.2}%",
                scheme.to_string(),
                m.cycles,
                overhead
            );
        }
    }
}
