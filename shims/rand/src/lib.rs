//! Offline stand-in for the subset of [`rand` 0.8](https://docs.rs/rand/0.8)
//! this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal, API-compatible implementation: the [`Rng`] /
//! [`RngCore`] / [`SeedableRng`] traits, uniform range sampling, and a
//! [`rngs::StdRng`] backed by xoshiro256** (seeded via SplitMix64, the
//! same construction `rand` documents for `seed_from_u64`).
//!
//! Streams are **not** bit-compatible with the real `StdRng` (ChaCha12);
//! nothing in this workspace depends on the exact stream — experiments pin
//! their own seeds and assert statistical bands, and the determinism suite
//! asserts reproducibility *of this implementation*, which is guaranteed:
//! every generator here is a pure function of its seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard (uniform) distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution as _;
        distributions::Standard.sample(self)
    }

    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        // 53 uniform mantissa bits, exactly as the real implementation.
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A type with uniform range sampling; mirrors the real crate's trait so
/// that [`SampleRange`] can be one *generic* impl per range shape — which
/// is what lets inference resolve `1 + rng.gen_range(0..8)` to the
/// surrounding integer type instead of defaulting to `i32`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)` (or `[lo, hi]` when `inclusive`).
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

/// A range that supports uniform single-value sampling.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, *self.start(), *self.end(), true)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                // Widen first, then subtract: two's complement makes the
                // wrapping difference the true span for unsigned and signed
                // types alike (narrow signed spans can exceed the type's
                // own range, e.g. -100..=100i8).
                let span = (hi as u64).wrapping_sub(lo as u64);
                if inclusive {
                    assert!(lo <= hi, "cannot sample empty range");
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(uniform_u64(rng, span + 1) as $t)
                } else {
                    assert!(lo < hi, "cannot sample empty range");
                    lo.wrapping_add(uniform_u64(rng, span) as $t)
                }
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform sample in `[0, span)` by widening multiplication (Lemire's
/// method without the rejection step; bias is < 2⁻⁶⁴·span, irrelevant for
/// the experiment-scale ranges used here).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

/// A generator constructible from a fixed seed.
pub trait SeedableRng: Sized {
    /// The seed byte-array type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64 as
    /// the real crate documents.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = sm.next().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64 — used for seed expansion.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

pub mod distributions {
    //! The standard distribution, for `Rng::gen`.

    use super::RngCore;

    /// The uniform "every representable value" distribution.
    pub struct Standard;

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    macro_rules! impl_standard_int {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Distribution<u128> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
            (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            ((rng.next_u32() >> 8) as f32) * (1.0 / (1u32 << 24) as f32)
        }
    }
}

pub mod rngs {
    //! The deterministic generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256**.
    ///
    /// Not stream-compatible with the real `StdRng` (ChaCha12), but a
    /// high-quality generator that passes BigCrush; everything downstream
    /// only requires determinism and statistical uniformity.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (word, chunk) in s.iter_mut().zip(seed.chunks(8)) {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(chunk);
                *word = u64::from_le_bytes(bytes);
            }
            // The all-zero state is a fixed point of xoshiro; displace it.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            Self { s }
        }
    }

    /// A small, fast generator. Same implementation as [`StdRng`] here.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng(StdRng);

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            Self(StdRng::from_seed(seed))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: u32 = rng.gen_range(0..6u32);
            assert!(v < 6);
            let w = rng.gen_range(36..=44u32);
            assert!((36..=44).contains(&w));
            let s: i64 = rng.gen_range(-4096i64..4096);
            assert!((-4096..4096).contains(&s));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buckets = [0u32; 8];
        let n = 80_000;
        for _ in 0..n {
            buckets[rng.gen_range(0..8usize)] += 1;
        }
        for &count in &buckets {
            let expected = n / 8;
            assert!(
                (count as i64 - expected as i64).unsigned_abs() < expected as u64 / 10,
                "bucket count {count} too far from {expected}"
            );
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.7)).count();
        assert!((65_000..75_000).contains(&hits), "{hits}");
    }

    #[test]
    fn works_through_dyn_and_unsized_refs() {
        fn take_unsized<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(9);
        let _ = take_unsized(&mut rng);
    }
}
