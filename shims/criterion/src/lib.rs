//! Offline stand-in for the subset of [`criterion` 0.5](https://docs.rs/criterion)
//! this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal timing harness with the same surface syntax:
//! [`Criterion`], benchmark groups, [`BenchmarkId`], [`Bencher::iter`] and
//! the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Statistics are deliberately simple — warm-up plus a fixed sample count,
//! reporting the mean and min/max per iteration — but the bench binaries
//! compile and run unchanged.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's historical path.
pub use std::hint::black_box;

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\ngroup {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 20,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, mut f: F) {
        run_benchmark(&id.to_string(), 20, &mut f);
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, &mut f);
        self
    }

    /// Runs one benchmark parameterised by an input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// A benchmark identifier: a function name plus a parameter rendering.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// An id for `function` at `parameter`.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }

    /// An id distinguished only by a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            function: String::new(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.function.is_empty() {
            write!(f, "{}", self.parameter)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the code
/// under test.
pub struct Bencher {
    samples: Vec<Duration>,
    requested_samples: usize,
}

impl Bencher {
    /// Times `routine`, collecting the configured number of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up iteration outside the timings.
        black_box(routine());
        for _ in 0..self.requested_samples {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, f: &mut F) {
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        requested_samples: sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("  {label}: no samples collected");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let min = bencher.samples.iter().min().expect("non-empty");
    let max = bencher.samples.iter().max().expect("non-empty");
    println!(
        "  {label}: mean {mean:?}  min {min:?}  max {max:?}  ({} samples)",
        bencher.samples.len()
    );
}

/// Declares a function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` to run the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn benchmark_id_renders_function_and_parameter() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("p").to_string(), "p");
    }
}
