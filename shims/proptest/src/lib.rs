//! Offline stand-in for the subset of [`proptest` 1.x](https://docs.rs/proptest)
//! this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal property-testing engine with the same surface syntax:
//! the [`proptest!`] macro, [`strategy::Strategy`] with `prop_map`,
//! [`prop_oneof!`], [`strategy::Just`], [`arbitrary::any`], range and
//! regex-string strategies, [`collection::vec`] and [`sample::Index`].
//!
//! Differences from the real crate:
//!
//! * **No shrinking.** A failing case panics with the generated inputs so
//!   it can be reproduced, but no minimisation is attempted.
//! * **Deterministic.** Case `i` of test `t` draws from an RNG seeded by
//!   `hash(t, i)`; a failure therefore reproduces on every run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod test_runner {
    //! The case runner: configuration, RNG and failure plumbing.

    /// Test configuration. Only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of accepted (non-rejected) cases to run per property.
        pub cases: u32,
        /// Maximum rejected cases (`prop_assume!` failures) tolerated
        /// before the property errors out.
        pub max_global_rejects: u32,
    }

    impl Config {
        /// A config running `cases` accepted cases.
        pub fn with_cases(cases: u32) -> Self {
            Self {
                cases,
                ..Self::default()
            }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self {
                cases: 256,
                max_global_rejects: 65_536,
            }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// An assertion failed; the message describes it.
        Fail(String),
        /// The case was rejected by `prop_assume!` and should be retried.
        Reject(String),
    }

    impl TestCaseError {
        /// Constructs a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Constructs a rejection with the given reason.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// The per-case deterministic generator (xoshiro256** seeded by
    /// SplitMix64 over `(test name hash, case index)`).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl TestRng {
        /// RNG for case number `case` of the test named `name`.
        pub fn for_case(name: &str, case: u32) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            let mut state = h ^ (u64::from(case) << 32) ^ u64::from(case);
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = splitmix(&mut state);
            }
            if s == [0; 4] {
                s[0] = 1;
            }
            Self { s }
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform value in `[0, span)` (`span` > 0).
        pub fn below(&mut self, span: u64) -> u64 {
            debug_assert!(span > 0);
            ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of one type.
    ///
    /// Unlike the real crate there is no value tree and no shrinking; a
    /// strategy is just a deterministic function of the case RNG.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }

        /// Generates with `self`, then generates from the strategy `f`
        /// builds out of that value.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { source: self, f }
        }

        /// Rejects generated values failing `f`, retrying (bounded).
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            _whence: &'static str,
            f: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter { source: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V> Strategy for Box<dyn Strategy<Value = V>> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;

        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.source.generate(rng)).generate(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1_000 {
                let value = self.source.generate(rng);
                if (self.f)(&value) {
                    return value;
                }
            }
            panic!("prop_filter rejected 1000 consecutive values");
        }
    }

    /// Uniform choice between boxed strategies — the engine of
    /// [`crate::prop_oneof!`].
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// A union over the given options (must be non-empty).
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Self { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let pick = rng.below(self.options.len() as u64) as usize;
            self.options[pick].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty => $signed:literal),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    // Widen before subtracting: narrow signed spans can
                    // exceed the type's own range.
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u64).wrapping_sub(lo as u64);
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(rng.below(span + 1) as $t)
                }
            }
        )*};
    }

    impl_range_strategy!(
        u8 => false, u16 => false, u32 => false, u64 => false, usize => false,
        i8 => true, i16 => true, i32 => true, i64 => true, isize => true
    );

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// String strategies from a regex subset: literal characters, `\PC`
    /// (any printable character), character classes `[a-z0-9, ]` with
    /// ranges, and `{m,n}` repetition counts.
    impl Strategy for &'static str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            generate_from_pattern(self, rng)
        }
    }

    enum Atom {
        Literal(char),
        Printable,
        Class(Vec<(char, char)>),
    }

    fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let mut chars = pattern.chars().peekable();
        let mut out = String::new();
        while let Some(c) = chars.next() {
            let atom = match c {
                '\\' => match chars.next() {
                    Some('P') => {
                        // `\PC`: any character not in category C (control).
                        match chars.next() {
                            Some('C') => Atom::Printable,
                            other => panic!("unsupported escape \\P{other:?} in {pattern:?}"),
                        }
                    }
                    Some(esc) => Atom::Literal(esc),
                    None => panic!("dangling escape in {pattern:?}"),
                },
                '[' => {
                    let mut entries = Vec::new();
                    loop {
                        match chars.next() {
                            Some(']') => break,
                            Some(lo) => {
                                if chars.peek() == Some(&'-') {
                                    chars.next();
                                    let hi = chars
                                        .next()
                                        .unwrap_or_else(|| panic!("bad class in {pattern:?}"));
                                    if hi == ']' {
                                        entries.push((lo, lo));
                                        entries.push(('-', '-'));
                                        break;
                                    }
                                    entries.push((lo, hi));
                                } else {
                                    entries.push((lo, lo));
                                }
                            }
                            None => panic!("unterminated class in {pattern:?}"),
                        }
                    }
                    Atom::Class(entries)
                }
                other => Atom::Literal(other),
            };
            // Optional {m,n} repetition.
            let (lo, hi) = if chars.peek() == Some(&'{') {
                chars.next();
                let mut spec = String::new();
                for c in chars.by_ref() {
                    if c == '}' {
                        break;
                    }
                    spec.push(c);
                }
                let (m, n) = spec
                    .split_once(',')
                    .unwrap_or_else(|| panic!("unsupported repetition {{{spec}}} in {pattern:?}"));
                (
                    m.trim().parse::<usize>().expect("repetition lower bound"),
                    n.trim().parse::<usize>().expect("repetition upper bound"),
                )
            } else {
                (1, 1)
            };
            let count = lo + rng.below((hi - lo + 1) as u64) as usize;
            for _ in 0..count {
                out.push(match &atom {
                    Atom::Literal(c) => *c,
                    Atom::Printable => char::from(0x20 + rng.below(0x5F) as u8),
                    Atom::Class(entries) => {
                        let total: u64 = entries
                            .iter()
                            .map(|(lo, hi)| (*hi as u64) - (*lo as u64) + 1)
                            .sum();
                        let mut pick = rng.below(total);
                        let mut chosen = entries[0].0;
                        for (lo, hi) in entries {
                            let size = (*hi as u64) - (*lo as u64) + 1;
                            if pick < size {
                                chosen = char::from_u32(*lo as u32 + pick as u32)
                                    .expect("class range is valid chars");
                                break;
                            }
                            pick -= size;
                        }
                        chosen
                    }
                });
            }
        }
        out
    }

    /// Strategy produced by [`crate::arbitrary::any`].
    pub struct Any<T>(pub(crate) PhantomData<T>);

    impl<T: crate::arbitrary::Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod arbitrary {
    //! Default strategies per type.

    use crate::strategy::Any;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical uniform generator.
    pub trait Arbitrary: Sized {
        /// Generates one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for u128 {
        fn arbitrary(rng: &mut TestRng) -> u128 {
            (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> char {
            char::from(0x20 + rng.below(0x5F) as u8)
        }
    }

    macro_rules! impl_arbitrary_tuple {
        ($($name:ident),+) => {
            impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    ($($name::arbitrary(rng),)+)
                }
            }
        };
    }

    impl_arbitrary_tuple!(A);
    impl_arbitrary_tuple!(A, B);
    impl_arbitrary_tuple!(A, B, C);
    impl_arbitrary_tuple!(A, B, C, D);

    impl Arbitrary for crate::sample::Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            crate::sample::Index::from_raw(rng.next_u64())
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A size specification for collection strategies.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    /// Generates `Vec`s whose length lies in `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling helpers.

    /// A deferred index: a uniform raw value mapped onto any collection
    /// length at use time.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(u64);

    impl Index {
        pub(crate) fn from_raw(raw: u64) -> Self {
            Self(raw)
        }

        /// This index projected onto a collection of `len` elements.
        ///
        /// # Panics
        ///
        /// Panics if `len` is zero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            ((u128::from(self.0) * len as u128) >> 64) as usize
        }
    }
}

pub mod prelude {
    //! Everything the property tests import.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// The `prop::` module alias used by `prop::collection::vec` etc.
    pub use crate as prop;
}

/// Asserts a condition inside a property, failing the case (not panicking
/// directly) so the harness can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts two expressions are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)*), left, right
        );
    }};
}

/// Asserts two expressions differ inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "{}\n  both: {:?}",
            format!($($fmt)*), left
        );
    }};
}

/// Rejects the current case, drawing a replacement instead of failing.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                format!($($fmt)*),
            ));
        }
    };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        // `.boxed()` (rather than an `as` cast) lets the arm's associated
        // `Value` type drive inference of the union's element type.
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Declares property tests: each `#[test] fn name(binding in strategy, ...)`
/// runs the body over many generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            while accepted < config.cases {
                attempts += 1;
                if attempts > config.cases.saturating_add(config.max_global_rejects) {
                    panic!(
                        "proptest '{}': too many rejected cases ({} attempts)",
                        stringify!($name),
                        attempts
                    );
                }
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    attempts,
                );
                $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut __rng);)+
                let __inputs = format!(
                    concat!($("\n  ", stringify!($arg), " = {:?}"),+),
                    $(&$arg),+
                );
                #[allow(clippy::redundant_closure_call)]
                let __outcome = (|| -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::core::result::Result::Ok(())
                })();
                match __outcome {
                    ::core::result::Result::Ok(()) => accepted += 1,
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest '{}' failed at case {}: {}\ninputs:{}",
                            stringify!($name),
                            accepted + 1,
                            msg,
                            __inputs
                        );
                    }
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in -5i64..=5, z in any::<u64>()) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..=5).contains(&y));
            let _ = z;
        }

        #[test]
        fn assume_rejects_without_failing(a in any::<u8>()) {
            prop_assume!(a.is_multiple_of(2));
            prop_assert_eq!(a % 2, 0);
        }

        #[test]
        fn oneof_and_map_compose(v in prop_oneof![Just(1u32), 10u32..20, Just(3u32)]) {
            prop_assert!(v == 1 || v == 3 || (10..20).contains(&v));
        }

        #[test]
        fn vec_strategy_obeys_size(items in prop::collection::vec(0u64..100, 2..6)) {
            prop_assert!((2..6).contains(&items.len()));
            prop_assert!(items.iter().all(|&i| i < 100));
        }

        #[test]
        fn regex_subset_generates_matching_strings(s in "[a-z]{2,8} [a-z0-9, ]{0,16}") {
            let (head, tail) = s.split_once(' ').expect("space separator present");
            prop_assert!((2..=8).contains(&head.len()), "head {:?}", head);
            prop_assert!(head.chars().all(|c| c.is_ascii_lowercase()));
            prop_assert!(tail.len() <= 16);
        }

        #[test]
        fn printable_escape_generates_printables(s in "\\PC{0,200}") {
            prop_assert!(s.len() <= 200);
            prop_assert!(s.chars().all(|c| !c.is_control()));
        }

        #[test]
        fn index_projects_into_range(ix in any::<prop::sample::Index>()) {
            prop_assert!(ix.index(7) < 7);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn config_override_is_accepted(x in any::<bool>()) {
            let _ = x;
        }
    }

    // No inner #[test] attribute: a test item nested in a function body is
    // unnameable by the harness (and rustc warns); the outer test drives it.
    proptest! {
        fn always_fails(x in 0u32..10) {
            prop_assert!(x > 100, "x was {}", x);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_inputs() {
        always_fails();
    }
}
