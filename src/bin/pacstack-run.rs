//! `pacstack-run` — assemble and execute a program on the simulated CPU.
//!
//! ```text
//! pacstack-run <file.s> [--seed N] [--budget N] [--trace] [--fpac] [--disasm]
//! ```
//!
//! The input syntax is the simulator's own listing format (see
//! `pacstack::aarch64::asm`); `examples/demo.s` in the repository shows a
//! PACStack-instrumented function written by hand.

use pacstack::aarch64::asm::parse_program;
use pacstack::aarch64::trace::disassemble_around;
use pacstack::aarch64::{Cpu, RunStatus};
use std::process::ExitCode;

struct Options {
    path: String,
    seed: u64,
    budget: u64,
    trace: bool,
    fpac: bool,
    disasm: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let mut options = Options {
        path: String::new(),
        seed: 0,
        budget: 10_000_000,
        trace: false,
        fpac: false,
        disasm: false,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => {
                options.seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--seed needs an integer")?;
            }
            "--budget" => {
                options.budget = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--budget needs an integer")?;
            }
            "--trace" => options.trace = true,
            "--fpac" => options.fpac = true,
            "--disasm" => options.disasm = true,
            other if !other.starts_with('-') && options.path.is_empty() => {
                options.path = other.to_owned();
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if options.path.is_empty() {
        return Err(
            "usage: pacstack-run <file.s> [--seed N] [--budget N] [--trace] [--fpac] [--disasm]"
                .to_owned(),
        );
    }
    Ok(options)
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let source = match std::fs::read_to_string(&options.path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{}: {e}", options.path);
            return ExitCode::FAILURE;
        }
    };
    let program = match parse_program(&source) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{}: {e}", options.path);
            return ExitCode::FAILURE;
        }
    };
    if options.disasm {
        print!("{program}");
    }

    let mut cpu = Cpu::with_seed(program, options.seed);
    if options.fpac {
        cpu.enable_fpac();
    }
    if options.trace {
        cpu.enable_trace(32);
    }

    loop {
        match cpu.run(options.budget) {
            Ok(out) => match out.status {
                RunStatus::Exited(code) => {
                    for value in cpu.output() {
                        println!("emit: {value:#x}");
                    }
                    println!(
                        "exit: {code:#x} ({} instructions, {} cycles)",
                        out.instructions, out.cycles
                    );
                    return ExitCode::SUCCESS;
                }
                RunStatus::Syscall(n) => {
                    eprintln!("unhandled syscall {n} at pc={:#x}; resuming", cpu.pc());
                }
            },
            Err(fault) => {
                eprintln!("fault: {fault}");
                if options.trace {
                    if let Some(trace) = cpu.trace() {
                        eprintln!("\nlast instructions:\n{trace}");
                    }
                }
                eprintln!(
                    "disassembly near pc:\n{}",
                    disassemble_around(&cpu, cpu.pc(), 2)
                );
                return ExitCode::FAILURE;
            }
        }
    }
}
