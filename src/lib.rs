//! # PACStack: an Authenticated Call Stack — Rust reproduction
//!
//! A full reimplementation and evaluation harness for *"PACStack: an
//! Authenticated Call Stack"* (Liljestrand, Nyman, Gunn, Ekberg, Asokan —
//! USENIX Security 2021; first presented as *"Authenticated Call Stack"*
//! at DAC 2019).
//!
//! PACStack protects function return addresses with a *chain* of message
//! authentication codes computed by ARMv8.3-A pointer authentication (PA):
//! each authenticated return address `aret_i = H_K(ret_i, aret_{i-1}) ∥
//! ret_i` binds the whole call path, the newest link lives in a reserved
//! register, and every stored token is masked so an adversary who can read
//! all of memory still cannot find exploitable MAC collisions.
//!
//! This crate is a facade over the workspace:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`acs`] | `pacstack-acs` | The core authenticated-call-stack state machine, `setjmp`/`longjmp` binding, re-seeding, analytic security bounds |
//! | [`pauth`] | `pacstack-pauth` | The ARM PA model: PAC geometry, keys, `pac*`/`aut*`/`pacga` semantics, FPAC |
//! | [`qarma`] | `pacstack-qarma` | QARMA-64, the PAC reference cipher |
//! | [`aarch64`] | `pacstack-aarch64` | AArch64-subset simulator: CPU, W⊕X memory, kernel model, cycle costs |
//! | [`compiler`] | `pacstack-compiler` | Call-graph IR and frame lowering for six return-address protection schemes |
//! | [`attacks`] | `pacstack-attacks` | The paper's adversary: ROP, reuse, collision harvesting, guessing, signing gadget |
//! | [`workloads`] | `pacstack-workloads` | SPEC-profile benchmarks, the NGINX SSL-TPS model, and the crash-restart supervisor economics |
//! | [`chaos`] | `pacstack-chaos` | Deterministic fault-injection engine: seeded glitch plans, classified outcomes, detection-coverage campaigns |
//! | [`telemetry`] | `pacstack-telemetry` | Deterministic, cycle-domain observability: counters, histograms, spans, flamegraph/Chrome-trace/Prometheus exporters |
//!
//! # Quick start
//!
//! Protect a call stack and catch an attack:
//!
//! ```
//! use pacstack::acs::{AcsConfig, AuthenticatedCallStack};
//! use pacstack::pauth::{PaKeys, PointerAuth, VaLayout};
//!
//! let pa = PointerAuth::new(VaLayout::default());
//! let mut acs = AuthenticatedCallStack::new(pa, PaKeys::from_seed(1), AcsConfig::default());
//!
//! acs.call(0x40_1000);
//! acs.call(0x40_2000);
//! acs.frames_mut()[1].stored_chain ^= 0x4; // adversary rewrites the stack
//! assert!(acs.ret().is_err()); // ...and is caught on return
//! ```
//!
//! Compile a program with PACStack instrumentation and run it on the
//! simulated CPU:
//!
//! ```
//! use pacstack::compiler::{lower, FuncDef, Module, Scheme, Stmt};
//! use pacstack::aarch64::Cpu;
//!
//! let mut module = Module::new();
//! module.push(FuncDef::new("main", vec![Stmt::Call("work".into()), Stmt::Return]));
//! module.push(FuncDef::new("work", vec![Stmt::Compute(10), Stmt::Return]));
//!
//! let mut cpu = Cpu::with_seed(lower(&module, Scheme::PacStack), 0);
//! let outcome = cpu.run(100_000)?;
//! assert!(outcome.cycles > 0);
//! # Ok::<(), pacstack::aarch64::Fault>(())
//! ```
//!
//! # Reproducing the paper's evaluation
//!
//! ```text
//! cargo run --release -p pacstack-bench --bin repro -- all
//! ```
//!
//! regenerates Table 1 (attack success probabilities), Figure 5 and
//! Table 2 (SPEC overheads), Table 3 (NGINX SSL TPS) and the in-text
//! birthday/guessing experiments. `EXPERIMENTS.md` records paper-vs-
//! measured for each.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use pacstack_aarch64 as aarch64;
pub use pacstack_acs as acs;
pub use pacstack_attacks as attacks;
pub use pacstack_chaos as chaos;
pub use pacstack_compiler as compiler;
pub use pacstack_pauth as pauth;
pub use pacstack_qarma as qarma;
pub use pacstack_telemetry as telemetry;
pub use pacstack_workloads as workloads;
